//! Quality-table emission: converts [`MethodResult`] rows into the
//! [`QualityCase`] records of a
//! [`BenchReport`], the machine-readable counterpart of the rendered
//! tables.  Unlike the wall-clock cases these values are deterministic for
//! a fixed seed, which is what lets `bench_diff rank` compare rankings
//! across scenarios, reports and shards exactly.

use crate::experiments::ScenarioOutcome;
use crate::scale::Scale;
use crate::timing::{BenchReport, QualityCase, SCENARIO_CASE};
use lncl_crowd::TaskKind;
use logic_lncl::MethodResult;

/// The metric key ranking tools order methods by: the paper's headline
/// number (accuracy for classification, strict span F1 for tagging) of the
/// prediction columns, falling back to the inference columns for
/// aggregation-only methods that report no prediction.
pub const HEADLINE_METRIC: &str = "headline";

/// The ordered metric entries of one result row.  Prediction metrics are
/// always present (`pred_*`); inference metrics (`inf_*`) only when the
/// method reports them; [`HEADLINE_METRIC`] first, so rankings have a
/// task-appropriate default.
pub fn quality_metrics(row: &MethodResult, sequence_task: bool) -> Vec<(String, f64)> {
    // aggregation-only rows carry the all-zero default prediction (the
    // TruthOnly convention) — only those fall back to inference.  A
    // *trained* method whose span F1 is genuinely 0.0 still has non-zero
    // token accuracy, keeps its (bad) prediction headline and ranks last,
    // instead of being silently re-scored by its inference column.
    let aggregation_only = row.prediction == logic_lncl::EvalMetrics::default();
    let headline = if aggregation_only {
        row.inference.map(|m| m.headline(sequence_task)).unwrap_or(0.0)
    } else {
        row.prediction.headline(sequence_task)
    };
    let mut metrics: Vec<(String, f64)> = vec![
        (HEADLINE_METRIC.to_string(), headline as f64),
        ("pred_accuracy".to_string(), row.prediction.accuracy as f64),
        ("pred_precision".to_string(), row.prediction.precision as f64),
        ("pred_recall".to_string(), row.prediction.recall as f64),
        ("pred_f1".to_string(), row.prediction.f1 as f64),
    ];
    if let Some(inference) = row.inference {
        metrics.push(("inf_accuracy".to_string(), inference.accuracy as f64));
        metrics.push(("inf_precision".to_string(), inference.precision as f64));
        metrics.push(("inf_recall".to_string(), inference.recall as f64));
        metrics.push(("inf_f1".to_string(), inference.f1 as f64));
    }
    metrics
}

/// Records one quality row per result row under a scenario (or dataset)
/// label.
pub fn record_quality_rows(report: &mut BenchReport, scenario: &str, rows: &[MethodResult], sequence_task: bool) {
    for row in rows {
        report.record_quality(scenario, &row.method, quality_metrics(row, sequence_task));
    }
}

/// Records a swept scenario's full quality table: one row per method result
/// plus the scenario-level reliability-recovery statistic under the
/// [`SCENARIO_CASE`] sentinel.
pub fn record_scenario_outcome(report: &mut BenchReport, outcome: &ScenarioOutcome) {
    for row in scenario_quality_rows(outcome) {
        report.record_quality(&row.scenario, &row.method, row.metrics);
    }
}

/// The quality rows one swept scenario contributes to a report — exactly
/// what [`record_scenario_outcome`] records, as plain values.  Distributed
/// sweep workers ship these over the wire instead of a whole report.
pub fn scenario_quality_rows(outcome: &ScenarioOutcome) -> Vec<QualityCase> {
    let sequence_task = outcome.task == TaskKind::SequenceTagging;
    let mut rows: Vec<QualityCase> = outcome
        .rows
        .iter()
        .map(|row| QualityCase {
            scenario: outcome.name.clone(),
            method: row.method.clone(),
            metrics: quality_metrics(row, sequence_task),
        })
        .collect();
    rows.push(QualityCase {
        scenario: outcome.name.clone(),
        method: SCENARIO_CASE.to_string(),
        metrics: vec![("reliability_pearson".to_string(), outcome.reliability_pearson as f64)],
    });
    rows
}

/// A **canonical quality-only** report: sorted quality rows under a fixed,
/// deterministic environment block (os / arch / scale / package version —
/// no iteration count, thread cap or wall-clock cases, which vary run to
/// run).  Both the serial `scenario_sweep` quality-only mode and the
/// distributed `sweep_coord` merge emit their reports through this one
/// constructor, which is what makes "the merged distributed report is
/// bitwise identical to the serial file" a literal `cmp` on disk.
pub fn quality_only_report(target: &str, scale: Scale, quality: Vec<QualityCase>) -> BenchReport {
    let environment = vec![
        ("os".to_string(), std::env::consts::OS.to_string()),
        ("arch".to_string(), std::env::consts::ARCH.to_string()),
        ("scale".to_string(), scale.name().to_string()),
        ("package_version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
    ];
    let mut report = BenchReport {
        target: target.to_string(),
        environment,
        cases: Vec::new(),
        quality: Vec::new(),
        peak_rss_kb: None,
    };
    for row in quality {
        // route through record_quality so the non-finite-metric guard
        // holds for wire-delivered rows too
        report.record_quality(&row.scenario, &row.method, row.metrics);
    }
    report.sort_quality();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic_lncl::EvalMetrics;

    fn row(pred: f32, inf: Option<f32>) -> MethodResult {
        MethodResult::new("m", EvalMetrics::from_accuracy(pred), inf.map(EvalMetrics::from_accuracy))
    }

    #[test]
    fn headline_prefers_prediction_and_falls_back_to_inference() {
        let with_pred = quality_metrics(&row(0.8, Some(0.9)), false);
        assert_eq!(with_pred[0], (HEADLINE_METRIC.to_string(), 0.8f32 as f64));
        // aggregation-only rows report no prediction (all-zero metrics)
        let inference_only = quality_metrics(&row(0.0, Some(0.9)), false);
        assert_eq!(inference_only[0].1, 0.9f32 as f64);
        assert_eq!(quality_metrics(&row(0.0, None), false)[0].1, 0.0);
    }

    #[test]
    fn failing_trained_method_keeps_its_zero_headline() {
        // an undertrained tagger: token accuracy exists (so this is NOT an
        // aggregation-only row) but span F1 is 0 — the headline must stay 0
        // rather than borrowing the inference column
        let mut r = row(0.0, Some(0.4));
        r.prediction = EvalMetrics { accuracy: 0.6, precision: 0.0, recall: 0.0, f1: 0.0 };
        assert_eq!(quality_metrics(&r, true)[0].1, 0.0);
    }

    #[test]
    fn sequence_headline_uses_span_f1() {
        let mut r = row(0.0, None);
        r.prediction = EvalMetrics { accuracy: 0.9, precision: 0.5, recall: 0.5, f1: 0.5 };
        let metrics = quality_metrics(&r, true);
        assert_eq!(metrics[0].1, 0.5f32 as f64);
        assert!(metrics.iter().all(|(k, _)| !k.starts_with("inf_")), "no inference block without inference metrics");
    }

    #[test]
    fn rows_are_recorded_under_the_scenario() {
        let mut report = BenchReport::new("unit");
        record_quality_rows(&mut report, "sent/clean", &[row(0.7, Some(0.8))], false);
        assert_eq!(report.quality.len(), 1);
        assert_eq!(report.quality[0].scenario, "sent/clean");
        assert_eq!(report.quality[0].method, "m");
        assert_eq!(report.quality[0].metric("inf_f1"), Some(0.8f32 as f64));
    }
}
