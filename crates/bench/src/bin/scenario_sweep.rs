//! Cross-scenario robustness sweep: runs every standard-registry method
//! over the crowd-scenario grid (archetype mixes, redundancy, class
//! imbalance, pool size — see `lncl_crowd::scenario`) for both tasks and
//! prints one results table per scenario.  Per-method wall-clock times
//! *and* per-method quality tables land in the benchmark report (cases /
//! quality rows keyed by scenario and method), which the CI
//! `scenario-smoke` step merges across shards, ranks with `bench_diff
//! rank` and archives.
//!
//! Scenarios are sharded two ways, both bitwise identical to the serial
//! path:
//!
//! * **threads** — the grid is spread round-robin across up to
//!   `LNCL_THREADS` scoped worker threads in this process (the budget is
//!   split with per-scenario method parallelism, so `LNCL_THREADS` stays
//!   the overall cap);
//! * **processes** — `LNCL_SHARD=i/N` restricts this process to grid
//!   indices `i, i+N, …` and writes `BENCH_scenario_sweep_shard<i>of<N>.json`;
//!   recombine the shards with `bench_diff merge` (quality rows are
//!   name-sorted on both paths, so the merged report's quality table
//!   equals the serial one).
//!
//! Scale knobs: `LNCL_SCALE` (tiny / small / medium / paper / huge),
//! `LNCL_EPOCHS`, `LNCL_THREADS`, `LNCL_SHARD` — the smoke setting used in
//! CI is `LNCL_EPOCHS=3` in two shards.  Two more knobs serve the
//! distributed-sweep and scale-predictivity workflows:
//!
//! * `LNCL_SWEEP_METHODS` — comma-separated registry names restricting the
//!   sweep (unknown names warn; per task the filter intersects with the
//!   supporting methods as usual);
//! * `LNCL_SWEEP_QUALITY_ONLY=1` — write the **canonical quality-only**
//!   report (`lncl_bench::quality::quality_only_report`: sorted quality
//!   rows, fixed environment block, no wall-clock cases) instead of the
//!   timed report.  This file is deterministic for a fixed scale/seed, so
//!   the distributed `sweep_coord` merge can be compared against it with a
//!   literal `cmp`.

use lncl_bench::quality::{quality_only_report, record_scenario_outcome, scenario_quality_rows};
use lncl_bench::timing::{env_shard, BenchReport};
use lncl_bench::{
    render_classification_table, render_sequence_table, scenario_sweep_configs, shard_configs, sweep_scenarios, Scale,
};
use lncl_crowd::TaskKind;

/// Parses `LNCL_SWEEP_METHODS` (comma-separated registry names); unset or
/// empty means no filter.
fn env_sweep_methods() -> Option<Vec<String>> {
    let raw = std::env::var("LNCL_SWEEP_METHODS").ok()?;
    let names: Vec<String> = raw.split(',').map(str::trim).filter(|n| !n.is_empty()).map(String::from).collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

fn main() {
    let scale = Scale::from_env();
    let quality_only = std::env::var("LNCL_SWEEP_QUALITY_ONLY").is_ok_and(|v| v == "1");
    let method_filter = env_sweep_methods();
    let methods: Option<Vec<&str>> = method_filter.as_ref().map(|names| names.iter().map(String::as_str).collect());
    let grid = scenario_sweep_configs(scale, 29);
    let (configs, target) = match env_shard() {
        Some((index, total)) => (shard_configs(&grid, index, total), format!("scenario_sweep_shard{index}of{total}")),
        None => (grid, "scenario_sweep".to_string()),
    };
    println!(
        "Scenario sweep — {} scenarios (scale {}, {} epochs per training run, target {target})",
        configs.len(),
        scale.name(),
        scale.epochs()
    );
    if let Some(names) = &method_filter {
        println!("method filter (LNCL_SWEEP_METHODS): {}", names.join(", "));
    }
    let outcomes = sweep_scenarios(&configs, scale, methods.as_deref(), lncl_tensor::par::max_threads());
    let mut report = BenchReport::new(&target);
    for (config, outcome) in configs.iter().zip(&outcomes) {
        println!(
            "\n=== {} ({:?}, {} train / {} annotators, redundancy {}-{}, majority share {:.2}) ===",
            config.name,
            config.task,
            config.train_size,
            config.num_annotators,
            config.min_labels_per_instance,
            config.max_labels_per_instance,
            config.majority_share,
        );
        let table = match config.task {
            TaskKind::Classification => render_classification_table(&config.name, &outcome.rows),
            TaskKind::SequenceTagging => render_sequence_table(&config.name, &outcome.rows),
        };
        println!("{table}");
        println!("reliability recovery (consensus vs gold, Pearson): {:.3}", outcome.reliability_pearson);
        for (method, secs) in &outcome.timings {
            report.record(&format!("{}/{method}", config.name), 1, &[*secs]);
        }
        record_scenario_outcome(&mut report, outcome);
    }
    if quality_only {
        // the deterministic twin of the distributed sweep's merged output:
        // same constructor, same row order, same environment block
        let rows = outcomes.iter().flat_map(scenario_quality_rows).collect();
        report = quality_only_report(&target, scale, rows);
    } else {
        // canonical order: a sorted serial report and merged sorted shard
        // reports carry bitwise-identical quality tables
        report.sort_quality();
    }
    let path = report.write().expect("write benchmark report");
    println!("\nwrote {}", path.display());
}
