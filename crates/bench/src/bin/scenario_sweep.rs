//! Cross-scenario robustness sweep: runs every standard-registry method
//! over the crowd-scenario grid (archetype mixes, redundancy, class
//! imbalance, pool size — see `lncl_crowd::scenario`) for both tasks and
//! prints one results table per scenario.  Per-method wall-clock times land
//! in `BENCH_scenario_sweep.json` (cases keyed `<scenario>/<method>`),
//! which the CI `scenario-smoke` step archives.
//!
//! Scale knobs: `LNCL_SCALE` (small / medium / paper), `LNCL_EPOCHS`,
//! `LNCL_THREADS` — the smoke setting used in CI is `LNCL_EPOCHS=3`.

use lncl_bench::timing::BenchReport;
use lncl_bench::{render_classification_table, render_sequence_table, run_scenario, scenario_sweep_configs, Scale};
use lncl_crowd::TaskKind;

fn main() {
    let scale = Scale::from_env();
    let configs = scenario_sweep_configs(scale, 29);
    println!(
        "Scenario sweep — {} scenarios (scale {scale:?}, {} epochs per training run)",
        configs.len(),
        scale.epochs()
    );
    let mut report = BenchReport::new("scenario_sweep");
    for config in &configs {
        println!(
            "\n=== {} ({:?}, {} train / {} annotators, redundancy {}-{}, majority share {:.2}) ===",
            config.name,
            config.task,
            config.train_size,
            config.num_annotators,
            config.min_labels_per_instance,
            config.max_labels_per_instance,
            config.majority_share,
        );
        let (rows, timings) = run_scenario(config, scale);
        let table = match config.task {
            TaskKind::Classification => render_classification_table(&config.name, &rows),
            TaskKind::SequenceTagging => render_sequence_table(&config.name, &rows),
        };
        println!("{table}");
        for (method, secs) in &timings {
            report.record(&format!("{}/{method}", config.name), 1, &[*secs]);
        }
    }
    let path = report.write().expect("write benchmark report");
    println!("\nwrote {}", path.display());
}
