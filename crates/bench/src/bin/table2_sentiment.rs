//! Regenerates Table II: prediction + inference accuracy of every compared
//! method on the (synthetic) Sentiment Polarity dataset.  The rows are a
//! data-driven loop over `MethodRegistry` lookups (`TABLE2_METHODS`).
use lncl_bench::{render_classification_table, table2, Scale, TABLE2_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table II — Sentiment Polarity (scale {scale:?}, {} repetition(s), {} epochs)",
        scale.repetitions(),
        scale.epochs()
    );
    println!("registry methods: {}", TABLE2_METHODS.join(", "));
    let rows = table2(scale);
    println!(
        "{}",
        render_classification_table("Performance (accuracy, %) on the synthetic Sentiment Polarity dataset", &rows)
    );
}
