//! Regenerates Table II: prediction + inference accuracy of every compared
//! method on the (synthetic) Sentiment Polarity dataset.  The rows are a
//! data-driven loop over `MethodRegistry` lookups (`TABLE2_METHODS`); the
//! per-method wall-clock times and the quality table land in
//! `BENCH_table2_sentiment.json`.
use lncl_bench::quality::record_quality_rows;
use lncl_bench::timing::BenchReport;
use lncl_bench::{render_classification_table, table2_timed, Scale, TABLE2_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table II — Sentiment Polarity (scale {scale:?}, {} repetition(s), {} epochs)",
        scale.repetitions(),
        scale.epochs()
    );
    println!("registry methods: {}", TABLE2_METHODS.join(", "));
    let timed = table2_timed(scale);
    println!(
        "{}",
        render_classification_table(
            "Performance (accuracy, %) on the synthetic Sentiment Polarity dataset",
            &timed.rows
        )
    );
    let mut report = BenchReport::new("table2_sentiment");
    for (method, samples) in &timed.timings {
        report.record(method, samples.len(), samples);
    }
    record_quality_rows(&mut report, "table2/sentiment", &timed.rows, false);
    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
