//! Closed-loop routing-policy budget curves (beyond the paper; see the
//! crate README): runs every `PolicyKind` over a small family of crowd
//! scenarios at full label budget, records one quality row per
//! `(scenario, policy, budget fraction)` into `BENCH_budget_curves.json`
//! under the `<family>@b<fraction>` naming of `lncl_bench::budget`, and
//! prints the accuracy-per-label-spent curves.  The CI bench-smoke job
//! rank-gates the rows with `bench_diff rank --budget <fraction>` against
//! `budget_baseline.json`.
//!
//! Everything is deterministic for the fixed seeds below, so the emitted
//! quality table is bitwise reproducible — the property the rank gate
//! relies on.

use lncl_bench::budget::{record_budget_curve, sweep_budget_curves};
use lncl_bench::timing::BenchReport;
use lncl_crowd::scenario::{Archetype, DriftSchedule, PropensityProfile, ScenarioConfig};
use std::time::Instant;

/// The scenario families swept: a spammer-heavy pool (where routing has
/// the most to gain) and a drifting pool (where live estimates go stale).
fn families() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::classification("sent/spam-heavy")
            .with_sizes(120, 20, 20)
            .with_annotators(10)
            .with_redundancy(4, 4)
            .with_propensity(PropensityProfile::Uniform)
            .with_mix(vec![(Archetype::Reliable { accuracy: 0.9 }, 0.5), (Archetype::Spammer, 0.5)])
            .with_seed(97),
        ScenarioConfig::classification("sent/drift")
            .with_sizes(120, 20, 20)
            .with_annotators(10)
            .with_redundancy(4, 4)
            .with_propensity(PropensityProfile::Uniform)
            .with_mix(vec![(Archetype::Reliable { accuracy: 0.85 }, 0.7), (Archetype::Spammer, 0.3)])
            .with_drift(DriftSchedule::LinearFatigue { rate: 0.6 })
            .with_seed(307),
    ]
}

fn main() {
    let configs = families();
    println!("Budget curves — {} scenario families x 3 policies", configs.len());
    let mut report = BenchReport::new("budget_curves");
    for config in &configs {
        println!("\n=== {} ({} train, {} annotators) ===", config.name, config.train_size, config.num_annotators);
        let start = Instant::now();
        let curves = sweep_budget_curves(config);
        let elapsed = start.elapsed().as_secs_f64();
        for curve in &curves {
            print!("  {:<22}", curve.policy.name());
            for point in &curve.points {
                print!("  b{:.2}: {:.3} ({} labels)", point.budget_fraction, point.accuracy, point.labels_spent);
            }
            println!();
            record_budget_curve(&mut report, curve);
        }
        report.record(&format!("{}/sweep", config.name), 1, &[elapsed]);
    }
    report.sort_quality();
    let path = report.write().expect("write benchmark report");
    println!("\nwrote {}", path.display());
}
