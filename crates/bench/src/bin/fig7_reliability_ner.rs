//! Regenerates Figure 7: annotator confusion-matrix estimation and overall
//! reliability correlation on the NER dataset.
use lncl_bench::{reliability_study, render_confusion, Scale};

fn main() {
    let scale = Scale::from_env();
    let dataset = scale.ner_dataset(11);
    let study = reliability_study(&dataset, scale, 11, 4);
    println!("Figure 7 — annotator reliability estimation (NER, scale {scale:?})\n");
    for (i, &annotator) in study.top_annotators.iter().enumerate() {
        println!(
            "{}",
            render_confusion(&format!("Annotator {annotator} — Real (empirical)"), &study.class_names, &study.real[i])
        );
        println!(
            "{}",
            render_confusion(
                &format!("Annotator {annotator} — Logic-LNCL estimate"),
                &study.class_names,
                &study.estimated[i]
            )
        );
    }
    println!("(b) Overall reliability: Pearson correlation (estimated vs real) = {:.4}", study.pearson);
}
