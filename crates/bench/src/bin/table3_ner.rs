//! Regenerates Table III: prediction + inference P/R/F1 of every compared
//! method on the (synthetic) CoNLL-2003 NER dataset.  The rows are a
//! data-driven loop over `MethodRegistry` lookups (`TABLE3_METHODS`); the
//! per-method wall-clock times and the quality table land in
//! `BENCH_table3_ner.json`.
use lncl_bench::quality::record_quality_rows;
use lncl_bench::timing::BenchReport;
use lncl_bench::{render_sequence_table, table3_timed, Scale, TABLE3_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table III — CoNLL-2003 NER (scale {scale:?}, {} repetition(s), {} epochs)",
        scale.repetitions(),
        scale.epochs()
    );
    println!("registry methods: {}", TABLE3_METHODS.join(", "));
    let timed = table3_timed(scale);
    println!(
        "{}",
        render_sequence_table(
            "Performance (%) on the synthetic CoNLL-2003 NER dataset (strict span metrics)",
            &timed.rows
        )
    );
    let mut report = BenchReport::new("table3_ner");
    for (method, samples) in &timed.timings {
        report.record(method, samples.len(), samples);
    }
    record_quality_rows(&mut report, "table3/ner", &timed.rows, true);
    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
