//! Regenerates Table III: prediction + inference P/R/F1 of every compared
//! method on the (synthetic) CoNLL-2003 NER dataset.  The rows are a
//! data-driven loop over `MethodRegistry` lookups (`TABLE3_METHODS`).
use lncl_bench::{render_sequence_table, table3, Scale, TABLE3_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table III — CoNLL-2003 NER (scale {scale:?}, {} repetition(s), {} epochs)",
        scale.repetitions(),
        scale.epochs()
    );
    println!("registry methods: {}", TABLE3_METHODS.join(", "));
    let rows = table3(scale);
    println!(
        "{}",
        render_sequence_table("Performance (%) on the synthetic CoNLL-2003 NER dataset (strict span metrics)", &rows)
    );
}
