//! Regenerates Table III: prediction + inference P/R/F1 of every compared
//! method on the (synthetic) CoNLL-2003 NER dataset.
use lncl_bench::{render_sequence_table, table3, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Table III — CoNLL-2003 NER (scale {scale:?}, {} repetition(s), {} epochs)", scale.repetitions(), scale.epochs());
    let rows = table3(scale);
    println!("{}", render_sequence_table("Performance (%) on the synthetic CoNLL-2003 NER dataset (strict span metrics)", &rows));
}
