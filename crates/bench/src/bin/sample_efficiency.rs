//! Regenerates the §VI-B sample-efficiency experiment: Logic-LNCL-teacher vs
//! the strongest baseline (AggNet) on growing fractions of the training set.
use lncl_bench::{sample_efficiency, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Sample efficiency (sentiment, scale {scale:?})");
    println!("{:<10} {:>22} {:>16}", "fraction", "Logic-LNCL-teacher", "AggNet");
    for (fraction, teacher, aggnet) in sample_efficiency(scale, &[0.4, 0.6, 0.8, 1.0], 7) {
        println!("{:<10.2} {:>22.2} {:>16.2}", fraction, teacher.accuracy * 100.0, aggnet.accuracy * 100.0);
    }
}
