//! Huge-tier streaming benchmark: scenario generation fused with the first
//! pseudo-E-step (`logic_lncl::streaming::stream_mv_init`) for both tasks
//! at the selected scale's scenario sizes.  The corpus is produced in
//! chunks and folded straight into the flat majority-vote posterior arena,
//! so peak memory is the arena plus one chunk — never the full training
//! split.  The report records the process peak RSS (`peak_rss_kb`), which
//! CI gates with `bench_diff compare --rss-gate` against the checked-in
//! `bench_huge_stream_baseline.json`: an accidental full-corpus
//! materialisation in the streaming path shows up as a multiple of the
//! expected high-water mark.
//!
//! Knobs: `LNCL_SCALE` (small / medium / paper / **huge**) picks the
//! corpus sizes, `LNCL_STREAM_CHUNK` the instances per generation chunk
//! (default 512), plus the usual `LNCL_BENCH_ITERS` / `LNCL_BENCH_DIR`.
//! The `huge` tier streams 50,000 classification / 12,000 tagging
//! instances — 25x / 10x the paper tier — which is the configuration the
//! checked-in `BENCH_huge_stream.json` documents.

use lncl_bench::timing::{env_usize, BenchReport};
use lncl_bench::Scale;
use lncl_crowd::TaskKind;
use logic_lncl::streaming::stream_mv_init;

fn main() {
    let scale = Scale::from_env();
    let chunk = env_usize("LNCL_STREAM_CHUNK").unwrap_or(512).max(1);
    let mut report = BenchReport::new("huge_stream");
    report.environment.push(("stream_chunk".to_string(), chunk.to_string()));
    println!("Huge-tier streaming first E-pass (scale {scale:?}, chunk {chunk})");

    for (name, task) in [("sent", TaskKind::Classification), ("ner", TaskKind::SequenceTagging)] {
        let config = scale.scenario_base(task, 4247).named(format!("{name}-stream"));
        let mut last = None;
        report.bench(&format!("stream_mv_init/{name}"), || {
            last = Some(stream_mv_init(&config, chunk));
        });
        let init = last.expect("at least one timed iteration ran");
        let arena_kb = (init.qf.total_units() * init.qf.num_classes() * std::mem::size_of::<f32>()) as f64 / 1024.0;
        println!(
            "  {name}: {} instances, {} units, {} crowd labels, MV accuracy {:.4}, arena {:.1} MB",
            init.qf.num_instances(),
            init.qf.total_units(),
            init.crowd_labels,
            init.mv_accuracy,
            arena_kb / 1024.0
        );
        report.record_quality(
            &format!("{name}/stream"),
            "MV-stream",
            vec![
                ("headline".to_string(), init.mv_accuracy),
                ("train_instances".to_string(), init.qf.num_instances() as f64),
                ("train_units".to_string(), init.qf.total_units() as f64),
                ("crowd_labels".to_string(), init.crowd_labels as f64),
                ("arena_kb".to_string(), arena_kb),
            ],
        );
    }

    report.record_peak_rss();
    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
