//! Regenerates Figure 4: per-annotator workload and quality statistics for
//! both (synthetic) datasets.
use lncl_bench::{figure4, render_boxplot, Scale};

fn main() {
    let scale = Scale::from_env();
    let (sentiment, ner) = figure4(scale, 7);
    println!("Figure 4 — annotator statistics (scale {scale:?})\n");
    println!("Sentiment Polarity (synthetic MTurk stand-in)");
    println!("  total crowd labels: {}", sentiment.total_labels);
    println!("  avg labels per instance: {:.2}", sentiment.avg_labels_per_instance);
    println!("  {}", render_boxplot("(a) instances per annotator", sentiment.instances_boxplot));
    println!("  {}", render_boxplot("(b) annotator accuracy", sentiment.quality_boxplot));
    println!();
    println!("CoNLL-2003 NER (synthetic MTurk stand-in)");
    println!("  total crowd labels: {}", ner.total_labels);
    println!("  avg labels per instance: {:.2}", ner.avg_labels_per_instance);
    println!("  {}", render_boxplot("(a) instances per annotator", ner.instances_boxplot));
    println!("  {}", render_boxplot("(b) annotator span F1", ner.quality_boxplot));
}
