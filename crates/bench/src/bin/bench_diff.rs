//! Before/after comparison and ranking analysis of `BENCH_*.json`
//! benchmark reports — the tool behind the CI perf gate, the scenario
//! ranking analysis and the local workflows documented in the crate
//! README.
//!
//! ```text
//! bench_diff compare <baseline.json> <current.json>... [--gate <factor>] [--rss-gate <factor>]
//! bench_diff merge <out.json> <in.json>...
//! bench_diff rank <report.json>... [--metric <key>] [--budget <fraction>] [--baseline <file>] [--gate <max-drop>]
//! bench_diff predictivity <small.json> <large.json> [--metric <key>] [--json <out.json>]
//! ```
//!
//! * `compare` prints a before/after table of the **timed** cases.  Cases
//!   are keyed `target/case_name`; with `--gate F` the exit code is 1 if
//!   any case's mean regresses by more than `F`x against the baseline.
//!   `--rss-gate F` additionally compares each current report's
//!   `peak_rss_kb` against the baseline's and fails past `F`x growth (or
//!   when a gated report stopped recording RSS) — the memory gate of the
//!   huge-tier streaming path.
//! * `merge` combines several reports into one: timed cases renamed to
//!   `target/case_name` (how `bench_baseline.json` is produced), quality
//!   rows concatenated and name-sorted (how sharded `scenario_sweep`
//!   reports are recombined — the sorted merge is bitwise identical to the
//!   serial sweep's quality table).  Overlapping inputs — the same
//!   `(scenario, method)` quality row or the same qualified case in two
//!   files — are an **error**, not a silent interleave
//!   (`lncl_bench::merge`).
//! * `rank` ranks each scenario's methods by a **quality** metric
//!   (default `headline`), prints the rankings and every pairwise
//!   ranking flip between scenarios.  With `--baseline` it also reports
//!   flips against the baseline report per scenario; `--gate D` then
//!   fails (exit 1) when any method's metric drops by more than `D`
//!   absolute, or a baseline row vanishes — the quality counterpart of
//!   the perf gate.  With `--budget F` only the budget-curve rows
//!   recorded at fraction `F` (scenario suffix `@bF`, see the
//!   `budget_curves` target) are ranked, and each family's ranking at
//!   `F` is additionally compared against its full-budget (`@b1.00`)
//!   ranking — the flips that budget level causes; the `--baseline`
//!   rows are filtered the same way before gating.
//! * `predictivity` joins a small-scale and a large-scale sweep report
//!   cell by cell (`lncl_bench::predictivity`) and prints per-cell rank
//!   correlation (Spearman ρ, Kendall τ-b), flip counts, winners and a
//!   trustworthy / mixed / untrustworthy verdict — which smoke cells are
//!   reliable proxies for paper-scale rankings.  `--json` additionally
//!   writes the machine-readable report (schema in the crate README).

use lncl_bench::budget::{budget_scenario_name, filter_by_budget, parse_budget_suffix};
use lncl_bench::merge::{merge_reports, qualified_cases};
use lncl_bench::predictivity::predictivity_report;
use lncl_bench::quality::HEADLINE_METRIC;
use lncl_bench::rank::{quality_regressions, rank_scenarios, ranking_flips, RankingFlip};
use lncl_bench::timing::{BenchReport, QualityCase};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_diff compare <baseline.json> <current.json>... [--gate <factor>] [--rss-gate <factor>]");
    eprintln!("       bench_diff merge <out.json> <in.json>...");
    eprintln!(
        "       bench_diff rank <report.json>... [--metric <key>] [--budget <fraction>] [--baseline <file>] [--gate <max-drop>]"
    );
    eprintln!("       bench_diff predictivity <small.json> <large.json> [--metric <key>] [--json <out.json>]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<BenchReport, String> {
    BenchReport::load(Path::new(path))
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn compare(args: &[String]) -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut rss_gate: Option<f64> = None;
    let mut files = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--gate" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => gate = Some(f),
                _ => {
                    eprintln!("bench_diff: --gate needs a positive factor");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--rss-gate" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => rss_gate = Some(f),
                _ => {
                    eprintln!("bench_diff: --rss-gate needs a positive factor");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(arg.clone());
        }
    }
    if files.len() < 2 {
        return usage();
    }
    let baseline = match load(&files[0]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_cases = qualified_cases(&baseline);
    let mut current_cases = Vec::new();
    let mut current_rss: Vec<(String, Option<u64>)> = Vec::new();
    for file in &files[1..] {
        match load(file) {
            Ok(r) => {
                current_rss.push((r.target.clone(), r.peak_rss_kb));
                current_cases.extend(qualified_cases(&r));
            }
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("{:<44} {:>12} {:>12} {:>8}  status", "case", "baseline", "current", "ratio");
    println!("{}", "-".repeat(92));
    let mut regressions = 0usize;
    for case in &current_cases {
        match baseline_cases.iter().find(|b| b.name == case.name) {
            None => println!("{:<44} {:>12} {:>12} {:>8}  new", case.name, "-", format_secs(case.mean_s), "-"),
            Some(base) => {
                let ratio = case.mean_s / base.mean_s;
                let status = match gate {
                    Some(f) if ratio > f => {
                        regressions += 1;
                        "REGRESSED"
                    }
                    _ if ratio > 1.1 => "slower",
                    _ if ratio < 0.9 => "faster",
                    _ => "ok",
                };
                println!(
                    "{:<44} {:>12} {:>12} {:>7.2}x  {status}",
                    case.name,
                    format_secs(base.mean_s),
                    format_secs(case.mean_s),
                    ratio
                );
            }
        }
    }
    let mut missing = 0usize;
    for base in &baseline_cases {
        if !current_cases.iter().any(|c| c.name == base.name) {
            missing += 1;
            println!("{:<44} {:>12} {:>12} {:>8}  missing", base.name, format_secs(base.mean_s), "-", "-");
        }
    }
    if let Some(f) = gate {
        // a vanished baseline case is a lost perf protection, not a pass
        if regressions > 0 || missing > 0 {
            eprintln!(
                "bench_diff: {regressions} case(s) regressed by more than {f}x, {missing} baseline case(s) missing"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: no case regressed by more than {f}x and none went missing");
    }
    if let Some(f) = rss_gate {
        // the memory gate of the streaming tier: peak RSS growing by more
        // than the factor means the "never materialise the corpus" claim
        // broke somewhere
        let Some(base_kb) = baseline.peak_rss_kb else {
            eprintln!("bench_diff: --rss-gate given but baseline {} has no peak_rss_kb", files[0]);
            return ExitCode::FAILURE;
        };
        let mut rss_regressions = 0usize;
        for (target, kb) in &current_rss {
            let Some(kb) = kb else {
                // a report that stopped recording RSS is a lost protection
                eprintln!("bench_diff: report {target} has no peak_rss_kb to gate");
                rss_regressions += 1;
                continue;
            };
            let ratio = *kb as f64 / base_kb as f64;
            let status = if ratio > f {
                rss_regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<44} {:>9.1} MB {:>9.1} MB {:>7.2}x  {status}",
                format!("{target} (peak RSS)"),
                base_kb as f64 / 1024.0,
                *kb as f64 / 1024.0,
                ratio
            );
        }
        if rss_regressions > 0 {
            eprintln!("bench_diff: {rss_regressions} report(s) failed the {f}x peak-RSS gate");
            return ExitCode::FAILURE;
        }
        println!("rss gate ok: no report's peak RSS grew by more than {f}x");
    }
    ExitCode::SUCCESS
}

fn merge(args: &[String]) -> ExitCode {
    if args.len() < 2 {
        return usage();
    }
    let mut reports = Vec::new();
    for file in &args[1..] {
        match load(file) {
            Ok(report) => reports.push(report),
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = match merge_reports(&reports) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args[0], merged.to_json()) {
        eprintln!("bench_diff: {}: {e}", args[0]);
        return ExitCode::FAILURE;
    }
    println!("merged {} case(s) and {} quality row(s) into {}", merged.cases.len(), merged.quality.len(), args[0]);
    ExitCode::SUCCESS
}

fn predictivity(args: &[String]) -> ExitCode {
    let mut metric = HEADLINE_METRIC.to_string();
    let mut json_out: Option<String> = None;
    let mut files = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metric" => match iter.next() {
                Some(key) => metric = key.clone(),
                None => return usage(),
            },
            "--json" => match iter.next() {
                Some(path) => json_out = Some(path.clone()),
                None => return usage(),
            },
            _ => files.push(arg.clone()),
        }
    }
    if files.len() != 2 {
        return usage();
    }
    let (small, large) = match (load(&files[0]), load(&files[1])) {
        (Ok(s), Ok(l)) => (s, l),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = predictivity_report(&small.quality, &large.quality, &metric);
    if report.cells.is_empty() {
        eprintln!("bench_diff: no joinable cells between {} and {} on metric {metric:?}", files[0], files[1]);
        return ExitCode::FAILURE;
    }
    println!("scale predictivity by {metric:?}: {} vs {} ({} cell(s))", files[0], files[1], report.cells.len());
    println!(
        "{:<46} {:>7} {:>8} {:>8} {:>6}  {:<15} winner small -> large",
        "cell", "methods", "spearman", "tau-b", "flips", "verdict"
    );
    println!("{}", "-".repeat(118));
    for cell in &report.cells {
        println!(
            "{:<46} {:>7} {:>8.3} {:>8.3} {:>6}  {:<15} {} -> {}",
            cell.scenario,
            cell.methods,
            cell.spearman,
            cell.kendall_tau,
            cell.flips,
            cell.verdict(),
            cell.top_small,
            cell.top_large
        );
    }
    for (label, unmatched) in [("small", &report.unmatched_small), ("large", &report.unmatched_large)] {
        if !unmatched.is_empty() {
            println!("unmatched ({label} side only, or <2 shared methods): {}", unmatched.join(", "));
        }
    }
    let trustworthy = report.with_verdict("trustworthy").len();
    let untrustworthy = report.with_verdict("untrustworthy").len();
    println!(
        "\n{trustworthy} trustworthy / {} mixed / {untrustworthy} untrustworthy of {} cell(s)",
        report.cells.len() - trustworthy - untrustworthy,
        report.cells.len()
    );
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("bench_diff: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn print_flips(flips: &[RankingFlip]) {
    const SHOWN: usize = 10;
    for flip in flips.iter().take(SHOWN) {
        println!("    {} overtakes {}", flip.promoted, flip.demoted);
    }
    if flips.len() > SHOWN {
        println!("    … and {} more", flips.len() - SHOWN);
    }
}

fn rank(args: &[String]) -> ExitCode {
    let mut metric = HEADLINE_METRIC.to_string();
    let mut baseline_file: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut budget: Option<f64> = None;
    let mut files = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metric" => match iter.next() {
                Some(key) => metric = key.clone(),
                None => return usage(),
            },
            "--budget" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => budget = Some(f),
                _ => {
                    eprintln!("bench_diff: --budget needs a fraction in (0, 1]");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match iter.next() {
                Some(file) => baseline_file = Some(file.clone()),
                None => return usage(),
            },
            "--gate" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(d) if d >= 0.0 => gate = Some(d),
                _ => {
                    eprintln!("bench_diff: --gate needs a non-negative absolute drop");
                    return ExitCode::from(2);
                }
            },
            _ => files.push(arg.clone()),
        }
    }
    if files.is_empty() {
        return usage();
    }
    if gate.is_some() && baseline_file.is_none() {
        eprintln!("bench_diff: rank --gate needs --baseline <file> to compare against");
        return ExitCode::from(2);
    }
    let mut all_quality: Vec<QualityCase> = Vec::new();
    for file in &files {
        match load(file) {
            Ok(report) => all_quality.extend(report.quality),
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let quality = match budget {
        None => all_quality.clone(),
        Some(fraction) => {
            let filtered = filter_by_budget(&all_quality, fraction);
            if filtered.is_empty() {
                eprintln!("bench_diff: no budget-curve rows at fraction {fraction} (scenario suffix @b{fraction:.2})");
                return ExitCode::FAILURE;
            }
            filtered
        }
    };
    let rankings = rank_scenarios(&quality, &metric);
    if rankings.is_empty() {
        eprintln!("bench_diff: no quality rows with metric {metric:?} in {files:?}");
        return ExitCode::FAILURE;
    }

    println!("method rankings by {metric:?} ({} scenario(s))", rankings.len());
    for ranking in &rankings {
        println!("\n{}", ranking.scenario);
        for entry in &ranking.entries {
            println!("  {:>3}. {:<34} {:.4}", entry.rank, entry.method, entry.value);
        }
    }

    println!("\nranking flips between scenario pairs:");
    let mut flipped_pairs = 0usize;
    for (i, a) in rankings.iter().enumerate() {
        for b in &rankings[i + 1..] {
            let flips = ranking_flips(a, b);
            if flips.is_empty() {
                continue;
            }
            flipped_pairs += 1;
            println!("  {} -> {} ({} flip(s))", a.scenario, b.scenario, flips.len());
            print_flips(&flips);
        }
    }
    if flipped_pairs == 0 {
        println!("  none — every scenario ranks the methods identically");
    }

    if let Some(fraction) = budget {
        // how this budget level reorders each family against full budget
        let full_rankings = rank_scenarios(&filter_by_budget(&all_quality, 1.0), &metric);
        println!("\nranking flips at budget {fraction:.2} vs full budget:");
        let mut any_budget_flip = false;
        for current in &rankings {
            let Some((family, _)) = parse_budget_suffix(&current.scenario) else { continue };
            let full_name = budget_scenario_name(family, 1.0);
            let Some(full) = full_rankings.iter().find(|r| r.scenario == full_name) else { continue };
            let flips = ranking_flips(current, full);
            if flips.is_empty() {
                continue;
            }
            any_budget_flip = true;
            println!("  {} -> {} ({} flip(s))", current.scenario, full.scenario, flips.len());
            print_flips(&flips);
        }
        if !any_budget_flip {
            println!("  none — this budget level preserves every full-budget ranking");
        }
    }

    let Some(baseline_file) = baseline_file else {
        return ExitCode::SUCCESS;
    };
    let baseline = match load(&baseline_file) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    // a budget filter narrows the baseline the same way, so the gate never
    // reports the other fractions' rows as vanished
    let baseline_quality = match budget {
        None => baseline.quality.clone(),
        Some(fraction) => filter_by_budget(&baseline.quality, fraction),
    };
    let baseline_rankings = rank_scenarios(&baseline_quality, &metric);
    println!("\nranking flips vs baseline {baseline_file}:");
    let mut any_baseline_flip = false;
    for current in &rankings {
        let Some(base) = baseline_rankings.iter().find(|b| b.scenario == current.scenario) else { continue };
        let flips = ranking_flips(base, current);
        if flips.is_empty() {
            continue;
        }
        any_baseline_flip = true;
        println!("  {} ({} flip(s))", current.scenario, flips.len());
        print_flips(&flips);
    }
    if !any_baseline_flip {
        println!("  none");
    }
    if let Some(max_drop) = gate {
        let regressions = quality_regressions(&baseline_quality, &quality, &metric, max_drop);
        for regression in &regressions {
            match regression.current {
                Some(value) => println!(
                    "REGRESSED {:<44} {} {:.4} -> {:.4}",
                    format!("{}/{}", regression.scenario, regression.method),
                    metric,
                    regression.baseline,
                    value
                ),
                None => println!(
                    "MISSING   {:<44} {} {:.4} -> (row vanished)",
                    format!("{}/{}", regression.scenario, regression.method),
                    metric,
                    regression.baseline
                ),
            }
        }
        if !regressions.is_empty() {
            eprintln!("bench_diff: {} quality row(s) regressed by more than {max_drop} or vanished", regressions.len());
            return ExitCode::FAILURE;
        }
        println!("quality gate ok: no {metric:?} drop above {max_drop} and no vanished rows");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => compare(&args[1..]),
        Some("merge") => merge(&args[1..]),
        Some("rank") => rank(&args[1..]),
        Some("predictivity") => predictivity(&args[1..]),
        _ => usage(),
    }
}
