//! Before/after comparison of `BENCH_*.json` benchmark reports — the tool
//! behind the CI perf gate and the local workflow documented in the crate
//! README.
//!
//! ```text
//! bench_diff compare <baseline.json> <current.json>... [--gate <factor>]
//! bench_diff merge <out.json> <in.json>...
//! ```
//!
//! * `compare` prints a before/after table.  Cases are keyed
//!   `target/case_name`; with `--gate F` the exit code is 1 if any case's
//!   mean regresses by more than `F`x against the baseline.
//! * `merge` combines several reports into one (cases renamed to
//!   `target/case_name`), which is how `bench_baseline.json` is produced.

use lncl_bench::timing::{BenchReport, CaseStats};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_diff compare <baseline.json> <current.json>... [--gate <factor>]");
    eprintln!("       bench_diff merge <out.json> <in.json>...");
    ExitCode::from(2)
}

fn qualified_cases(report: &BenchReport) -> Vec<CaseStats> {
    report
        .cases
        .iter()
        .map(|c| {
            // merged reports already carry target-qualified names
            let name = if c.name.starts_with(&format!("{}/", report.target)) || report.target == "merged" {
                c.name.clone()
            } else {
                format!("{}/{}", report.target, c.name)
            };
            CaseStats { name, ..c.clone() }
        })
        .collect()
}

fn load(path: &str) -> Result<BenchReport, String> {
    BenchReport::load(Path::new(path))
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn compare(args: &[String]) -> ExitCode {
    let mut gate: Option<f64> = None;
    let mut files = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--gate" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => gate = Some(f),
                _ => {
                    eprintln!("bench_diff: --gate needs a positive factor");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(arg.clone());
        }
    }
    if files.len() < 2 {
        return usage();
    }
    let baseline = match load(&files[0]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_cases = qualified_cases(&baseline);
    let mut current_cases = Vec::new();
    for file in &files[1..] {
        match load(file) {
            Ok(r) => current_cases.extend(qualified_cases(&r)),
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("{:<44} {:>12} {:>12} {:>8}  status", "case", "baseline", "current", "ratio");
    println!("{}", "-".repeat(92));
    let mut regressions = 0usize;
    for case in &current_cases {
        match baseline_cases.iter().find(|b| b.name == case.name) {
            None => println!("{:<44} {:>12} {:>12} {:>8}  new", case.name, "-", format_secs(case.mean_s), "-"),
            Some(base) => {
                let ratio = case.mean_s / base.mean_s;
                let status = match gate {
                    Some(f) if ratio > f => {
                        regressions += 1;
                        "REGRESSED"
                    }
                    _ if ratio > 1.1 => "slower",
                    _ if ratio < 0.9 => "faster",
                    _ => "ok",
                };
                println!(
                    "{:<44} {:>12} {:>12} {:>7.2}x  {status}",
                    case.name,
                    format_secs(base.mean_s),
                    format_secs(case.mean_s),
                    ratio
                );
            }
        }
    }
    let mut missing = 0usize;
    for base in &baseline_cases {
        if !current_cases.iter().any(|c| c.name == base.name) {
            missing += 1;
            println!("{:<44} {:>12} {:>12} {:>8}  missing", base.name, format_secs(base.mean_s), "-", "-");
        }
    }
    if let Some(f) = gate {
        // a vanished baseline case is a lost perf protection, not a pass
        if regressions > 0 || missing > 0 {
            eprintln!(
                "bench_diff: {regressions} case(s) regressed by more than {f}x, {missing} baseline case(s) missing"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: no case regressed by more than {f}x and none went missing");
    }
    ExitCode::SUCCESS
}

fn merge(args: &[String]) -> ExitCode {
    if args.len() < 2 {
        return usage();
    }
    let mut merged = BenchReport::new("merged");
    for file in &args[1..] {
        match load(file) {
            Ok(report) => merged.cases.extend(qualified_cases(&report)),
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args[0], merged.to_json()) {
        eprintln!("bench_diff: {}: {e}", args[0]);
        return ExitCode::FAILURE;
    }
    println!("merged {} case(s) into {}", merged.cases.len(), args[0]);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => compare(&args[1..]),
        Some("merge") => merge(&args[1..]),
        _ => usage(),
    }
}
