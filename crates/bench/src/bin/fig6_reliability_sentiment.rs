//! Regenerates Figure 6: annotator confusion-matrix estimation and overall
//! reliability correlation on the sentiment dataset.
use lncl_bench::{reliability_study, render_confusion, Scale};

fn main() {
    let scale = Scale::from_env();
    let dataset = scale.sentiment_dataset(7);
    let study = reliability_study(&dataset, scale, 7, 6);
    println!("Figure 6 — annotator reliability estimation (sentiment, scale {scale:?})\n");
    for (i, &annotator) in study.top_annotators.iter().enumerate() {
        println!(
            "{}",
            render_confusion(&format!("Annotator {annotator} — Real (empirical)"), &study.class_names, &study.real[i])
        );
        println!(
            "{}",
            render_confusion(
                &format!("Annotator {annotator} — Logic-LNCL estimate"),
                &study.class_names,
                &study.estimated[i]
            )
        );
    }
    println!("(b) Overall reliability: Pearson correlation (estimated vs real) = {:.4}", study.pearson);
}
