//! Regenerates Table IV: the ablation study on both datasets.  The rows are
//! a data-driven loop over `MethodRegistry` lookups (`TABLE4_METHODS`); the
//! per-method wall-clock times and the quality tables land in
//! `BENCH_table4_ablation.json`.
use lncl_bench::quality::record_quality_rows;
use lncl_bench::timing::BenchReport;
use lncl_bench::{render_classification_table, render_sequence_table, table4_for_timed, Scale, TABLE4_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!("Table IV — ablation study (scale {scale:?}, {} epochs)", scale.epochs());
    println!("registry methods: {}", TABLE4_METHODS.join(", "));
    let mut report = BenchReport::new("table4_ablation");

    let sentiment = scale.sentiment_dataset(7);
    let timed = table4_for_timed(&sentiment, scale, 7);
    println!("{}", render_classification_table("Ablation on the sentiment dataset (accuracy, %)", &timed.rows));
    for (method, samples) in &timed.timings {
        report.record(&format!("sentiment/{method}"), samples.len(), samples);
    }
    record_quality_rows(&mut report, "table4/sentiment", &timed.rows, false);

    let ner = scale.ner_dataset(11);
    let timed = table4_for_timed(&ner, scale, 11);
    println!("{}", render_sequence_table("Ablation on the NER dataset (strict span metrics, %)", &timed.rows));
    for (method, samples) in &timed.timings {
        report.record(&format!("ner/{method}"), samples.len(), samples);
    }
    record_quality_rows(&mut report, "table4/ner", &timed.rows, true);

    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
