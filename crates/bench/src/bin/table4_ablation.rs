//! Regenerates Table IV: the ablation study on both datasets.  The rows are
//! a data-driven loop over `MethodRegistry` lookups (`TABLE4_METHODS`).
use lncl_bench::{render_classification_table, render_sequence_table, table4_for, Scale, TABLE4_METHODS};

fn main() {
    let scale = Scale::from_env();
    println!("Table IV — ablation study (scale {scale:?}, {} epochs)", scale.epochs());
    println!("registry methods: {}", TABLE4_METHODS.join(", "));
    let sentiment = scale.sentiment_dataset(7);
    let rows = table4_for(&sentiment, scale, 7);
    println!("{}", render_classification_table("Ablation on the sentiment dataset (accuracy, %)", &rows));
    let ner = scale.ner_dataset(11);
    let rows = table4_for(&ner, scale, 11);
    println!("{}", render_sequence_table("Ablation on the NER dataset (strict span metrics, %)", &rows));
}
