//! Regenerates Table IV: the ablation study on both datasets.
use lncl_bench::{render_classification_table, render_sequence_table, table4_for, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Table IV — ablation study (scale {scale:?}, {} epochs)", scale.epochs());
    let sentiment = scale.sentiment_dataset(7);
    let rows = table4_for(&sentiment, scale, 7);
    println!("{}", render_classification_table("Ablation on the sentiment dataset (accuracy, %)", &rows));
    let ner = scale.ner_dataset(11);
    let rows = table4_for(&ner, scale, 11);
    println!("{}", render_sequence_table("Ablation on the NER dataset (strict span metrics, %)", &rows));
}
