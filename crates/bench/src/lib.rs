//! # lncl-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section on the synthetic stand-in corpora (see
//! DESIGN.md §1 and §3):
//!
//! | target binary | paper artefact |
//! |---|---|
//! | `fig4_annotator_stats` | Figure 4 (annotator workload / quality boxplots) |
//! | `table2_sentiment` | Table II (sentiment prediction + inference) |
//! | `table3_ner` | Table III (NER prediction + inference) |
//! | `table4_ablation` | Table IV (ablation study) |
//! | `fig6_reliability_sentiment` | Figure 6 (annotator reliability, sentiment) |
//! | `fig7_reliability_ner` | Figure 7 (annotator reliability, NER) |
//! | `sample_efficiency` | §VI-B sample-efficiency experiment |
//! | `scenario_sweep` | cross-scenario robustness sweep (beyond the paper; see the README) |
//! | `budget_curves` | closed-loop routing-policy budget curves ([`budget`]; beyond the paper) |
//!
//! Each binary accepts the environment variables `LNCL_SCALE`
//! (`small` (default) / `medium` / `paper`), `LNCL_REPS` (number of repeated
//! runs averaged per method), `LNCL_EPOCHS`, `LNCL_BENCH_ITERS` (timed
//! iterations per bench case) and `LNCL_THREADS` (worker-thread cap) to
//! trade fidelity for wall time; the defaults finish in minutes on a
//! laptop-class CPU.  Bench targets and the table binaries additionally
//! write machine-readable `BENCH_<target>.json` reports ([`timing`],
//! [`json`]) carrying wall-clock cases *and* per-method quality tables
//! ([`quality`]); the CI perf gate compares the timings against the
//! checked-in `bench_baseline.json` via the `bench_diff` binary, and
//! `bench_diff rank` ([`rank`]) turns the quality tables into
//! per-scenario method rankings with flip detection.  `scenario_sweep`
//! shards across threads (`LNCL_THREADS`) and processes
//! (`LNCL_SHARD=i/N` + `bench_diff merge`) bitwise-identically — see the
//! crate README for the schema and workflows, and `ARCHITECTURE.md` at
//! the repository root for the workspace-level pipeline map.

pub mod budget;
pub mod experiments;
pub mod json;
pub mod merge;
pub mod methods;
pub mod predictivity;
pub mod quality;
pub mod rank;
pub mod scale;
pub mod tables;
pub mod timing;

pub use budget::*;
pub use experiments::*;
pub use merge::*;
pub use methods::*;
pub use predictivity::*;
pub use quality::*;
pub use rank::*;
pub use scale::*;
pub use tables::*;
