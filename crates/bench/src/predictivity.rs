//! Scale-predictivity analysis: which cells of a cheap smoke-scale
//! scenario grid rank methods the same way the paper-scale grid does —
//! the machinery behind `bench_diff predictivity`.
//!
//! CI runs the scenario sweep at smoke scale and gates on its rankings;
//! the implicit assumption is that a smoke cell's method ranking predicts
//! the paper-scale ranking of the same cell.  This module makes that
//! assumption measurable: it joins two sweeps' quality tables cell by cell
//! (grid names embed the scale's annotator count, so cells are matched by
//! the [`normalized_scenario_name`]), computes per-cell rank correlation
//! (Spearman's ρ over fractional ranks and Kendall's τ-b, both
//! tie-aware), counts strict pairwise flips, and classifies each cell as
//! `trustworthy` / `mixed` / `untrustworthy`.

use crate::json::Json;
use crate::rank::rank_scenarios;
use crate::timing::QualityCase;
use std::collections::BTreeMap;

/// τ-b at or above which (with an agreeing winner) a cell is
/// `trustworthy`.
pub const TRUST_TAU: f64 = 0.8;

/// τ-b below which a cell is `untrustworthy` regardless of the winner.
pub const UNTRUST_TAU: f64 = 0.5;

/// Schema version of the JSON report.
pub const PREDICTIVITY_SCHEMA_VERSION: u64 = 1;

/// Replaces every `j<digits>` path component of a grid scenario name with
/// `j*`.  Grid names embed the scale's annotator count
/// (`sent/clean/r3-5/j8/b0.50` at tiny vs `…/j60/…` at paper), which is a
/// scale artefact, not a cell identity — cross-scale joins match on this
/// normalized form.
pub fn normalized_scenario_name(name: &str) -> String {
    name.split('/')
        .map(|part| {
            let digits =
                part.strip_prefix('j').is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
            if digits {
                "j*"
            } else {
                part
            }
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// How one grid cell's smoke-scale ranking relates to its large-scale
/// ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPredictivity {
    /// Normalized cell name shared by both scales.
    pub scenario: String,
    /// Number of methods ranked on **both** sides of the join.
    pub methods: usize,
    /// Spearman's ρ over fractional (tie-averaged) ranks.
    pub spearman: f64,
    /// Kendall's τ-b (tie-corrected) between the two method orderings.
    pub kendall_tau: f64,
    /// Strict pairwise order reversals between the two scales.
    pub flips: usize,
    /// Best method(s) at the small scale (ties comma-joined).
    pub top_small: String,
    /// Best method(s) at the large scale (ties comma-joined).
    pub top_large: String,
    /// Whether the winner sets intersect.
    pub top1_agrees: bool,
}

impl CellPredictivity {
    /// `trustworthy` (τ ≥ [`TRUST_TAU`] and the winner agrees), plain
    /// `untrustworthy` (τ < [`UNTRUST_TAU`] or the winner differs), or
    /// `mixed` in between.
    pub fn verdict(&self) -> &'static str {
        if self.kendall_tau >= TRUST_TAU && self.top1_agrees {
            "trustworthy"
        } else if self.kendall_tau < UNTRUST_TAU || !self.top1_agrees {
            "untrustworthy"
        } else {
            "mixed"
        }
    }
}

/// The full cross-scale report: per-cell statistics plus the cells only
/// one side had (e.g. a grid axis added at one scale).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictivityReport {
    /// The quality metric the rankings were built from.
    pub metric: String,
    /// Per-cell statistics, cell-name order.
    pub cells: Vec<CellPredictivity>,
    /// Normalized cells only the small-scale sweep had.
    pub unmatched_small: Vec<String>,
    /// Normalized cells only the large-scale sweep had.
    pub unmatched_large: Vec<String>,
}

impl PredictivityReport {
    /// Cells with the given verdict, in report order.
    pub fn with_verdict(&self, verdict: &str) -> Vec<&CellPredictivity> {
        self.cells.iter().filter(|c| c.verdict() == verdict).collect()
    }

    /// Serialises the report (schema documented in the bench README).
    pub fn to_json(&self) -> String {
        let cells = Json::Arr(
            self.cells
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("scenario".to_string(), Json::Str(c.scenario.clone())),
                        ("methods".to_string(), Json::Num(c.methods as f64)),
                        ("spearman".to_string(), Json::Num(c.spearman)),
                        ("kendall_tau".to_string(), Json::Num(c.kendall_tau)),
                        ("flips".to_string(), Json::Num(c.flips as f64)),
                        ("top_small".to_string(), Json::Str(c.top_small.clone())),
                        ("top_large".to_string(), Json::Str(c.top_large.clone())),
                        ("top1_agrees".to_string(), Json::Bool(c.top1_agrees)),
                        ("verdict".to_string(), Json::Str(c.verdict().to_string())),
                    ])
                })
                .collect(),
        );
        let names = |list: &[String]| Json::Arr(list.iter().map(|n| Json::Str(n.clone())).collect());
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Num(PREDICTIVITY_SCHEMA_VERSION as f64)),
            ("metric".to_string(), Json::Str(self.metric.clone())),
            ("trust_tau".to_string(), Json::Num(TRUST_TAU)),
            ("untrust_tau".to_string(), Json::Num(UNTRUST_TAU)),
            ("cells".to_string(), cells),
            ("unmatched_small".to_string(), names(&self.unmatched_small)),
            ("unmatched_large".to_string(), names(&self.unmatched_large)),
        ])
        .render()
    }
}

/// Joins two sweeps' quality rows cell by cell and scores how well the
/// small scale predicts the large one on `metric`.  Cells are matched by
/// [`normalized_scenario_name`]; methods by exact name; cells sharing
/// fewer than two methods are reported as unmatched on both sides (no
/// correlation is defined there).
pub fn predictivity_report(small: &[QualityCase], large: &[QualityCase], metric: &str) -> PredictivityReport {
    let values_by_cell = |rows: &[QualityCase]| -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut cells: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for ranking in rank_scenarios(rows, metric) {
            let cell = cells.entry(normalized_scenario_name(&ranking.scenario)).or_default();
            for entry in ranking.entries {
                // duplicate cells after normalization keep the first value,
                // matching rank_scenarios' own duplicate policy
                cell.entry(entry.method).or_insert(entry.value);
            }
        }
        cells
    };
    let small_cells = values_by_cell(small);
    let large_cells = values_by_cell(large);

    let mut cells = Vec::new();
    let mut unmatched_small: Vec<String> = Vec::new();
    let mut unmatched_large: Vec<String> =
        large_cells.keys().filter(|name| !small_cells.contains_key(*name)).cloned().collect();
    for (name, small_methods) in &small_cells {
        let Some(large_methods) = large_cells.get(name) else {
            unmatched_small.push(name.clone());
            continue;
        };
        let shared: Vec<&String> = small_methods.keys().filter(|m| large_methods.contains_key(*m)).collect();
        if shared.len() < 2 {
            unmatched_small.push(name.clone());
            unmatched_large.push(name.clone());
            continue;
        }
        let x: Vec<f64> = shared.iter().map(|m| small_methods[*m]).collect();
        let y: Vec<f64> = shared.iter().map(|m| large_methods[*m]).collect();
        let winners = |values: &[f64]| -> Vec<&str> {
            let best = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            shared.iter().zip(values).filter(|&(_, v)| *v == best).map(|(m, _)| m.as_str()).collect()
        };
        let (top_small, top_large) = (winners(&x), winners(&y));
        let top1_agrees = top_small.iter().any(|m| top_large.contains(m));
        cells.push(CellPredictivity {
            scenario: name.clone(),
            methods: shared.len(),
            spearman: spearman_rho(&x, &y),
            kendall_tau: kendall_tau_b(&x, &y),
            flips: strict_flips(&x, &y),
            top_small: top_small.join(","),
            top_large: top_large.join(","),
            top1_agrees,
        });
    }
    unmatched_large.sort();
    unmatched_large.dedup();
    PredictivityReport { metric: metric.to_string(), cells, unmatched_small, unmatched_large }
}

/// Fractional (tie-averaged) descending ranks of a value vector: the best
/// value gets rank 1; `k` tied values share the mean of the ranks they
/// span.
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // positions i..=j (0-based) share the average 1-based rank
        let shared = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = shared;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's ρ: the Pearson correlation of the two fractional-rank
/// vectors.  `0` when either side is constant (no ordering to correlate).
pub fn spearman_rho(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let (rx, ry) = (fractional_ranks(x), fractional_ranks(y));
    let n = rx.len() as f64;
    let (mx, my) = (rx.iter().sum::<f64>() / n, ry.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Kendall's τ-b: concordant minus discordant pairs, tie-corrected.
/// `0` when either side is constant.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let (mut concordant, mut discordant, mut ties_x, mut ties_y) = (0i64, 0i64, 0i64, 0i64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 {
                ties_x += 1;
            }
            if dy == 0.0 {
                ties_y += 1;
            }
            if dx != 0.0 && dy != 0.0 {
                if (dx > 0.0) == (dy > 0.0) {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = ((n0 - ties_x) as f64 * (n0 - ties_y) as f64).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Strict pairwise order reversals between two value vectors (ties on
/// either side are not flips) — the per-cell counterpart of
/// [`crate::rank::ranking_flips`].
fn strict_flips(x: &[f64], y: &[f64]) -> usize {
    let n = x.len();
    let mut flips = 0;
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx != 0.0 && dy != 0.0 && (dx > 0.0) != (dy > 0.0) {
                flips += 1;
            }
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(scenario: &str, methods: &[(&str, f64)]) -> Vec<QualityCase> {
        methods
            .iter()
            .map(|(m, v)| QualityCase {
                scenario: scenario.to_string(),
                method: m.to_string(),
                metrics: vec![("headline".to_string(), *v)],
            })
            .collect()
    }

    #[test]
    fn normalization_replaces_only_j_components() {
        assert_eq!(normalized_scenario_name("sent/clean/r3-5/j8/b0.50"), "sent/clean/r3-5/j*/b0.50");
        assert_eq!(normalized_scenario_name("sent/spammer-third/j120"), "sent/spammer-third/j*");
        // non-numeric or bare `j` components survive
        assert_eq!(normalized_scenario_name("ner/j/jx2/step0.9"), "ner/j/jx2/step0.9");
    }

    #[test]
    fn identical_rankings_are_trustworthy() {
        let small = rows("s/clean/j4", &[("a", 0.9), ("b", 0.8), ("c", 0.7)]);
        let large = rows("s/clean/j60", &[("a", 0.95), ("b", 0.85), ("c", 0.6)]);
        let report = predictivity_report(&small, &large, "headline");
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.scenario, "s/clean/j*");
        assert_eq!((cell.kendall_tau, cell.spearman, cell.flips), (1.0, 1.0, 0));
        assert_eq!(cell.verdict(), "trustworthy");
        assert!(cell.top1_agrees);
    }

    #[test]
    fn reversed_rankings_are_untrustworthy() {
        let small = rows("s", &[("a", 0.9), ("b", 0.8), ("c", 0.7)]);
        let large = rows("s", &[("a", 0.1), ("b", 0.2), ("c", 0.3)]);
        let cell = &predictivity_report(&small, &large, "headline").cells[0];
        assert_eq!(cell.kendall_tau, -1.0);
        assert_eq!(cell.flips, 3);
        assert_eq!(cell.verdict(), "untrustworthy");
        assert!(!cell.top1_agrees);
        assert_eq!(cell.top_small, "a");
        assert_eq!(cell.top_large, "c");
    }

    #[test]
    fn wrong_winner_overrides_high_tau() {
        // 4 methods, only the top pair swaps: τ-b = 1 - 2·(2/12)… still
        // high, but the smoke grid picks the wrong winner
        let small = rows("s", &[("a", 0.9), ("b", 0.85), ("c", 0.5), ("d", 0.4)]);
        let large = rows("s", &[("b", 0.9), ("a", 0.85), ("c", 0.5), ("d", 0.4)]);
        let cell = &predictivity_report(&small, &large, "headline").cells[0];
        assert!(cell.kendall_tau > UNTRUST_TAU, "{}", cell.kendall_tau);
        assert_eq!(cell.verdict(), "untrustworthy");
    }

    #[test]
    fn unmatched_cells_and_thin_overlaps_are_reported() {
        let small = [rows("only-small", &[("a", 0.9), ("b", 0.8)]), rows("thin", &[("a", 0.9), ("x", 0.1)])].concat();
        let large = [rows("only-large", &[("a", 0.9), ("b", 0.8)]), rows("thin", &[("a", 0.9), ("y", 0.1)])].concat();
        let report = predictivity_report(&small, &large, "headline");
        assert!(report.cells.is_empty());
        assert_eq!(report.unmatched_small, vec!["only-small".to_string(), "thin".to_string()]);
        assert_eq!(report.unmatched_large, vec!["only-large".to_string(), "thin".to_string()]);
    }

    #[test]
    fn tie_aware_statistics_match_hand_computed_values() {
        // x: a=3, b=2, c=2, d=1 (b,c tied) vs y strictly ordered a>b>c>d
        let x = [3.0, 2.0, 2.0, 1.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        // fractional ranks of x: 1, 2.5, 2.5, 4; of y: 1,2,3,4; rank
        // deviations [-1.5, 0, 0, 1.5] vs [-1.5, -0.5, 0.5, 1.5]:
        // cov=4.5, var_x=4.5, var_y=5
        let expected_rho = 4.5 / (4.5f64 * 5.0).sqrt();
        assert!((spearman_rho(&x, &y) - expected_rho).abs() < 1e-12);
        // pairs: 6 total, 1 tied in x, 0 in y; C=5, D=0
        let expected_tau = 5.0 / ((6.0f64 - 1.0) * 6.0).sqrt();
        assert!((kendall_tau_b(&x, &y) - expected_tau).abs() < 1e-12);
    }

    #[test]
    fn json_schema_carries_cells_and_verdicts() {
        let small = rows("s", &[("a", 0.9), ("b", 0.8)]);
        let large = rows("s", &[("a", 0.9), ("b", 0.8)]);
        let report = predictivity_report(&small, &large, "headline");
        let json = crate::json::Json::parse(&report.to_json()).unwrap();
        assert_eq!(json.get("schema_version").and_then(|v| v.as_f64()), Some(1.0));
        let cells = json.get("cells").and_then(|c| c.as_array()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("verdict").and_then(|v| v.as_str()), Some("trustworthy"));
    }
}
