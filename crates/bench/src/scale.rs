//! Experiment scale selection and dataset / run-context builders shared by
//! every bench binary.

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_crowd::scenario::ScenarioConfig;
use lncl_crowd::{CrowdDataset, TaskKind};
use logic_lncl::config::TrainConfig;
use logic_lncl::method::RunContext;

/// How large the regenerated experiments are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Sub-smoke experiments: seconds end-to-end.  The tier the
    /// scale-predictivity study compares against `Paper` to find out which
    /// cells of a cheap CI grid actually predict paper-scale rankings.
    Tiny,
    /// Fast smoke-scale experiments (default): minutes on a laptop.
    Small,
    /// Larger corpora and more epochs; closer to the paper's setting.
    Medium,
    /// The paper's corpus sizes (4,999 / 5,985 training sentences).  Slow.
    Paper,
    /// ≥10x the paper's instance counts — the production-scale tier.  Full
    /// corpora at this size should not be materialised: the streaming
    /// generation path (`ScenarioStream` + `stream_mv_init`, exercised by
    /// the `huge_stream` target) folds chunks straight into the flat
    /// posterior arena under a peak-RSS gate.
    Huge,
}

impl Scale {
    /// Every tier, smallest first.
    pub const ALL: [Scale; 5] = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Paper, Scale::Huge];

    /// Parses a scale name (the inverse of [`Scale::name`]).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }

    /// The stable lower-case name ([`Scale::parse`] round-trips it; used in
    /// report environment metadata and on the sweep wire).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
            Scale::Huge => "huge",
        }
    }

    /// Reads the scale from the `LNCL_SCALE` environment variable.  Unset
    /// means the `Small` default; a set-but-unknown value warns on stderr
    /// and falls back to the default (the `LNCL_*` convention).
    pub fn from_env() -> Self {
        lncl_tensor::env::parse_env("LNCL_SCALE", |raw| {
            Scale::parse(raw).ok_or_else(|| "expected tiny|small|medium|paper|huge".to_string())
        })
        .unwrap_or(Scale::Small)
    }

    /// Number of repeated runs averaged per method (`LNCL_REPS` overrides;
    /// an invalid value warns on stderr and falls back to the per-scale
    /// default).
    pub fn repetitions(&self) -> usize {
        if let Some(n) = crate::timing::env_usize("LNCL_REPS") {
            return n.max(1);
        }
        match self {
            Scale::Tiny | Scale::Small => 1,
            Scale::Medium => 3,
            Scale::Paper => 5,
            Scale::Huge => 1,
        }
    }

    /// Number of training epochs (`LNCL_EPOCHS` overrides; an invalid value
    /// warns on stderr and falls back to the per-scale default).
    pub fn epochs(&self) -> usize {
        if let Some(n) = crate::timing::env_usize("LNCL_EPOCHS") {
            return n.max(1);
        }
        self.default_epochs()
    }

    /// The per-scale epoch default, ignoring the environment.  Distributed
    /// sweep workers train with the epoch count the coordinator resolved
    /// and sent on the wire, never their own `LNCL_EPOCHS` — otherwise two
    /// workers with different environments would break the bitwise merge.
    pub fn default_epochs(&self) -> usize {
        match self {
            Scale::Tiny => 6,
            Scale::Small => 12,
            Scale::Medium => 20,
            Scale::Paper | Scale::Huge => 30,
        }
    }

    /// The sentiment corpus for this scale.
    pub fn sentiment_dataset(&self, seed: u64) -> CrowdDataset {
        let config = match self {
            Scale::Tiny => SentimentDatasetConfig {
                train_size: 200,
                dev_size: 60,
                test_size: 60,
                num_annotators: 16,
                seed,
                ..SentimentDatasetConfig::default()
            },
            Scale::Small => SentimentDatasetConfig {
                train_size: 800,
                dev_size: 250,
                test_size: 250,
                num_annotators: 40,
                seed,
                ..SentimentDatasetConfig::default()
            },
            Scale::Medium => SentimentDatasetConfig {
                train_size: 2000,
                dev_size: 600,
                test_size: 600,
                num_annotators: 80,
                seed,
                ..SentimentDatasetConfig::default()
            },
            Scale::Paper => SentimentDatasetConfig { seed, ..SentimentDatasetConfig::paper_scale() },
            // 10x the paper corpus; prefer the streaming scenario path over
            // materialising datasets of this size
            Scale::Huge => SentimentDatasetConfig {
                train_size: 50_000,
                dev_size: 1_500,
                test_size: 1_500,
                num_annotators: 200,
                seed,
                ..SentimentDatasetConfig::default()
            },
        };
        generate_sentiment(&config)
    }

    /// The NER corpus for this scale.
    pub fn ner_dataset(&self, seed: u64) -> CrowdDataset {
        let config = match self {
            Scale::Tiny => NerDatasetConfig {
                train_size: 100,
                dev_size: 30,
                test_size: 30,
                num_annotators: 10,
                min_labels_per_instance: 2,
                max_labels_per_instance: 4,
                seed,
            },
            Scale::Small => NerDatasetConfig {
                train_size: 400,
                dev_size: 120,
                test_size: 120,
                num_annotators: 25,
                // sparser redundancy than the sentiment corpus, so the gap
                // between aggregation strategies is visible (as in Table III)
                min_labels_per_instance: 2,
                max_labels_per_instance: 4,
                seed,
            },
            Scale::Medium => NerDatasetConfig {
                train_size: 1200,
                dev_size: 350,
                test_size: 350,
                num_annotators: 47,
                min_labels_per_instance: 2,
                max_labels_per_instance: 4,
                seed,
            },
            Scale::Paper => NerDatasetConfig { seed, ..NerDatasetConfig::paper_scale() },
            Scale::Huge => NerDatasetConfig {
                train_size: 60_000,
                dev_size: 2_000,
                test_size: 2_000,
                num_annotators: 150,
                min_labels_per_instance: 2,
                max_labels_per_instance: 4,
                seed,
            },
        };
        generate_ner(&config)
    }

    /// The base scenario configuration (sizes, pool, redundancy) the
    /// `scenario_sweep` binary sweeps at this scale; the mix / redundancy /
    /// imbalance axes are layered on top by
    /// [`crate::experiments::scenario_sweep_configs`].
    pub fn scenario_base(&self, task: TaskKind, seed: u64) -> ScenarioConfig {
        let base = match task {
            TaskKind::Classification => ScenarioConfig::classification("base"),
            TaskKind::SequenceTagging => ScenarioConfig::tagging("base"),
        };
        let base = match (self, task) {
            (Scale::Tiny, TaskKind::Classification) => base.with_sizes(60, 24, 24).with_annotators(8),
            (Scale::Tiny, TaskKind::SequenceTagging) => base.with_sizes(40, 16, 16).with_annotators(6),
            (Scale::Small, TaskKind::Classification) => base.with_sizes(150, 60, 60).with_annotators(12),
            (Scale::Small, TaskKind::SequenceTagging) => base.with_sizes(100, 40, 40).with_annotators(10),
            (Scale::Medium, TaskKind::Classification) => base.with_sizes(600, 200, 200).with_annotators(30),
            (Scale::Medium, TaskKind::SequenceTagging) => base.with_sizes(400, 120, 120).with_annotators(20),
            (Scale::Paper, TaskKind::Classification) => base.with_sizes(2000, 600, 600).with_annotators(60),
            (Scale::Paper, TaskKind::SequenceTagging) => base.with_sizes(1200, 350, 350).with_annotators(40),
            // ≥10x the paper tier's instance counts (25x / 10x) — sized for
            // the streaming generation path, not for full materialisation
            (Scale::Huge, TaskKind::Classification) => base.with_sizes(50_000, 1_000, 1_000).with_annotators(150),
            (Scale::Huge, TaskKind::SequenceTagging) => base.with_sizes(12_000, 500, 500).with_annotators(80),
        };
        base.with_seed(seed)
    }

    /// Training configuration used for sentiment experiments at this scale.
    pub fn sentiment_train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig::fast(self.epochs()).with_seed(seed)
    }

    /// Training configuration used for NER experiments at this scale.
    pub fn ner_train_config(&self, seed: u64) -> TrainConfig {
        Self::ner_train_config_with_epochs(seed, self.epochs())
    }

    fn ner_train_config_with_epochs(seed: u64, epochs: usize) -> TrainConfig {
        TrainConfig::builder_from(TrainConfig::fast(epochs))
            .seed(seed)
            .imitation(logic_lncl::ImitationSchedule::ner_paper())
            .objective(logic_lncl::MStepObjective::AnnotationWeighted)
            .build()
    }

    /// The task-appropriate training configuration for a dataset.
    pub fn train_config(&self, task: TaskKind, seed: u64) -> TrainConfig {
        self.train_config_with_epochs(task, seed, self.epochs())
    }

    /// [`Scale::train_config`] with an explicit epoch count instead of the
    /// `LNCL_EPOCHS`-aware per-scale default.
    pub fn train_config_with_epochs(&self, task: TaskKind, seed: u64, epochs: usize) -> TrainConfig {
        match task {
            TaskKind::Classification => TrainConfig::fast(epochs).with_seed(seed),
            TaskKind::SequenceTagging => Self::ner_train_config_with_epochs(seed, epochs),
        }
    }

    /// The [`RunContext`] every registry method runs under at this scale:
    /// the task-appropriate training configuration plus the default
    /// reduced-width model factory for the dataset.
    pub fn run_context(&self, dataset: &CrowdDataset, seed: u64) -> RunContext {
        RunContext::for_dataset(dataset, self.train_config(dataset.task, seed))
    }

    /// [`Scale::run_context`] with an explicit epoch count — what a
    /// distributed sweep worker builds from the coordinator's resolved
    /// spec, immune to the worker's own environment.
    pub fn run_context_with_epochs(&self, dataset: &CrowdDataset, seed: u64, epochs: usize) -> RunContext {
        RunContext::for_dataset(dataset, self.train_config_with_epochs(dataset.task, seed, epochs))
    }
}
