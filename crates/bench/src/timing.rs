//! A dependency-free micro-benchmark harness used by the `benches/` targets
//! (the container has no crates.io access, so criterion is not available).
//!
//! Each bench target is a plain `harness = false` binary that builds a
//! [`BenchReport`], times its cases through [`BenchReport::bench`] (printing
//! one human-readable line per case, as before) and finally writes the
//! machine-readable `BENCH_<target>.json` via [`BenchReport::write`].  The
//! JSON files are what the CI `bench-smoke` job archives and gates on (see
//! the crate README and `bench_diff`).

use crate::json::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Reads a `usize` environment variable.  Unset returns `None`; set but
/// invalid also returns `None` **with a warning on stderr** (a silently
/// ignored `LNCL_REPS=ten` cost real debugging time).  Thin re-export of
/// the shared workspace helper in [`lncl_tensor::env`].
pub fn env_usize(name: &str) -> Option<usize> {
    lncl_tensor::env::env_usize(name)
}

/// Number of timed iterations (`LNCL_BENCH_ITERS` overrides, default 20).
pub fn bench_iters() -> usize {
    env_usize("LNCL_BENCH_ITERS").unwrap_or(20).max(1)
}

/// Parses a shard spec of the form `i/N` (shard `i` of `N`, zero-based).
/// Rejects malformed input, `N == 0` and `i >= N`.
pub fn parse_shard(raw: &str) -> Result<(usize, usize), String> {
    let (index, total) = raw.split_once('/').ok_or_else(|| format!("{raw:?} is not of the form i/N"))?;
    let index: usize = index.trim().parse().map_err(|_| format!("shard index {index:?} is not an integer"))?;
    let total: usize = total.trim().parse().map_err(|_| format!("shard count {total:?} is not an integer"))?;
    if total == 0 {
        return Err("shard count must be at least 1".to_string());
    }
    if index >= total {
        return Err(format!("shard index {index} out of range for {total} shard(s)"));
    }
    Ok((index, total))
}

/// Reads the `LNCL_SHARD` environment variable (`i/N`).  Unset returns
/// `None`; set but invalid also returns `None` **with a warning on
/// stderr** and the caller falls back to the unsharded path, matching the
/// `LNCL_THREADS`/`LNCL_REPS` convention.
pub fn env_shard() -> Option<(usize, usize)> {
    lncl_tensor::env::parse_env("LNCL_SHARD", |raw| {
        parse_shard(raw).map_err(|reason| format!("{reason}; running unsharded"))
    })
}

/// Peak resident set size of this process in kilobytes — `VmHWM` from
/// `/proc/self/status`.  Returns `None` on platforms without procfs (the
/// field is then simply omitted from the report).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Statistics of one benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStats {
    /// Case name (unique within a report).
    pub name: String,
    /// Total number of timed iterations.
    pub iters: usize,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Population standard deviation across samples, seconds per iteration.
    pub stddev_s: f64,
}

impl CaseStats {
    /// Computes the statistics from per-iteration samples (seconds each).
    pub fn from_samples(name: impl Into<String>, iters: usize, samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "CaseStats::from_samples: no samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Self { name: name.into(), iters, mean_s: mean, min_s: min, stddev_s: var.sqrt() }
    }
}

/// One row of a quality table: the evaluation metrics one method achieved
/// on one scenario (or table dataset).  Unlike [`CaseStats`] the values are
/// deterministic given the seed, so `bench_diff rank` can compare and rank
/// them exactly across reports and shards.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityCase {
    /// Scenario (or dataset) the row belongs to, e.g.
    /// `sent/clean/r3-5/j12/b0.50` or `table2/sentiment`.
    pub scenario: String,
    /// Method row label within the scenario (`MV`, `Logic-LNCL-teacher`, …);
    /// the sentinel [`SCENARIO_CASE`] marks scenario-level metrics that
    /// belong to no single method.
    pub method: String,
    /// Ordered metric key/value pairs (`headline`, `pred_accuracy`, …).
    pub metrics: Vec<(String, f64)>,
}

/// The [`QualityCase::method`] sentinel for scenario-level metrics
/// (e.g. `reliability_pearson`); ranking tools skip these rows.
pub const SCENARIO_CASE: &str = "__scenario__";

impl QualityCase {
    /// Looks a metric up by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A machine-readable benchmark report: environment metadata plus per-case
/// mean/min/stddev and optional per-method quality tables, serialised as
/// `BENCH_<target>.json` (schema documented in the crate README).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The bench target name (`nn_forward`, `table2_sentiment`, …).
    pub target: String,
    /// Environment metadata as ordered key/value pairs.
    pub environment: Vec<(String, String)>,
    /// Timed cases in execution order.
    pub cases: Vec<CaseStats>,
    /// Quality-table rows (empty for pure micro-benchmark targets; the
    /// field is omitted from the JSON when empty, so pre-quality reports
    /// still parse).
    pub quality: Vec<QualityCase>,
    /// Peak resident set size in kB at report time ([`peak_rss_kb`],
    /// captured by [`BenchReport::record_peak_rss`]).  `None` — and omitted
    /// from the JSON — when never recorded or unavailable, so pre-RSS
    /// reports still parse.  The `bench_diff compare --rss-gate` flag turns
    /// this into the streaming-tier memory regression gate.
    pub peak_rss_kb: Option<u64>,
}

impl BenchReport {
    /// Creates a report for `target` and captures the environment metadata
    /// (OS, architecture, iteration count, thread cap, scale, package
    /// version).
    pub fn new(target: impl Into<String>) -> Self {
        let scale = std::env::var("LNCL_SCALE").unwrap_or_else(|_| "small".to_string());
        let environment = vec![
            ("os".to_string(), std::env::consts::OS.to_string()),
            ("arch".to_string(), std::env::consts::ARCH.to_string()),
            ("iters".to_string(), bench_iters().to_string()),
            ("threads".to_string(), lncl_tensor::par::max_threads().to_string()),
            ("scale".to_string(), scale),
            ("package_version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
        ];
        Self { target: target.into(), environment, cases: Vec::new(), quality: Vec::new(), peak_rss_kb: None }
    }

    /// Captures the process's peak RSS ([`peak_rss_kb`]) into the report.
    /// Call it after the last case ran, right before [`BenchReport::write`],
    /// so the high-water mark covers every timed iteration.
    pub fn record_peak_rss(&mut self) {
        self.peak_rss_kb = peak_rss_kb();
        if let Some(kb) = self.peak_rss_kb {
            println!("{:<44} {:>10.1} MB peak RSS", "(process high-water mark)", kb as f64 / 1024.0);
        }
    }

    /// Records one quality-table row.
    pub fn record_quality(&mut self, scenario: &str, method: &str, metrics: Vec<(String, f64)>) {
        for (key, value) in &metrics {
            assert!(value.is_finite(), "record_quality({scenario}/{method}): non-finite metric {key}={value}");
        }
        self.quality.push(QualityCase { scenario: scenario.to_string(), method: method.to_string(), metrics });
    }

    /// Sorts the quality rows by `(scenario, method)` — the canonical order
    /// shard reports are merged in, so a sorted serial report and a merged
    /// set of shard reports are bitwise identical.
    pub fn sort_quality(&mut self) {
        self.quality.sort_by(|a, b| (&a.scenario, &a.method).cmp(&(&b.scenario, &b.method)));
    }

    /// Times `f` over [`bench_iters`] iterations (after one warm-up call),
    /// prints the usual `name: <mean per iter>` line, records the case and
    /// returns the mean seconds per iteration.
    ///
    /// Iterations are grouped into up to 10 samples so the min/stddev
    /// columns are meaningful without paying a clock read per iteration.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        let iters = bench_iters();
        let num_samples = iters.min(10);
        let per_sample = iters.div_ceil(num_samples);
        std::hint::black_box(f());
        let mut samples = Vec::with_capacity(num_samples);
        let mut done = 0usize;
        while done < iters {
            let batch = per_sample.min(iters - done);
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
            done += batch;
        }
        self.record(name, iters, &samples)
    }

    /// Records a case from externally collected per-iteration samples
    /// (seconds each), printing the usual one-line summary.  Returns the
    /// mean.
    pub fn record(&mut self, name: &str, iters: usize, samples: &[f64]) -> f64 {
        let stats = CaseStats::from_samples(name, iters, samples);
        println!("{name:<44} {}", format_duration(stats.mean_s));
        let mean = stats.mean_s;
        self.cases.push(stats);
        mean
    }

    /// The file this report writes to: `BENCH_<target>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.target)
    }

    /// Serialises to the JSON schema documented in the crate README.
    pub fn to_json(&self) -> String {
        let environment = Json::Obj(self.environment.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect());
        let cases = Json::Arr(
            self.cases
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(c.name.clone())),
                        ("iters".to_string(), Json::Num(c.iters as f64)),
                        ("mean_s".to_string(), Json::Num(c.mean_s)),
                        ("min_s".to_string(), Json::Num(c.min_s)),
                        ("stddev_s".to_string(), Json::Num(c.stddev_s)),
                    ])
                })
                .collect(),
        );
        let mut members = vec![
            ("schema_version".to_string(), Json::Num(1.0)),
            ("target".to_string(), Json::Str(self.target.clone())),
            ("environment".to_string(), environment),
            ("cases".to_string(), cases),
        ];
        if !self.quality.is_empty() {
            let quality = Json::Arr(
                self.quality
                    .iter()
                    .map(|q| {
                        Json::Obj(vec![
                            ("scenario".to_string(), Json::Str(q.scenario.clone())),
                            ("method".to_string(), Json::Str(q.method.clone())),
                            (
                                "metrics".to_string(),
                                Json::Obj(q.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
                            ),
                        ])
                    })
                    .collect(),
            );
            members.push(("quality".to_string(), quality));
        }
        if let Some(kb) = self.peak_rss_kb {
            members.push(("peak_rss_kb".to_string(), Json::Num(kb as f64)));
        }
        Json::Obj(members).render()
    }

    /// Parses a report back from its JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let target = doc.get("target").and_then(Json::as_str).ok_or("missing \"target\"")?.to_string();
        let environment = match doc.get("environment") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), v.as_str().ok_or("non-string environment value")?.to_string())))
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing \"environment\" object".to_string()),
        };
        let cases = doc
            .get("cases")
            .and_then(Json::as_array)
            .ok_or("missing \"cases\" array")?
            .iter()
            .map(|c| {
                let field = |key: &str| c.get(key).and_then(Json::as_f64).ok_or(format!("case missing {key:?}"));
                Ok(CaseStats {
                    name: c.get("name").and_then(Json::as_str).ok_or("case missing \"name\"")?.to_string(),
                    iters: field("iters")? as usize,
                    mean_s: field("mean_s")?,
                    min_s: field("min_s")?,
                    stddev_s: field("stddev_s")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // absent in pre-quality reports (e.g. an old bench_baseline.json)
        let quality = match doc.get("quality") {
            None => Vec::new(),
            Some(node) => node
                .as_array()
                .ok_or("\"quality\" is not an array")?
                .iter()
                .map(|q| {
                    let text = |key: &str| {
                        q.get(key)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or(format!("quality row missing {key:?}"))
                    };
                    let metrics = match q.get("metrics") {
                        Some(Json::Obj(members)) => members
                            .iter()
                            .map(|(k, v)| Ok((k.clone(), v.as_f64().ok_or("non-numeric quality metric")?)))
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("quality row missing \"metrics\" object".to_string()),
                    };
                    Ok(QualityCase { scenario: text("scenario")?, method: text("method")?, metrics })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        // absent in pre-RSS reports and on platforms without procfs
        let peak_rss_kb = doc.get("peak_rss_kb").and_then(Json::as_f64).map(|kb| kb as u64);
        Ok(Self { target, environment, cases, quality, peak_rss_kb })
    }

    /// Writes `BENCH_<target>.json` and returns the path.  The directory
    /// is `LNCL_BENCH_DIR` when set; otherwise the nearest ancestor of the
    /// current directory containing a `Cargo.lock` (the workspace root —
    /// cargo runs bench binaries from the package directory), falling back
    /// to the current directory.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = match std::env::var("LNCL_BENCH_DIR") {
            Ok(dir) => PathBuf::from(dir),
            Err(_) => {
                let cwd = std::env::current_dir()?;
                cwd.ancestors().find(|a| a.join("Cargo.lock").is_file()).unwrap_or(&cwd).to_path_buf()
            }
        };
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Reads a report from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// Times `f` over [`bench_iters`] iterations (after one warm-up call) and
/// prints `name: <mean per iter>`.  Returns the mean duration in seconds.
///
/// Thin wrapper kept for ad-hoc timing; bench targets should go through
/// [`BenchReport`] so the case lands in the JSON report.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> f64 {
    BenchReport::new("adhoc").bench(name, f)
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs/iter", secs * 1e6)
    } else {
        format!("{:>10.1} ns/iter", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let secs = bench("noop", || 1 + 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(format_duration(2.0).contains("s/iter"));
        assert!(format_duration(2e-3).contains("ms/iter"));
        assert!(format_duration(2e-6).contains("µs/iter"));
        assert!(format_duration(2e-9).contains("ns/iter"));
    }

    #[test]
    fn case_stats_from_samples() {
        let stats = CaseStats::from_samples("c", 30, &[1.0, 2.0, 3.0]);
        assert_eq!(stats.iters, 30);
        assert!((stats.mean_s - 2.0).abs() < 1e-12);
        assert_eq!(stats.min_s, 1.0);
        assert!((stats.stddev_s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn report_collects_cases() {
        let mut report = BenchReport::new("unit_test");
        report.bench("fast_case", || 40 + 2);
        assert_eq!(report.cases.len(), 1);
        assert_eq!(report.cases[0].name, "fast_case");
        assert!(report.cases[0].min_s <= report.cases[0].mean_s);
        assert!(report.environment.iter().any(|(k, _)| k == "os"));
        assert_eq!(report.file_name(), "BENCH_unit_test.json");
    }

    #[test]
    fn json_round_trip_preserves_report_exactly() {
        let mut report = BenchReport::new("roundtrip");
        report.record("case/a", 20, &[1.5e-6, 2.5e-6, 2.0e-6]);
        report.record("case/b", 20, &[4.2e-3]);
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("{\"target\": \"x\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn quality_rows_round_trip_exactly() {
        let mut report = BenchReport::new("quality_roundtrip");
        report.record("mv", 1, &[0.25]);
        report.record_quality(
            "sent/clean/r3-5",
            "MV",
            vec![("headline".to_string(), 0.9375f32 as f64), ("inf_accuracy".to_string(), 0.91_f32 as f64)],
        );
        report.record_quality("sent/clean/r3-5", SCENARIO_CASE, vec![("reliability_pearson".to_string(), -0.25)]);
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
        assert_eq!(back.quality[0].metric("headline"), Some(0.9375f32 as f64));
        assert_eq!(back.quality[0].metric("missing"), None);
    }

    #[test]
    fn peak_rss_is_readable_and_round_trips() {
        // this test runs on Linux CI, where procfs is always present
        let kb = peak_rss_kb();
        if let Some(kb) = kb {
            assert!(kb > 0, "a live process has a nonzero high-water mark");
        }
        let mut report = BenchReport::new("rss");
        report.record("case", 1, &[0.5]);
        assert!(!report.to_json().contains("peak_rss_kb"), "unrecorded RSS must stay out of the JSON");
        report.peak_rss_kb = Some(123_456);
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back.peak_rss_kb, Some(123_456));
        assert_eq!(back, report);
    }

    #[test]
    fn reports_without_peak_rss_still_parse() {
        // the pre-RSS schema had no "peak_rss_kb" member at all
        let report = BenchReport::new("legacy_rss");
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back.peak_rss_kb, None);
    }

    #[test]
    fn reports_without_quality_still_parse() {
        // the pre-quality schema had no "quality" member at all
        let report = BenchReport::new("legacy");
        assert!(!report.to_json().contains("quality"));
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert!(back.quality.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite metric")]
    fn non_finite_quality_metrics_are_rejected() {
        let mut report = BenchReport::new("nan");
        report.record_quality("s", "m", vec![("headline".to_string(), f64::NAN)]);
    }

    #[test]
    fn sort_quality_orders_by_scenario_then_method() {
        let mut report = BenchReport::new("sorting");
        report.record_quality("b", "x", vec![]);
        report.record_quality("a", "y", vec![]);
        report.record_quality("a", "x", vec![]);
        report.sort_quality();
        let keys: Vec<(&str, &str)> = report.quality.iter().map(|q| (q.scenario.as_str(), q.method.as_str())).collect();
        assert_eq!(keys, vec![("a", "x"), ("a", "y"), ("b", "x")]);
    }

    #[test]
    fn shard_specs_parse_or_reject() {
        assert_eq!(parse_shard("0/2"), Ok((0, 2)));
        assert_eq!(parse_shard("3/4"), Ok((3, 4)));
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        for bad in ["", "1", "a/2", "1/b", "2/2", "5/2", "0/0", "-1/2", "1/2/3"] {
            assert!(parse_shard(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
