//! A dependency-free micro-benchmark harness used by the `benches/` targets
//! (the container has no crates.io access, so criterion is not available).
//!
//! Each bench target is a plain `harness = false` binary that calls
//! [`bench`] for every case; the output is one line per case with the mean
//! wall-clock time per iteration.

use std::time::Instant;

/// Number of timed iterations (`LNCL_BENCH_ITERS` overrides, default 20).
pub fn bench_iters() -> usize {
    std::env::var("LNCL_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(20).max(1)
}

/// Times `f` over [`bench_iters`] iterations (after one warm-up call) and
/// prints `name: <mean per iter>`.  Returns the mean duration in seconds.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    let iters = bench_iters();
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let secs = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<44} {}", format_duration(secs));
    secs
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs/iter", secs * 1e6)
    } else {
        format!("{:>10.1} ns/iter", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let secs = bench("noop", || 1 + 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(format_duration(2.0).contains("s/iter"));
        assert!(format_duration(2e-3).contains("ms/iter"));
        assert!(format_duration(2e-6).contains("µs/iter"));
        assert!(format_duration(2e-9).contains("ns/iter"));
    }
}
