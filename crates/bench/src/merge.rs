//! Collision-checked merging of [`BenchReport`]s — the library behind
//! `bench_diff merge` and the distributed sweep coordinator's shard
//! recombination.
//!
//! The original merge assumed disjoint inputs: timed cases were renamed to
//! `target/case` and quality rows simply concatenated and name-sorted.
//! That silently interleaves *colliding* `(scenario, method)` quality rows
//! from overlapping shards — the sort puts the duplicates side by side and
//! every downstream consumer ([`crate::rank::rank_scenarios`], the
//! quality-baseline gate) quietly keeps whichever sorted first.  This
//! module makes the overlap an **error**: a merge either reproduces the
//! serial report exactly or refuses.

use crate::timing::{BenchReport, CaseStats, QualityCase};
use std::collections::BTreeSet;

/// Why two reports cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Two inputs carry a quality row for the same `(scenario, method)`.
    DuplicateQuality {
        /// Scenario of the colliding rows.
        scenario: String,
        /// Method of the colliding rows.
        method: String,
    },
    /// Two inputs carry the same target-qualified timed case.
    DuplicateCase {
        /// The qualified case name.
        name: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::DuplicateQuality { scenario, method } => {
                write!(f, "colliding quality row {scenario}/{method}: the input shards overlap")
            }
            MergeError::DuplicateCase { name } => {
                write!(f, "colliding timed case {name:?}: the input reports overlap")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A report's timed cases with names qualified as `target/case` (unless
/// already qualified, or the report is itself a merge product).
pub fn qualified_cases(report: &BenchReport) -> Vec<CaseStats> {
    report
        .cases
        .iter()
        .map(|c| {
            // merged reports already carry target-qualified names
            let name = if c.name.starts_with(&format!("{}/", report.target)) || report.target == "merged" {
                c.name.clone()
            } else {
                format!("{}/{}", report.target, c.name)
            };
            CaseStats { name, ..c.clone() }
        })
        .collect()
}

/// Merges reports into one `merged`-target report: timed cases
/// target-qualified, quality rows concatenated and sorted by
/// `(scenario, method)` — bitwise the serial sweep's quality table when the
/// inputs are a sharded sweep.  Errors on any colliding quality row or
/// qualified case name instead of silently interleaving overlap.
pub fn merge_reports(reports: &[BenchReport]) -> Result<BenchReport, MergeError> {
    let mut merged = BenchReport::new("merged");
    let mut seen_cases: BTreeSet<String> = BTreeSet::new();
    let mut seen_quality: BTreeSet<(String, String)> = BTreeSet::new();
    for report in reports {
        for case in qualified_cases(report) {
            if !seen_cases.insert(case.name.clone()) {
                return Err(MergeError::DuplicateCase { name: case.name });
            }
            merged.cases.push(case);
        }
        for row in &report.quality {
            if !seen_quality.insert((row.scenario.clone(), row.method.clone())) {
                return Err(MergeError::DuplicateQuality {
                    scenario: row.scenario.clone(),
                    method: row.method.clone(),
                });
            }
            merged.quality.push(row.clone());
        }
    }
    // quality rows carry their scenario, so they are not target-qualified;
    // the sorted order makes a shard merge reproduce the serial report
    merged.sort_quality();
    Ok(merged)
}

/// [`merge_reports`] over already-extracted quality rows (what the sweep
/// coordinator holds): checks collisions and returns the sorted table.
pub fn merge_quality_rows(shards: &[Vec<QualityCase>]) -> Result<Vec<QualityCase>, MergeError> {
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut merged = Vec::new();
    for shard in shards {
        for row in shard {
            if !seen.insert((row.scenario.clone(), row.method.clone())) {
                return Err(MergeError::DuplicateQuality {
                    scenario: row.scenario.clone(),
                    method: row.method.clone(),
                });
            }
            merged.push(row.clone());
        }
    }
    merged.sort_by(|a, b| (&a.scenario, &a.method).cmp(&(&b.scenario, &b.method)));
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(target: &str, cases: &[&str], quality: &[(&str, &str)]) -> BenchReport {
        let mut r = BenchReport::new(target);
        for name in cases {
            r.cases.push(CaseStats::from_samples(*name, 1, &[1.0]));
        }
        for (scenario, method) in quality {
            r.record_quality(scenario, method, vec![("headline".to_string(), 0.5)]);
        }
        r
    }

    #[test]
    fn disjoint_shards_merge_sorted() {
        let a = report("shard0", &["t0"], &[("s/b", "mv"), ("s/a", "mv")]);
        let b = report("shard1", &["t1"], &[("s/a", "ds")]);
        let merged = merge_reports(&[a, b]).unwrap();
        assert_eq!(merged.cases.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["shard0/t0", "shard1/t1"]);
        let keys: Vec<(&str, &str)> = merged.quality.iter().map(|q| (q.scenario.as_str(), q.method.as_str())).collect();
        assert_eq!(keys, vec![("s/a", "ds"), ("s/a", "mv"), ("s/b", "mv")]);
    }

    #[test]
    fn colliding_quality_rows_are_an_error() {
        let a = report("shard0", &[], &[("s/a", "mv")]);
        let b = report("shard1", &[], &[("s/a", "mv")]);
        assert_eq!(
            merge_reports(&[a, b]),
            Err(MergeError::DuplicateQuality { scenario: "s/a".to_string(), method: "mv".to_string() })
        );
    }

    #[test]
    fn colliding_cases_are_an_error_even_across_targets() {
        // two "merged" inputs can carry identically-qualified cases
        let a = report("merged", &["x/t"], &[]);
        let b = report("merged", &["x/t"], &[]);
        assert_eq!(merge_reports(&[a, b]), Err(MergeError::DuplicateCase { name: "x/t".to_string() }));
    }

    #[test]
    fn same_method_on_different_scenarios_is_not_a_collision() {
        let a = report("shard0", &[], &[("s/a", "mv")]);
        let b = report("shard1", &[], &[("s/b", "mv")]);
        assert_eq!(merge_reports(&[a, b]).unwrap().quality.len(), 2);
    }

    #[test]
    fn quality_row_merge_mirrors_report_merge() {
        let row = |s: &str, m: &str| QualityCase {
            scenario: s.to_string(),
            method: m.to_string(),
            metrics: vec![("headline".to_string(), 0.5)],
        };
        let merged = merge_quality_rows(&[vec![row("b", "mv")], vec![row("a", "mv")]]).unwrap();
        assert_eq!(merged[0].scenario, "a");
        let collision = merge_quality_rows(&[vec![row("a", "mv")], vec![row("a", "mv")]]);
        assert!(matches!(collision, Err(MergeError::DuplicateQuality { .. })));
    }
}
