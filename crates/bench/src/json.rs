//! A minimal hand-rolled JSON value, serialiser and parser.
//!
//! The container this workspace builds in has no crates.io access, so the
//! benchmark reports ([`crate::timing::BenchReport`]) cannot use serde.
//! This module implements exactly the JSON subset those reports (and the
//! `bench_diff` tool) need: objects, arrays, strings, finite numbers,
//! booleans and null, with the standard string escapes.
//!
//! Numbers are stored as `f64` and rendered with Rust's shortest-roundtrip
//! formatting, so a serialise → parse cycle reproduces every value exactly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                assert!(n.is_finite(), "Json::render: non-finite number {n}");
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(&pad_in);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value plus optional trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "invalid \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or_else(|| "invalid \\u code point".to_string())?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..]).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("bench \"x\"\n".into())),
            ("count".into(), Json::Num(3.0)),
            ("mean".into(), Json::Num(1.25e-6)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("cases".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5)])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn shortest_roundtrip_numbers_survive() {
        for v in [0.1f64, 1e-9, 123456.789, f64::MIN_POSITIVE, 2.0_f64.powi(53)] {
            let text = Json::Num(v).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{v}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, "two"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).and_then(|b| b.as_array()).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_string_escapes() {
        let doc = Json::parse(r#""a\tbA\n""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\tbA\n"));
    }
}
