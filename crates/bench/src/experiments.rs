//! Experiment drivers: one function per paper table / figure.
//!
//! Training runs for independent methods are executed on separate threads
//! (crossbeam scoped threads); every run is seeded, so results are
//! reproducible regardless of the parallelism.

use crate::methods::*;
use crate::scale::{ner_model, sentiment_model, Scale};
use crate::tables::average_repetitions;
use lncl_crowd::metrics::{empirical_confusion, overall_reliability, reliability_correlation};
use lncl_crowd::stats::annotator_summary;
use lncl_crowd::truth::{Glad, MajorityVote};
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_tensor::Matrix;
use logic_lncl::ablation::paper_rules;
use logic_lncl::baselines::{CrowdLayerKind, DlDnKind};
use logic_lncl::{EvalMetrics, LogicLncl, MethodResult};

/// Runs all Table-II (sentiment) methods for one repetition.
pub fn table2_single_run(scale: Scale, seed: u64) -> Vec<MethodResult> {
    let dataset = scale.sentiment_dataset(seed);
    let config = scale.sentiment_train_config(seed);
    let data = &dataset;
    let cfg = &config;

    let mut groups: Vec<(usize, Vec<MethodResult>)> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        handles.push((0usize, s.spawn(move |_| vec![run_two_stage("MV-Classifier", &MajorityVote, data, cfg, |sd| sentiment_model(data, sd))])));
        handles.push((1, s.spawn(move |_| vec![run_two_stage("GLAD-Classifier", &Glad::default(), data, cfg, |sd| sentiment_model(data, sd))])));
        handles.push((2, s.spawn(move |_| vec![run_aggnet(data, cfg, |sd| sentiment_model(data, sd))])));
        handles.push((3, s.spawn(move |_| vec![
            run_crowd_layer(CrowdLayerKind::VectorWeight, 0, data, cfg, |sd| sentiment_model(data, sd)),
            run_crowd_layer(CrowdLayerKind::VectorWeightBias, 0, data, cfg, |sd| sentiment_model(data, sd)),
            run_crowd_layer(CrowdLayerKind::MatrixWeight, 0, data, cfg, |sd| sentiment_model(data, sd)),
        ])));
        handles.push((4, s.spawn(move |_| {
            let (student, teacher) = run_logic_lncl(data, cfg, |sd| sentiment_model(data, sd));
            vec![student, teacher]
        })));
        handles.push((5, s.spawn(move |_| sentiment_truth_inference_rows(data))));
        handles.push((6, s.spawn(move |_| vec![run_gold(data, cfg, |sd| sentiment_model(data, sd))])));
        handles.into_iter().map(|(i, h)| (i, h.join().expect("experiment thread panicked"))).collect()
    })
    .expect("crossbeam scope failed");

    groups.sort_by_key(|(i, _)| *i);
    groups.into_iter().flat_map(|(_, rows)| rows).collect()
}

/// Table II averaged over the scale's repetitions.
pub fn table2(scale: Scale) -> Vec<MethodResult> {
    let reps: Vec<Vec<MethodResult>> =
        (0..scale.repetitions()).map(|r| table2_single_run(scale, 7 + r as u64)).collect();
    average_repetitions(&reps)
}

/// Runs all Table-III (NER) methods for one repetition.
pub fn table3_single_run(scale: Scale, seed: u64) -> Vec<MethodResult> {
    let dataset = scale.ner_dataset(seed);
    let config = scale.ner_train_config(seed);
    let data = &dataset;
    let cfg = &config;

    let mut groups: Vec<(usize, Vec<MethodResult>)> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        handles.push((0usize, s.spawn(move |_| vec![run_two_stage("MV-Classifier", &MajorityVote, data, cfg, |sd| ner_model(data, sd))])));
        handles.push((1, s.spawn(move |_| vec![run_aggnet(data, cfg, |sd| ner_model(data, sd))])));
        handles.push((2, s.spawn(move |_| vec![
            run_crowd_layer(CrowdLayerKind::VectorWeight, 2, data, cfg, |sd| ner_model(data, sd)),
            run_crowd_layer(CrowdLayerKind::VectorWeightBias, 2, data, cfg, |sd| ner_model(data, sd)),
        ])));
        handles.push((3, s.spawn(move |_| vec![
            run_crowd_layer(CrowdLayerKind::MatrixWeight, 2, data, cfg, |sd| ner_model(data, sd)),
            run_crowd_layer(CrowdLayerKind::MatrixWeight, 0, data, cfg, |sd| ner_model(data, sd)),
        ])));
        handles.push((4, s.spawn(move |_| {
            let (student, teacher) = run_logic_lncl(data, cfg, |sd| ner_model(data, sd));
            vec![student, teacher]
        })));
        handles.push((5, s.spawn(move |_| vec![
            run_dl_dn(DlDnKind::Uniform, data, cfg, |sd| ner_model(data, sd)),
            run_dl_dn(DlDnKind::Weighted, data, cfg, |sd| ner_model(data, sd)),
        ])));
        handles.push((6, s.spawn(move |_| ner_truth_inference_rows(data))));
        handles.push((7, s.spawn(move |_| vec![run_gold(data, cfg, |sd| ner_model(data, sd))])));
        handles.into_iter().map(|(i, h)| (i, h.join().expect("experiment thread panicked"))).collect()
    })
    .expect("crossbeam scope failed");

    groups.sort_by_key(|(i, _)| *i);
    groups.into_iter().flat_map(|(_, rows)| rows).collect()
}

/// Table III averaged over the scale's repetitions.
pub fn table3(scale: Scale) -> Vec<MethodResult> {
    let reps: Vec<Vec<MethodResult>> =
        (0..scale.repetitions()).map(|r| table3_single_run(scale, 11 + r as u64)).collect();
    average_repetitions(&reps)
}

/// Runs the Table-IV ablation on one dataset.
pub fn table4_for(dataset: &CrowdDataset, scale: Scale, seed: u64) -> Vec<MethodResult> {
    let config = match dataset.task {
        TaskKind::Classification => scale.sentiment_train_config(seed),
        TaskKind::SequenceTagging => scale.ner_train_config(seed),
    };
    let cfg = &config;
    let variants = ablation_variants();
    let mut groups: Vec<(usize, Vec<MethodResult>)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .enumerate()
            .map(|(i, &variant)| {
                (i, s.spawn(move |_| match dataset.task {
                    TaskKind::Classification => run_ablation(variant, dataset, cfg, |sd| sentiment_model(dataset, sd)),
                    TaskKind::SequenceTagging => run_ablation(variant, dataset, cfg, |sd| ner_model(dataset, sd)),
                }))
            })
            .collect();
        handles.into_iter().map(|(i, h)| (i, h.join().expect("ablation thread panicked"))).collect()
    })
    .expect("crossbeam scope failed");
    groups.sort_by_key(|(i, _)| *i);
    groups.into_iter().flat_map(|(_, rows)| rows).collect()
}

/// Figure 6/7: trains Logic-LNCL and compares its estimated annotator
/// confusion matrices / reliabilities to the empirical ones.
pub struct ReliabilityStudy {
    /// Indices of the most prolific annotators (shown individually).
    pub top_annotators: Vec<usize>,
    /// Estimated confusion matrix per top annotator.
    pub estimated: Vec<Matrix>,
    /// Empirical ("real") confusion matrix per top annotator.
    pub real: Vec<Matrix>,
    /// Pearson correlation of estimated vs real overall reliability across
    /// the active annotator pool.
    pub pearson: f32,
    /// Class names (for rendering).
    pub class_names: Vec<String>,
}

/// Runs the reliability study on a dataset.
pub fn reliability_study(dataset: &CrowdDataset, scale: Scale, seed: u64, top_n: usize) -> ReliabilityStudy {
    let config = match dataset.task {
        TaskKind::Classification => scale.sentiment_train_config(seed),
        TaskKind::SequenceTagging => scale.ner_train_config(seed),
    };
    let mut trainer = match dataset.task {
        TaskKind::Classification => {
            let model = sentiment_model(dataset, seed);
            let mut t = LogicLncl::new(model, dataset, paper_rules(dataset), config);
            t.train(dataset);
            t.annotators.confusions().to_vec()
        }
        TaskKind::SequenceTagging => {
            let model = ner_model(dataset, seed);
            let mut t = LogicLncl::new(model, dataset, paper_rules(dataset), config);
            t.train(dataset);
            t.annotators.confusions().to_vec()
        }
    };
    let estimated_all = std::mem::take(&mut trainer);

    let summary = annotator_summary(dataset);
    let top_annotators = summary.top_annotators(top_n);
    let estimated: Vec<Matrix> = top_annotators.iter().map(|&a| estimated_all[a].clone()).collect();
    let real: Vec<Matrix> =
        top_annotators.iter().map(|&a| empirical_confusion(&dataset.train, a, dataset.num_classes)).collect();

    // reliability scatter over annotators with more than 5 labelled instances
    let active = summary.active_annotators(5);
    let est_rel: Vec<f32> = active.iter().map(|&a| overall_reliability(&estimated_all[a])).collect();
    let real_rel: Vec<f32> =
        active.iter().map(|&a| overall_reliability(&empirical_confusion(&dataset.train, a, dataset.num_classes))).collect();
    let pearson = reliability_correlation(&est_rel, &real_rel);

    ReliabilityStudy { top_annotators, estimated, real, pearson, class_names: dataset.class_names.clone() }
}

/// §VI-B sample-efficiency sweep: trains Logic-LNCL and the best baseline
/// (AggNet) on growing fractions of the training data and reports the test
/// metric for each fraction.
pub fn sample_efficiency(scale: Scale, fractions: &[f32], seed: u64) -> Vec<(f32, EvalMetrics, EvalMetrics)> {
    let full = scale.sentiment_dataset(seed);
    let config = scale.sentiment_train_config(seed);
    fractions
        .iter()
        .map(|&fraction| {
            let take = ((full.train.len() as f32 * fraction).round() as usize).max(20);
            let mut dataset = full.clone();
            dataset.train.truncate(take);
            let (_, teacher) = run_logic_lncl(&dataset, &config, |sd| sentiment_model(&dataset, sd));
            let aggnet = run_aggnet(&dataset, &config, |sd| sentiment_model(&dataset, sd));
            (fraction, teacher.prediction, aggnet.prediction)
        })
        .collect()
}

/// Figure-4 statistics for both datasets.
pub fn figure4(scale: Scale, seed: u64) -> (lncl_crowd::stats::AnnotatorSummary, lncl_crowd::stats::AnnotatorSummary) {
    let sentiment = scale.sentiment_dataset(seed);
    let ner = scale.ner_dataset(seed);
    (annotator_summary(&sentiment), annotator_summary(&ner))
}
