//! Experiment drivers: one function per paper table / figure.
//!
//! Every method is looked up in the [`MethodRegistry`] by key and run
//! through the polymorphic [`CrowdMethod`](logic_lncl::CrowdMethod) API —
//! the tables are data-driven loops over the key lists in
//! [`crate::methods`].  Independent methods are executed on separate scoped
//! threads; every run is seeded, so results are reproducible regardless of
//! the parallelism.

use crate::methods::{validate_methods, TABLE2_METHODS, TABLE3_METHODS, TABLE4_METHODS};
use crate::scale::Scale;
use crate::tables::average_repetitions;
use lncl_crowd::metrics::{
    empirical_confusion, overall_reliability, reliability_correlation, reliability_recovery_pearson,
};
use lncl_crowd::scenario::{ScenarioCache, ScenarioConfig, ScenarioGrid};
use lncl_crowd::stats::annotator_summary;
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_tensor::Matrix;
use logic_lncl::ablation::paper_rules;
use logic_lncl::method::{MethodRegistry, RunContext};
use logic_lncl::{EvalMetrics, LogicLncl, MethodResult};

/// Runs the named registry methods on a dataset, returning their rows
/// concatenated in list order plus each method's wall-clock runtime in
/// seconds (keyed by registry name, in list order).  Methods run on scoped
/// threads, at most [`lncl_tensor::par::max_threads`] training runs at a
/// time (`LNCL_THREADS` overrides) so large tables do not oversubscribe
/// small machines.
pub fn run_methods_timed(
    registry: &MethodRegistry,
    names: &[&str],
    dataset: &CrowdDataset,
    ctx: &RunContext,
) -> (Vec<MethodResult>, Vec<(String, f64)>) {
    run_methods_timed_capped(registry, names, dataset, ctx, lncl_tensor::par::max_threads())
}

/// [`run_methods_timed`] with an explicit cap on concurrent method
/// trainings.  The sweep passes its per-worker slice of the thread budget
/// here, so scenario workers × method threads never exceed `LNCL_THREADS`
/// overall.  The cap only affects scheduling: rows and timings keys are
/// produced in list order and every method run is seeded, so results are
/// bitwise identical at any cap.
pub fn run_methods_timed_capped(
    registry: &MethodRegistry,
    names: &[&str],
    dataset: &CrowdDataset,
    ctx: &RunContext,
    max_parallel: usize,
) -> (Vec<MethodResult>, Vec<(String, f64)>) {
    validate_methods(registry, names);
    let mut rows = Vec::new();
    let mut timings = Vec::with_capacity(names.len());
    for chunk in names.chunks(max_parallel.max(1)) {
        let chunk_rows: Vec<(Vec<MethodResult>, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|&name| {
                    let method = registry.get(name).expect("validated above");
                    s.spawn(move || {
                        let start = std::time::Instant::now();
                        let result = method.run(dataset, ctx);
                        (result, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("method thread panicked")).collect()
        });
        for (&name, (method_rows, secs)) in chunk.iter().zip(chunk_rows) {
            rows.extend(method_rows);
            timings.push((name.to_string(), secs));
        }
    }
    (rows, timings)
}

/// [`run_methods_timed`] without the timings.
pub fn run_methods(
    registry: &MethodRegistry,
    names: &[&str],
    dataset: &CrowdDataset,
    ctx: &RunContext,
) -> Vec<MethodResult> {
    run_methods_timed(registry, names, dataset, ctx).0
}

/// A table's averaged rows plus per-method runtime samples (one sample per
/// repetition, keyed by registry name) for the benchmark report.
pub struct TimedTable {
    /// Rows averaged over the repetitions.
    pub rows: Vec<MethodResult>,
    /// Per-method wall-clock samples in seconds, one per repetition.
    pub timings: Vec<(String, Vec<f64>)>,
}

fn merge_timings(into: &mut Vec<(String, Vec<f64>)>, rep: Vec<(String, f64)>) {
    for (name, secs) in rep {
        match into.iter_mut().find(|(n, _)| *n == name) {
            Some((_, samples)) => samples.push(secs),
            None => into.push((name, vec![secs])),
        }
    }
}

/// Runs all Table-II (sentiment) methods for one repetition.
pub fn table2_single_run(scale: Scale, seed: u64) -> Vec<MethodResult> {
    let dataset = scale.sentiment_dataset(seed);
    let ctx = scale.run_context(&dataset, seed);
    run_methods(&MethodRegistry::standard(), TABLE2_METHODS, &dataset, &ctx)
}

/// Table II averaged over the scale's repetitions, with per-method timings.
pub fn table2_timed(scale: Scale) -> TimedTable {
    let mut timings = Vec::new();
    let reps: Vec<Vec<MethodResult>> = (0..scale.repetitions())
        .map(|r| {
            let seed = 7 + r as u64;
            let dataset = scale.sentiment_dataset(seed);
            let ctx = scale.run_context(&dataset, seed);
            let (rows, rep_timings) = run_methods_timed(&MethodRegistry::standard(), TABLE2_METHODS, &dataset, &ctx);
            merge_timings(&mut timings, rep_timings);
            rows
        })
        .collect();
    TimedTable { rows: average_repetitions(&reps), timings }
}

/// Table II averaged over the scale's repetitions.
pub fn table2(scale: Scale) -> Vec<MethodResult> {
    table2_timed(scale).rows
}

/// Runs all Table-III (NER) methods for one repetition.
pub fn table3_single_run(scale: Scale, seed: u64) -> Vec<MethodResult> {
    let dataset = scale.ner_dataset(seed);
    let ctx = scale.run_context(&dataset, seed);
    run_methods(&MethodRegistry::standard(), TABLE3_METHODS, &dataset, &ctx)
}

/// Table III averaged over the scale's repetitions, with per-method timings.
pub fn table3_timed(scale: Scale) -> TimedTable {
    let mut timings = Vec::new();
    let reps: Vec<Vec<MethodResult>> = (0..scale.repetitions())
        .map(|r| {
            let seed = 11 + r as u64;
            let dataset = scale.ner_dataset(seed);
            let ctx = scale.run_context(&dataset, seed);
            let (rows, rep_timings) = run_methods_timed(&MethodRegistry::standard(), TABLE3_METHODS, &dataset, &ctx);
            merge_timings(&mut timings, rep_timings);
            rows
        })
        .collect();
    TimedTable { rows: average_repetitions(&reps), timings }
}

/// Table III averaged over the scale's repetitions.
pub fn table3(scale: Scale) -> Vec<MethodResult> {
    table3_timed(scale).rows
}

/// Runs the Table-IV ablation on one dataset, with per-method timings.
pub fn table4_for_timed(dataset: &CrowdDataset, scale: Scale, seed: u64) -> TimedTable {
    let ctx = scale.run_context(dataset, seed);
    let (rows, rep_timings) = run_methods_timed(&MethodRegistry::standard(), TABLE4_METHODS, dataset, &ctx);
    let mut timings = Vec::new();
    merge_timings(&mut timings, rep_timings);
    TimedTable { rows, timings }
}

/// Runs the Table-IV ablation on one dataset.
pub fn table4_for(dataset: &CrowdDataset, scale: Scale, seed: u64) -> Vec<MethodResult> {
    table4_for_timed(dataset, scale, seed).rows
}

/// The scenario grid the `scenario_sweep` binary covers at a given scale:
/// the six standard archetype mixes for **both** tasks, plus a redundancy
/// axis (single vs heavy redundancy), a class-imbalance axis, a larger
/// pool on the clean classification mix, and the **temporal axes** — a
/// drift-schedule axis (static vs step change) crossed with a
/// difficulty-concentration axis (flat vs GLAD-style hard instances) on
/// the clean pool of both tasks — every knob of [`ScenarioConfig`] is
/// exercised somewhere in the sweep.
pub fn scenario_sweep_configs(scale: Scale, seed: u64) -> Vec<ScenarioConfig> {
    use lncl_crowd::scenario::{DifficultyModel, DriftSchedule};
    let mut configs = Vec::new();
    // archetype-mix axis, both tasks
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        configs.extend(ScenarioGrid::new(scale.scenario_base(task, seed)).with_standard_mixes().configs());
    }
    // temporal axes, both tasks: drift schedules × difficulty conditioning
    // on the clean pool; `static/flat` is the in-sweep reference point the
    // ranking-flip analysis compares the drifted/conditioned variants to
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        let mut grid = ScenarioGrid::new(scale.scenario_base(task, seed))
            .with_drifts(vec![
                ("static".to_string(), DriftSchedule::Static),
                ("step0.9".to_string(), DriftSchedule::StepChange { at: 0.5, level: 0.9 }),
            ])
            .with_difficulties(vec![
                ("flat".to_string(), DifficultyModel::default()),
                ("hard0.8".to_string(), DifficultyModel::with_strength(0.8)),
            ]);
        grid.mixes = vec![("clean".to_string(), grid.base.mix.clone())];
        configs.extend(grid.configs());
    }
    let clean = |name: &str| scale.scenario_base(TaskKind::Classification, seed).named(name);
    // redundancy axis (clean pool): one label per instance vs heavy redundancy
    for (min_r, max_r) in [(1, 1), (6, 6)] {
        configs.push(clean("redundancy").with_redundancy(min_r, max_r).named(format!("sent/clean/r{min_r}-{max_r}")));
    }
    // class-imbalance axis (clean pool)
    configs.push(clean("sent/clean/b0.85").with_majority_share(0.85));
    // pool-size axis (spammer-heavy mix, bigger crowd)
    let spam = lncl_crowd::scenario::standard_mixes()
        .into_iter()
        .find(|(name, _)| *name == "spammer-third")
        .expect("spammer-third is a standard mix")
        .1;
    let base = scale.scenario_base(TaskKind::Classification, seed);
    let big_pool = base.num_annotators * 2;
    configs.push(base.named(format!("sent/spammer-third/j{big_pool}")).with_mix(spam).with_annotators(big_pool));
    configs
}

/// Everything one swept scenario produced: the per-method result rows (the
/// quality table), the per-method wall-clock timings and the scenario-level
/// reliability-recovery statistic.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (the [`ScenarioConfig::name`]).
    pub name: String,
    /// Task the scenario generated data for.
    pub task: TaskKind,
    /// Result rows of every executed method, in method order.
    pub rows: Vec<MethodResult>,
    /// Per-method wall-clock timings in seconds, keyed by registry name.
    pub timings: Vec<(String, f64)>,
    /// Pearson correlation between consensus-estimated and true annotator
    /// reliability (see [`reliability_recovery_pearson`]).
    pub reliability_pearson: f32,
}

/// Runs one scenario: generates (or fetches from `cache`) its dataset,
/// executes the registry methods — all methods supporting the task, or the
/// intersection with `methods` when given, at most `method_parallelism`
/// trainings at a time — and computes the scenario-level reliability
/// statistic.  Fully deterministic for a fixed config and scale,
/// regardless of how method threads are scheduled.
pub fn run_scenario_outcome(
    config: &ScenarioConfig,
    scale: Scale,
    registry: &MethodRegistry,
    methods: Option<&[&str]>,
    cache: &ScenarioCache,
    method_parallelism: usize,
) -> ScenarioOutcome {
    run_scenario_outcome_with_epochs(config, scale, scale.epochs(), registry, methods, cache, method_parallelism)
}

/// [`run_scenario_outcome`] with an explicit epoch count instead of the
/// `LNCL_EPOCHS`-aware per-scale default — the entry point distributed
/// sweep workers use, so every worker trains with the epoch count the
/// coordinator resolved once, regardless of the worker's own environment.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_outcome_with_epochs(
    config: &ScenarioConfig,
    scale: Scale,
    epochs: usize,
    registry: &MethodRegistry,
    methods: Option<&[&str]>,
    cache: &ScenarioCache,
    method_parallelism: usize,
) -> ScenarioOutcome {
    let dataset = cache.get_or_generate(config);
    let ctx = scale.run_context_with_epochs(&dataset, config.seed, epochs);
    let supporting: Vec<String> = registry.supporting(dataset.task).iter().map(|m| m.descriptor().name).collect();
    let names: Vec<&str> = match methods {
        Some(filter) => filter.iter().copied().filter(|n| supporting.iter().any(|s| s == n)).collect(),
        None => supporting.iter().map(String::as_str).collect(),
    };
    let (rows, timings) = run_methods_timed_capped(registry, &names, &dataset, &ctx, method_parallelism.max(1));
    let reliability_pearson = reliability_recovery_pearson(&dataset, 5);
    ScenarioOutcome { name: config.name.clone(), task: config.task, rows, timings, reliability_pearson }
}

/// Runs a list of scenarios sharded across up to `workers` scoped threads
/// (assigned round-robin, so expensive and cheap scenarios spread evenly),
/// returning outcomes in **input order**.  Every scenario is independently
/// seeded and every method run is bitwise deterministic, so the outcome
/// rows are identical to the serial path (`workers == 1`) no matter how
/// many threads execute — only the wall-clock timings vary.  Workers share
/// one [`ScenarioCache`], so configs differing only by name generate their
/// corpus once.
///
/// The [`lncl_tensor::par::max_threads`] budget is *split* between the two
/// parallelism levels: each of the `workers` scenario workers trains at
/// most `max_threads / workers` methods concurrently, so the sweep never
/// oversubscribes the `LNCL_THREADS` cap the way nested full-width levels
/// would.
pub fn sweep_scenarios(
    configs: &[ScenarioConfig],
    scale: Scale,
    methods: Option<&[&str]>,
    workers: usize,
) -> Vec<ScenarioOutcome> {
    let registry = MethodRegistry::standard();
    let cache = ScenarioCache::new();
    let workers = workers.clamp(1, configs.len().max(1));
    let method_parallelism = (lncl_tensor::par::max_threads() / workers).max(1);
    if workers <= 1 {
        return configs
            .iter()
            .map(|c| run_scenario_outcome(c, scale, &registry, methods, &cache, method_parallelism))
            .collect();
    }
    let mut slots: Vec<Option<ScenarioOutcome>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let registry = &registry;
                let cache = &cache;
                s.spawn(move || {
                    configs
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, c)| (i, run_scenario_outcome(c, scale, registry, methods, cache, method_parallelism)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, outcome) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every scenario is assigned to exactly one worker")).collect()
}

/// The scenario subset process shard `index` of `total` runs: grid indices
/// `index, index + total, index + 2·total, …` — strided, so every shard
/// receives a similar mix of cheap and expensive scenarios.  Recombining
/// all shards' quality tables (e.g. via `bench_diff merge`) reproduces the
/// unsharded sweep exactly.
pub fn shard_configs(configs: &[ScenarioConfig], index: usize, total: usize) -> Vec<ScenarioConfig> {
    assert!(total >= 1, "shard count must be at least 1");
    assert!(index < total, "shard index {index} out of range for {total} shard(s)");
    configs.iter().skip(index).step_by(total).cloned().collect()
}

/// Runs every standard-registry method supporting the scenario's task on
/// the generated dataset, returning the result rows and per-method
/// wall-clock timings (keyed by registry name).
pub fn run_scenario(config: &ScenarioConfig, scale: Scale) -> (Vec<MethodResult>, Vec<(String, f64)>) {
    let outcome = run_scenario_outcome(
        config,
        scale,
        &MethodRegistry::standard(),
        None,
        &ScenarioCache::new(),
        lncl_tensor::par::max_threads(),
    );
    (outcome.rows, outcome.timings)
}

/// Figure 6/7: trains Logic-LNCL and compares its estimated annotator
/// confusion matrices / reliabilities to the empirical ones.
pub struct ReliabilityStudy {
    /// Indices of the most prolific annotators (shown individually).
    pub top_annotators: Vec<usize>,
    /// Estimated confusion matrix per top annotator.
    pub estimated: Vec<Matrix>,
    /// Empirical ("real") confusion matrix per top annotator.
    pub real: Vec<Matrix>,
    /// Pearson correlation of estimated vs real overall reliability across
    /// the active annotator pool.
    pub pearson: f32,
    /// Class names (for rendering).
    pub class_names: Vec<String>,
}

/// Runs the reliability study on a dataset.  This is the one experiment
/// that needs more than [`MethodResult`] rows (the trained annotator
/// model), so it drives the [`LogicLncl`] trainer directly through the
/// builder API.
pub fn reliability_study(dataset: &CrowdDataset, scale: Scale, seed: u64, top_n: usize) -> ReliabilityStudy {
    let ctx = scale.run_context(dataset, seed);
    let mut trainer =
        LogicLncl::builder(ctx.model(seed)).rules(paper_rules(dataset)).config(ctx.config.clone()).build(dataset);
    trainer.train(dataset);
    let estimated_all = trainer.annotators.confusions();

    let summary = annotator_summary(dataset);
    let top_annotators = summary.top_annotators(top_n);
    let estimated: Vec<Matrix> = top_annotators.iter().map(|&a| estimated_all[a].clone()).collect();
    let real: Vec<Matrix> =
        top_annotators.iter().map(|&a| empirical_confusion(&dataset.train, a, dataset.num_classes)).collect();

    // reliability scatter over annotators with more than 5 labelled instances
    let active = summary.active_annotators(5);
    let est_rel: Vec<f32> = active.iter().map(|&a| overall_reliability(&estimated_all[a])).collect();
    let real_rel: Vec<f32> = active
        .iter()
        .map(|&a| overall_reliability(&empirical_confusion(&dataset.train, a, dataset.num_classes)))
        .collect();
    let pearson = reliability_correlation(&est_rel, &real_rel);

    ReliabilityStudy { top_annotators, estimated, real, pearson, class_names: dataset.class_names.clone() }
}

/// §VI-B sample-efficiency sweep: trains Logic-LNCL and the best baseline
/// (AggNet) on growing fractions of the training data and reports the test
/// metric for each fraction.
pub fn sample_efficiency(scale: Scale, fractions: &[f32], seed: u64) -> Vec<(f32, EvalMetrics, EvalMetrics)> {
    let registry = MethodRegistry::standard();
    let full = scale.sentiment_dataset(seed);
    fractions
        .iter()
        .map(|&fraction| {
            let take = ((full.train.len() as f32 * fraction).round() as usize).max(20);
            let mut dataset = full.clone();
            dataset.train.truncate(take);
            let ctx = scale.run_context(&dataset, seed);
            let logic = registry.run("logic-lncl", &dataset, &ctx).expect("logic-lncl registered");
            let teacher = logic.last().expect("student + teacher rows").prediction;
            let aggnet = registry.run("aggnet", &dataset, &ctx).expect("aggnet registered")[0].prediction;
            (fraction, teacher, aggnet)
        })
        .collect()
}

/// Figure-4 statistics for both datasets.
pub fn figure4(scale: Scale, seed: u64) -> (lncl_crowd::stats::AnnotatorSummary, lncl_crowd::stats::AnnotatorSummary) {
    let sentiment = scale.sentiment_dataset(seed);
    let ner = scale.ner_dataset(seed);
    (annotator_summary(&sentiment), annotator_summary(&ner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::scenario::generate_scenario;
    use std::collections::BTreeSet;

    #[test]
    fn scenario_sweep_grid_covers_every_axis() {
        let configs = scenario_sweep_configs(Scale::Small, 29);
        // >= 6 archetype mixes per task plus the redundancy / imbalance /
        // pool axes
        assert!(configs.len() >= 14, "sweep too small: {}", configs.len());
        let names: BTreeSet<_> = configs.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), configs.len(), "scenario names must be unique");
        let mixes: BTreeSet<&str> =
            names.iter().filter(|n| n.starts_with("sent/")).filter_map(|n| n.split('/').nth(1)).collect();
        assert!(mixes.len() >= 6, "expected >= 6 classification mixes, got {mixes:?}");
        assert!(configs.iter().any(|c| c.task == TaskKind::SequenceTagging), "tagging scenarios present");
        assert!(configs.iter().any(|c| c.min_labels_per_instance == 1), "redundancy-1 axis present");
        assert!(configs.iter().any(|c| (c.majority_share - 0.85).abs() < 1e-6), "imbalance axis present");
        // temporal axes: drifted and difficulty-conditioned variants plus
        // their in-sweep static reference, for both tasks
        for task_tag in ["sent", "ner"] {
            assert!(
                names.iter().any(|n| n.starts_with(task_tag) && n.ends_with("/static/flat")),
                "{task_tag}: static temporal reference present"
            );
            assert!(
                names.iter().any(|n| n.starts_with(task_tag) && n.contains("/step0.9/")),
                "{task_tag}: drift axis present"
            );
            assert!(
                names.iter().any(|n| n.starts_with(task_tag) && n.ends_with("/hard0.8")),
                "{task_tag}: difficulty axis present"
            );
        }
        assert!(configs.iter().any(|c| !c.drift.is_static()), "a drifted config is present");
        assert!(configs.iter().any(|c| !c.difficulty.is_degenerate()), "a difficulty-conditioned config is present");
        // every config generates a valid dataset at a shrunken size
        for config in configs.iter().take(3) {
            let dataset = generate_scenario(&config.clone().with_sizes(20, 8, 8));
            assert!(dataset.validate().is_ok(), "{}: invalid dataset", config.name);
        }
    }
}
