//! Plain-text table rendering for the experiment binaries.

use logic_lncl::{EvalMetrics, MethodResult};

/// Renders a Table-II style table (accuracy-based: prediction / inference /
/// average columns).
pub fn render_classification_table(title: &str, rows: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n"));
    out.push_str(&format!("{:<34} {:>12} {:>12} {:>10}\n", "Method", "Prediction", "Inference", "Average"));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for row in rows {
        let pred = if row.prediction.accuracy > 0.0 {
            format!("{:.2}", row.prediction.accuracy * 100.0)
        } else {
            "-".to_string()
        };
        let inf = match row.inference {
            Some(m) => format!("{:.2}", m.accuracy * 100.0),
            None => "-".to_string(),
        };
        let avg = if row.prediction.accuracy > 0.0 && row.inference.is_some() {
            format!("{:.2}", row.average(false) * 100.0)
        } else {
            "-".to_string()
        };
        out.push_str(&format!("{:<34} {:>12} {:>12} {:>10}\n", row.method, pred, inf, avg));
    }
    out
}

/// Renders a Table-III style table (P/R/F1 for prediction and inference).
pub fn render_sequence_table(title: &str, rows: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n"));
    out.push_str(&format!(
        "{:<34} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7} {:>9}\n",
        "Method", "P", "R", "F1", "P(inf)", "R(inf)", "F1(inf)", "Avg F1"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    let fmt = |m: &EvalMetrics| {
        if m.accuracy > 0.0 || m.f1 > 0.0 || m.precision > 0.0 || m.recall > 0.0 {
            (format!("{:.2}", m.precision * 100.0), format!("{:.2}", m.recall * 100.0), format!("{:.2}", m.f1 * 100.0))
        } else {
            ("-".to_string(), "-".to_string(), "-".to_string())
        }
    };
    for row in rows {
        let (pp, pr, pf) = fmt(&row.prediction);
        let (ip, ir, if1) = match &row.inference {
            Some(m) => fmt(m),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let avg = match row.inference {
            Some(inf) if row.prediction.f1 > 0.0 => format!("{:.2}", (row.prediction.f1 + inf.f1) / 2.0 * 100.0),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<34} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7} {:>9}\n",
            row.method, pp, pr, pf, ip, ir, if1, avg
        ));
    }
    out
}

/// Averages repeated runs of the same method list (element-wise by position).
pub fn average_repetitions(repetitions: &[Vec<MethodResult>]) -> Vec<MethodResult> {
    assert!(!repetitions.is_empty(), "need at least one repetition");
    let n = repetitions[0].len();
    (0..n)
        .map(|i| {
            let name = repetitions[0][i].method.clone();
            let preds: Vec<EvalMetrics> = repetitions.iter().map(|rep| rep[i].prediction).collect();
            let infs: Vec<EvalMetrics> = repetitions.iter().filter_map(|rep| rep[i].inference).collect();
            let inference = if infs.is_empty() { None } else { Some(EvalMetrics::mean(&infs)) };
            MethodResult::new(name, EvalMetrics::mean(&preds), inference)
        })
        .collect()
}

/// Renders a simple ASCII boxplot line from a five-number summary.
pub fn render_boxplot(label: &str, summary: [f32; 5]) -> String {
    format!(
        "{:<28} min {:>8.2} | q1 {:>8.2} | median {:>8.2} | q3 {:>8.2} | max {:>8.2}",
        label, summary[0], summary[1], summary[2], summary[3], summary[4]
    )
}

/// Renders a confusion matrix with class names.
pub fn render_confusion(title: &str, names: &[String], matrix: &lncl_tensor::Matrix) -> String {
    let mut out = format!("{title}\n        ");
    for name in names {
        out.push_str(&format!("{name:>8}"));
    }
    out.push('\n');
    for (r, name) in names.iter().enumerate() {
        out.push_str(&format!("{name:>8}"));
        for c in 0..names.len() {
            out.push_str(&format!("{:>8.2}", matrix[(r, c)]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table_contains_rows() {
        let rows = vec![
            MethodResult::new(
                "MV-Classifier",
                EvalMetrics::from_accuracy(0.78),
                Some(EvalMetrics::from_accuracy(0.88)),
            ),
            MethodResult::new("MV", EvalMetrics::default(), Some(EvalMetrics::from_accuracy(0.88))),
        ];
        let table = render_classification_table("Table II", &rows);
        assert!(table.contains("MV-Classifier"));
        assert!(table.contains("78.00"));
        assert!(table.contains("Table II"));
    }

    #[test]
    fn sequence_table_handles_missing_metrics() {
        let rows = vec![MethodResult::new(
            "DL-DN",
            EvalMetrics { accuracy: 0.9, precision: 0.7, recall: 0.5, f1: 0.58 },
            None,
        )];
        let table = render_sequence_table("Table III", &rows);
        assert!(table.contains("DL-DN"));
        assert!(table.contains("58.00"));
    }

    #[test]
    fn average_repetitions_averages_by_position() {
        let rep1 = vec![MethodResult::new("m", EvalMetrics::from_accuracy(0.6), Some(EvalMetrics::from_accuracy(0.8)))];
        let rep2 = vec![MethodResult::new("m", EvalMetrics::from_accuracy(0.8), Some(EvalMetrics::from_accuracy(0.9)))];
        let avg = average_repetitions(&[rep1, rep2]);
        assert!((avg[0].prediction.accuracy - 0.7).abs() < 1e-6);
        assert!((avg[0].inference.unwrap().accuracy - 0.85).abs() < 1e-6);
    }

    #[test]
    fn boxplot_and_confusion_render() {
        let line = render_boxplot("labels per annotator", [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(line.contains("median"));
        let names = vec!["NEG".to_string(), "POS".to_string()];
        let m = lncl_tensor::Matrix::identity(2);
        let table = render_confusion("Annotator 5", &names, &m);
        assert!(table.contains("Annotator 5"));
        assert!(table.contains("NEG"));
    }
}
