//! Per-method runners: each function trains one of the compared methods on a
//! dataset and returns the `MethodResult` row the paper's tables report.

use lncl_crowd::truth::{
    BscSeq, Catd, DawidSkene, Glad, HmmCrowd, Ibcc, MajorityVote, Pm, TruthEstimate, TruthInference,
};
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_nn::{InstanceClassifier, Module};
use logic_lncl::ablation::{other_rules, paper_rules, rules_for, AblationVariant};
use logic_lncl::baselines::two_stage::{gold_targets, inference_metrics_of, one_hot_targets, train_supervised};
use logic_lncl::baselines::{CrowdLayerKind, CrowdLayerTrainer, DlDnConfig, DlDnKind};
use logic_lncl::predict::{evaluate_split, PredictionMode};
use logic_lncl::{EvalMetrics, LogicLncl, MethodResult, TaskRules, TrainConfig};

/// Converts a flat truth estimate into per-instance targets.
pub fn estimate_to_targets(estimate: &TruthEstimate, dataset: &CrowdDataset) -> Vec<Vec<Vec<f32>>> {
    let view = dataset.annotation_view();
    let mut targets: Vec<Vec<Vec<f32>>> = dataset.train.iter().map(|_| Vec::new()).collect();
    for (u, post) in estimate.posteriors.iter().enumerate() {
        targets[view.unit_instance[u]].push(post.clone());
    }
    targets
}

/// Runs a two-stage baseline: aggregate with `inference`, then train the
/// classifier on the hard labels.
pub fn run_two_stage<M, F>(
    name: &str,
    inference: &dyn TruthInference,
    dataset: &CrowdDataset,
    config: &TrainConfig,
    model_factory: F,
) -> MethodResult
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    let view = dataset.annotation_view();
    let estimate = inference.infer(&view);
    let hard = estimate.hard_by_instance(&view);
    let inference_metrics = inference_metrics_of(&hard, dataset);
    let targets = one_hot_targets(&hard, dataset.num_classes);
    let mut model = model_factory(config.seed);
    train_supervised(&mut model, dataset, &targets, config);
    let prediction = evaluate_split(&model, &dataset.test, dataset.task, PredictionMode::Student, &TaskRules::None, 0.0);
    MethodResult::new(name, prediction, Some(inference_metrics))
}

/// Runs the Gold upper bound (training on the true labels).
pub fn run_gold<M, F>(dataset: &CrowdDataset, config: &TrainConfig, model_factory: F) -> MethodResult
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    let mut model = model_factory(config.seed);
    train_supervised(&mut model, dataset, &gold_targets(dataset), config);
    let prediction = evaluate_split(&model, &dataset.test, dataset.task, PredictionMode::Student, &TaskRules::None, 0.0);
    MethodResult::new("Gold", prediction, Some(EvalMetrics::from_accuracy(1.0)))
}

/// Runs the EM baseline without rules (AggNet with a neural classifier; the
/// inference column doubles as the Raykar row of Table II).
pub fn run_aggnet<M, F>(dataset: &CrowdDataset, config: &TrainConfig, model_factory: F) -> MethodResult
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    let model = model_factory(config.seed);
    let mut trainer = LogicLncl::new(model, dataset, TaskRules::None, config.clone());
    let report = trainer.train(dataset);
    let prediction = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    MethodResult::new("AggNet", prediction, Some(report.inference))
}

/// Runs one crowd-layer variant.
pub fn run_crowd_layer<M, F>(
    kind: CrowdLayerKind,
    pretrain_epochs: usize,
    dataset: &CrowdDataset,
    config: &TrainConfig,
    model_factory: F,
) -> MethodResult
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    let model = model_factory(config.seed);
    let mut trainer = CrowdLayerTrainer::new(model, dataset, kind, config.clone(), pretrain_epochs);
    let inference = trainer.train(dataset);
    let prediction = trainer.evaluate(&dataset.test, dataset.task);
    let name = if pretrain_epochs > 0 { format!("{} [{} pretrain]", kind.name(), pretrain_epochs) } else { kind.name().to_string() };
    MethodResult::new(name, prediction, Some(inference))
}

/// Runs DL-DN / DL-WDN.
pub fn run_dl_dn<M, F>(
    kind: DlDnKind,
    dataset: &CrowdDataset,
    config: &TrainConfig,
    model_factory: F,
) -> MethodResult
where
    M: InstanceClassifier + Module + Clone,
    F: FnMut(u64) -> M,
{
    let dl_config = DlDnConfig {
        train: TrainConfig { epochs: (config.epochs / 2).max(3), ..config.clone() },
        min_instances: 20,
        max_annotators: 10,
    };
    let (prediction, _) = logic_lncl::baselines::train_dl_dn(dataset, kind, &dl_config, model_factory);
    MethodResult::new(kind.name(), prediction, None)
}

/// Runs the full Logic-LNCL and returns the student and teacher rows (one
/// training run, two prediction modes).
pub fn run_logic_lncl<M, F>(dataset: &CrowdDataset, config: &TrainConfig, model_factory: F) -> (MethodResult, MethodResult)
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    let model = model_factory(config.seed);
    let mut trainer = LogicLncl::new(model, dataset, paper_rules(dataset), config.clone());
    let report = trainer.train(dataset);
    let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
    (
        MethodResult::new("Logic-LNCL-student", student, Some(report.inference)),
        MethodResult::new("Logic-LNCL-teacher", teacher, Some(report.inference)),
    )
}

/// Runs one ablation variant of Table IV (student and teacher outputs where
/// applicable).
pub fn run_ablation<M, F>(
    variant: AblationVariant,
    dataset: &CrowdDataset,
    config: &TrainConfig,
    model_factory: F,
) -> Vec<MethodResult>
where
    M: InstanceClassifier + Module + Clone,
    F: FnOnce(u64) -> M,
{
    match variant {
        AblationVariant::Full => {
            let (s, t) = run_logic_lncl(dataset, config, model_factory);
            vec![s, t]
        }
        AblationVariant::WithoutRule => {
            let result = run_aggnet(dataset, config, model_factory);
            vec![MethodResult::new("w/o-Rule", result.prediction, result.inference)]
        }
        AblationVariant::MvTeacher => {
            // MV-Classifier whose *test-time* prediction applies the rules.
            let view = dataset.annotation_view();
            let mv = MajorityVote.infer(&view);
            let hard = mv.hard_by_instance(&view);
            let inference = inference_metrics_of(&hard, dataset);
            let targets = one_hot_targets(&hard, dataset.num_classes);
            let mut model = model_factory(config.seed);
            train_supervised(&mut model, dataset, &targets, config);
            let rules = paper_rules(dataset);
            let prediction =
                evaluate_split(&model, &dataset.test, dataset.task, PredictionMode::Teacher, &rules, config.regularization_c);
            vec![MethodResult::new("MV-t", prediction, Some(inference))]
        }
        AblationVariant::MvRule | AblationVariant::GladRule => {
            let view = dataset.annotation_view();
            let estimate = if variant == AblationVariant::MvRule {
                MajorityVote.infer(&view)
            } else if dataset.task == TaskKind::Classification {
                Glad::default().infer(&view)
            } else {
                // GLAD is not applicable to NER; the paper substitutes the
                // AggNet estimate, which Dawid–Skene approximates here.
                DawidSkene::default().infer(&view)
            };
            let fixed = estimate_to_targets(&estimate, dataset);
            let model = model_factory(config.seed);
            let mut trainer =
                LogicLncl::new(model, dataset, paper_rules(dataset), config.clone()).with_fixed_posterior(fixed);
            let report = trainer.train(dataset);
            let prediction = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
            vec![MethodResult::new(variant.name(), prediction, Some(report.inference))]
        }
        AblationVariant::OtherRules => {
            let model = model_factory(config.seed);
            let mut trainer = LogicLncl::new(model, dataset, other_rules(dataset), config.clone());
            let report = trainer.train(dataset);
            let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
            let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
            vec![
                MethodResult::new("our-other-rules-student", student, Some(report.inference)),
                MethodResult::new("our-other-rules-teacher", teacher, Some(report.inference)),
            ]
        }
    }
}

/// The truth-inference-only rows of Table II (sentiment).
pub fn sentiment_truth_inference_rows(dataset: &CrowdDataset) -> Vec<MethodResult> {
    let view = dataset.annotation_view();
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(MajorityVote),
        Box::new(DawidSkene::default()),
        Box::new(Glad::default()),
        Box::new(Pm::default()),
        Box::new(Catd::default()),
        Box::new(Ibcc::default()),
    ];
    methods
        .iter()
        .map(|m| {
            let estimate = m.infer(&view);
            let hard = estimate.hard_by_instance(&view);
            MethodResult::new(m.name(), EvalMetrics::default(), Some(inference_metrics_of(&hard, dataset)))
        })
        .collect()
}

/// The truth-inference-only rows of Table III (NER).
pub fn ner_truth_inference_rows(dataset: &CrowdDataset) -> Vec<MethodResult> {
    let view = dataset.annotation_view();
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(MajorityVote),
        Box::new(DawidSkene::default()),
        Box::new(Ibcc::default()),
        Box::new(BscSeq::default()),
        Box::new(HmmCrowd::default()),
    ];
    methods
        .iter()
        .map(|m| {
            let estimate = m.infer(&view);
            let hard = estimate.hard_by_instance(&view);
            MethodResult::new(m.name(), EvalMetrics::default(), Some(inference_metrics_of(&hard, dataset)))
        })
        .collect()
}

/// Convenience used by the ablation binary: all Table-IV variants.
pub fn ablation_variants() -> Vec<AblationVariant> {
    AblationVariant::all().to_vec()
}

/// Rules helper re-exported for binaries that need the rule set of a dataset.
pub fn dataset_rules(dataset: &CrowdDataset, variant: AblationVariant) -> TaskRules {
    rules_for(variant, dataset)
}
