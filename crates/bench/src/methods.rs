//! Method selection for the paper's tables.
//!
//! Every compared method is constructed and run through the
//! [`MethodRegistry`] — there are no per-method
//! runner functions any more.  This module only names *which* registry keys
//! each table reports, in the paper's row order; the generic execution loop
//! lives in [`crate::experiments`].

use logic_lncl::MethodRegistry;

/// Registry keys of the Table-II (sentiment) rows, in table order.
pub const TABLE2_METHODS: &[&str] = &[
    "mv-classifier",
    "glad-classifier",
    "aggnet",
    "cl-vw",
    "cl-vw-b",
    "cl-mw",
    "logic-lncl",
    "mv",
    "dawid-skene",
    "glad",
    "pm",
    "catd",
    "ibcc",
    "gold",
];

/// Registry keys of the Table-III (NER) rows, in table order.
pub const TABLE3_METHODS: &[&str] = &[
    "mv-classifier",
    "aggnet",
    "cl-vw+pre2",
    "cl-vw-b+pre2",
    "cl-mw+pre2",
    "cl-mw",
    "logic-lncl",
    "dl-dn",
    "dl-wdn",
    "mv",
    "dawid-skene",
    "ibcc",
    "bsc-seq",
    "hmm-crowd",
    "gold",
];

/// Registry keys of the Table-IV (ablation) rows, in table order.
pub const TABLE4_METHODS: &[&str] = &["mv-rule", "glad-rule", "wo-rule", "mv-teacher", "other-rules", "logic-lncl"];

/// Checks a method list against a registry, panicking on unknown keys —
/// run at the top of every table binary so a typo fails fast.
pub fn validate_methods(registry: &MethodRegistry, names: &[&str]) {
    for &name in names {
        assert!(registry.get(name).is_some(), "method {name:?} is not in the registry (known: {:?})", registry.names());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_method_lists_resolve_in_the_standard_registry() {
        let registry = MethodRegistry::standard();
        validate_methods(&registry, TABLE2_METHODS);
        validate_methods(&registry, TABLE3_METHODS);
        validate_methods(&registry, TABLE4_METHODS);
    }

    #[test]
    #[should_panic(expected = "not in the registry")]
    fn unknown_method_key_fails_fast() {
        validate_methods(&MethodRegistry::standard(), &["no-such-method"]);
    }

    #[test]
    fn table_methods_support_their_task() {
        let registry = MethodRegistry::standard();
        for &name in TABLE2_METHODS {
            assert!(registry.get(name).unwrap().descriptor().supports(lncl_crowd::TaskKind::Classification), "{name}");
        }
        for &name in TABLE3_METHODS {
            assert!(registry.get(name).unwrap().descriptor().supports(lncl_crowd::TaskKind::SequenceTagging), "{name}");
        }
    }
}
