//! Budget-curve emission: accuracy-per-label-spent quality rows for the
//! closed-loop routing policies, and the `@b<fraction>` scenario naming
//! convention `bench_diff rank --budget` filters on.
//!
//! For each `(scenario, policy)` pair one **full-budget** closed-loop run
//! ([`lncl_crowd::scenario::router::run_closed_loop`]) yields every curve
//! point at once: the driver's rounds never overshoot a pending
//! checkpoint, and the families swept here put every checkpoint threshold
//! on the policies' round cadence, so the point at fraction `f` is
//! bitwise the state a budget-`f` run ends in.  Each [`CurvePoint`] becomes one
//! [`QualityCase`] row under the scenario name
//! `<family>@b<fraction>` with the policy as the method — making rankings
//! at different budget levels first-class scenarios, so the standard
//! ranking/flip/gate machinery of [`crate::rank`] applies unchanged.

use crate::quality::HEADLINE_METRIC;
use crate::timing::{BenchReport, QualityCase};
use lncl_crowd::scenario::router::{run_closed_loop, CurvePoint, PolicyKind, RoutePlan, DEFAULT_CHECKPOINTS};
use lncl_crowd::scenario::{generate_scenario, ScenarioConfig};
use lncl_crowd::truth::streaming::StreamingConfig;

/// The scenario name a curve point is recorded under: the family name plus
/// an `@b<fraction>` suffix (two decimals, e.g. `spam-heavy@b0.60`).
pub fn budget_scenario_name(family: &str, fraction: f32) -> String {
    format!("{family}@b{fraction:.2}")
}

/// Splits a `<family>@b<fraction>` scenario name back into its parts;
/// `None` when the name carries no well-formed budget suffix.
pub fn parse_budget_suffix(scenario: &str) -> Option<(&str, f64)> {
    let (family, raw) = scenario.rsplit_once("@b")?;
    let fraction: f64 = raw.parse().ok()?;
    (fraction > 0.0 && fraction <= 1.0 && !family.is_empty()).then_some((family, fraction))
}

/// Keeps only the quality rows recorded at budget `fraction` (matched
/// against the `@b` suffix within `1e-6`).
pub fn filter_by_budget(cases: &[QualityCase], fraction: f64) -> Vec<QualityCase> {
    cases
        .iter()
        .filter(|case| parse_budget_suffix(&case.scenario).is_some_and(|(_, f)| (f - fraction).abs() < 1e-6))
        .cloned()
        .collect()
}

/// One policy's full budget curve on one scenario.
#[derive(Debug, Clone)]
pub struct BudgetCurve {
    /// Scenario family name the curve belongs to.
    pub family: String,
    /// Routing policy that produced the curve.
    pub policy: PolicyKind,
    /// One point per checkpoint of [`DEFAULT_CHECKPOINTS`].
    pub points: Vec<CurvePoint>,
}

/// Runs every routing policy over `config` at full budget and returns the
/// per-policy curves.  The scenario's own `route` field is ignored — the
/// sweep *is* the route axis.
pub fn sweep_budget_curves(config: &ScenarioConfig) -> Vec<BudgetCurve> {
    let dataset = generate_scenario(config);
    PolicyKind::ALL
        .into_iter()
        .map(|policy| {
            let mut boxed = policy.build();
            let outcome = run_closed_loop(
                &dataset,
                boxed.as_mut(),
                RoutePlan::new(policy, 1.0).budget_for(&dataset),
                StreamingConfig::pooled(dataset.num_classes),
                &DEFAULT_CHECKPOINTS,
                config.seed,
            );
            BudgetCurve { family: config.name.clone(), policy, points: outcome.curve }
        })
        .collect()
}

/// Records a curve into the report's quality table: one row per point,
/// scenario `<family>@b<fraction>`, method = policy name, with the
/// consensus accuracy as the [`HEADLINE_METRIC`] plus the raw spend and
/// entropy for inspection.
pub fn record_budget_curve(report: &mut BenchReport, curve: &BudgetCurve) {
    for point in &curve.points {
        report.record_quality(
            &budget_scenario_name(&curve.family, point.budget_fraction),
            curve.policy.name(),
            vec![
                (HEADLINE_METRIC.to_string(), point.accuracy as f64),
                ("labels_spent".to_string(), point.labels_spent as f64),
                ("mean_entropy".to_string(), point.mean_entropy as f64),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_names_round_trip() {
        let name = budget_scenario_name("spam-heavy", 0.6);
        assert_eq!(name, "spam-heavy@b0.60");
        assert_eq!(parse_budget_suffix(&name), Some(("spam-heavy", 0.6)));
        // family names may contain @b themselves: the split is rightmost
        assert_eq!(parse_budget_suffix("a@b0.50@b1.00"), Some(("a@b0.50", 1.0)));
        for bad in ["plain", "@b0.50", "x@b", "x@b1.5", "x@b0", "x@bnan"] {
            assert_eq!(parse_budget_suffix(bad), None, "{bad}");
        }
    }

    #[test]
    fn filter_keeps_only_the_requested_fraction() {
        let case = |scenario: &str| QualityCase {
            scenario: scenario.to_string(),
            method: "m".to_string(),
            metrics: vec![(HEADLINE_METRIC.to_string(), 0.5)],
        };
        let cases = vec![case("s@b0.20"), case("s@b0.60"), case("t@b0.60"), case("plain")];
        let kept = filter_by_budget(&cases, 0.6);
        let names: Vec<&str> = kept.iter().map(|c| c.scenario.as_str()).collect();
        assert_eq!(names, vec!["s@b0.60", "t@b0.60"]);
    }
}
