//! Method-ranking analysis over the quality tables of `BENCH_*.json`
//! reports — the machinery behind `bench_diff rank`.
//!
//! The paper's central empirical claim is a *ranking* of methods, and the
//! interesting question across crowd scenarios is where that ranking
//! flips.  This module turns [`QualityCase`] rows into per-scenario
//! rankings ([`rank_scenarios`]), detects strict pairwise order reversals
//! between two rankings ([`ranking_flips`]) and scores quality regressions
//! between two reports ([`quality_regressions`], the quality counterpart
//! of the `bench_diff compare --gate` perf gate).

use crate::timing::{QualityCase, SCENARIO_CASE};
use std::collections::BTreeMap;

/// One method's position in a scenario ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankEntry {
    /// Method row label.
    pub method: String,
    /// The ranked metric's value.
    pub value: f64,
    /// 1-based competition rank: `1 + #methods with strictly greater
    /// value`, so tied methods share a rank.
    pub rank: usize,
}

/// All methods of one scenario ordered best-first.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRanking {
    /// Scenario the ranking belongs to.
    pub scenario: String,
    /// Entries ordered by descending value, ties alphabetically.
    pub entries: Vec<RankEntry>,
}

impl ScenarioRanking {
    /// The rank of a method, if ranked.
    pub fn rank_of(&self, method: &str) -> Option<usize> {
        self.entries.iter().find(|e| e.method == method).map(|e| e.rank)
    }
}

/// Groups quality rows by scenario and ranks each scenario's methods by
/// `metric`, descending.  Scenario-level rows ([`SCENARIO_CASE`]) and rows
/// lacking the metric are skipped; duplicate `(scenario, method)` rows
/// (e.g. merged overlapping reports) keep their first occurrence.
/// Scenarios are returned in name order.
pub fn rank_scenarios(cases: &[QualityCase], metric: &str) -> Vec<ScenarioRanking> {
    let mut by_scenario: BTreeMap<&str, BTreeMap<&str, f64>> = BTreeMap::new();
    for case in cases {
        if case.method == SCENARIO_CASE {
            continue;
        }
        let Some(value) = case.metric(metric) else { continue };
        by_scenario.entry(&case.scenario).or_default().entry(&case.method).or_insert(value);
    }
    by_scenario
        .into_iter()
        .filter(|(_, methods)| !methods.is_empty())
        .map(|(scenario, methods)| {
            let mut ordered: Vec<(&str, f64)> = methods.into_iter().collect();
            ordered.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
            let entries = ordered
                .iter()
                .map(|&(method, value)| RankEntry {
                    method: method.to_string(),
                    value,
                    rank: 1 + ordered.iter().filter(|&&(_, other)| other > value).count(),
                })
                .collect();
            ScenarioRanking { scenario: scenario.to_string(), entries }
        })
        .collect()
}

/// One strict pairwise order reversal between two rankings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankingFlip {
    /// Method strictly ahead of `promoted` in the first ranking, strictly
    /// behind it in the second.
    pub demoted: String,
    /// Method overtaking `demoted` in the second ranking.
    pub promoted: String,
}

/// Strict pairwise order reversals from ranking `a` to ranking `b`: every
/// method pair where one strictly outranks the other in `a` and strictly
/// trails it in `b`.  Ties on either side are not flips, and methods
/// ranked in only one of the two rankings are skipped.  Each reversal is
/// reported once, oriented `(demoted, promoted)`, sorted by that pair.
pub fn ranking_flips(a: &ScenarioRanking, b: &ScenarioRanking) -> Vec<RankingFlip> {
    let shared: Vec<&str> = a.entries.iter().map(|e| e.method.as_str()).filter(|m| b.rank_of(m).is_some()).collect();
    let mut flips = Vec::new();
    for &x in &shared {
        for &y in &shared {
            let (ax, ay) = (a.rank_of(x).expect("shared"), a.rank_of(y).expect("shared"));
            let (bx, by) = (b.rank_of(x).expect("shared"), b.rank_of(y).expect("shared"));
            if ax < ay && bx > by {
                flips.push(RankingFlip { demoted: x.to_string(), promoted: y.to_string() });
            }
        }
    }
    flips.sort_by(|p, q| (&p.demoted, &p.promoted).cmp(&(&q.demoted, &q.promoted)));
    flips
}

/// One quality regression of a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRegression {
    /// Scenario of the regressed row.
    pub scenario: String,
    /// Method of the regressed row.
    pub method: String,
    /// Baseline metric value.
    pub baseline: f64,
    /// Current metric value; `None` when the row vanished from the current
    /// report (a lost protection, counted as a regression like the perf
    /// gate counts missing cases).
    pub current: Option<f64>,
}

/// Every baseline quality row whose `metric` dropped by more than
/// `max_drop` (absolute) in the current rows, or that vanished entirely.
/// The quality counterpart of the perf gate's regression factor: quality
/// metrics live in `[0, 1]`, so the gate is an absolute drop, not a ratio.
pub fn quality_regressions(
    baseline: &[QualityCase],
    current: &[QualityCase],
    metric: &str,
    max_drop: f64,
) -> Vec<QualityRegression> {
    let mut regressions = Vec::new();
    for base in baseline {
        if base.method == SCENARIO_CASE {
            continue;
        }
        let Some(base_value) = base.metric(metric) else { continue };
        let current_value = current
            .iter()
            .find(|c| c.scenario == base.scenario && c.method == base.method)
            .and_then(|c| c.metric(metric));
        let regressed = match current_value {
            None => true,
            Some(v) => base_value - v > max_drop,
        };
        if regressed {
            regressions.push(QualityRegression {
                scenario: base.scenario.clone(),
                method: base.method.clone(),
                baseline: base_value,
                current: current_value,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(scenario: &str, method: &str, headline: f64) -> QualityCase {
        QualityCase {
            scenario: scenario.to_string(),
            method: method.to_string(),
            metrics: vec![("headline".to_string(), headline)],
        }
    }

    #[test]
    fn ranks_descending_with_shared_ranks_for_ties() {
        let cases =
            vec![case("s", "low", 0.5), case("s", "tie-b", 0.8), case("s", "tie-a", 0.8), case("s", "top", 0.9)];
        let rankings = rank_scenarios(&cases, "headline");
        assert_eq!(rankings.len(), 1);
        let methods: Vec<&str> = rankings[0].entries.iter().map(|e| e.method.as_str()).collect();
        assert_eq!(methods, vec!["top", "tie-a", "tie-b", "low"]);
        let ranks: Vec<usize> = rankings[0].entries.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![1, 2, 2, 4], "competition ranking: ties share, next rank skips");
    }

    #[test]
    fn scenario_sentinel_and_missing_metrics_are_skipped() {
        let mut cases = vec![case("s", "m", 0.5), case("s", SCENARIO_CASE, 0.9)];
        cases.push(QualityCase {
            scenario: "s".to_string(),
            method: "other-metric".to_string(),
            metrics: vec![("pred_f1".to_string(), 1.0)],
        });
        let rankings = rank_scenarios(&cases, "headline");
        assert_eq!(rankings[0].entries.len(), 1);
        assert_eq!(rankings[0].entries[0].method, "m");
    }

    #[test]
    fn duplicate_rows_keep_the_first_occurrence() {
        let cases = vec![case("s", "m", 0.5), case("s", "m", 0.9)];
        let rankings = rank_scenarios(&cases, "headline");
        assert_eq!(rankings[0].entries.len(), 1);
        assert_eq!(rankings[0].entries[0].value, 0.5);
    }

    #[test]
    fn flips_are_strict_reversals_only() {
        let a = rank_scenarios(&[case("a", "x", 0.9), case("a", "y", 0.5), case("a", "z", 0.7)], "headline");
        let b = rank_scenarios(&[case("b", "x", 0.4), case("b", "y", 0.8), case("b", "z", 0.4)], "headline");
        let flips = ranking_flips(&a[0], &b[0]);
        // x>y -> x<y and z>y -> z<y flip; x>z -> x==z (tie) is NOT a flip
        assert_eq!(
            flips,
            vec![
                RankingFlip { demoted: "x".to_string(), promoted: "y".to_string() },
                RankingFlip { demoted: "z".to_string(), promoted: "y".to_string() },
            ]
        );
        assert!(ranking_flips(&a[0], &a[0]).is_empty(), "a ranking never flips against itself");
    }

    #[test]
    fn flips_ignore_methods_missing_from_one_side() {
        let a = rank_scenarios(&[case("a", "x", 0.9), case("a", "y", 0.5)], "headline");
        let b = rank_scenarios(&[case("b", "y", 0.8)], "headline");
        assert!(ranking_flips(&a[0], &b[0]).is_empty());
    }

    #[test]
    fn regressions_catch_drops_and_vanished_rows() {
        let baseline = vec![case("s", "ok", 0.8), case("s", "dropped", 0.8), case("s", "gone", 0.8)];
        let current = vec![case("s", "ok", 0.78), case("s", "dropped", 0.6)];
        let regressions = quality_regressions(&baseline, &current, "headline", 0.05);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].method, "dropped");
        assert_eq!(regressions[0].current, Some(0.6));
        assert_eq!(regressions[1].method, "gone");
        assert_eq!(regressions[1].current, None);
        assert!(quality_regressions(&baseline, &baseline, "headline", 0.0).is_empty());
    }
}
