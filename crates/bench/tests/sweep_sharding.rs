//! Sharded-sweep determinism: the scenario sweep must produce **bitwise
//! identical** quality tables no matter how it is split — serially, across
//! worker threads, or across `LNCL_SHARD` processes recombined with the
//! `bench_diff merge` quality logic.  Also covers the headline ranking
//! claim: the method ranking flips between the clean and the
//! spammer-heavy standard mixes on a real (aggregation-only) sweep.
//!
//! The method set is restricted to the training-free truth-inference
//! baselines so the test runs in seconds; the determinism property itself
//! is method-agnostic (every registry method is bitwise seed-deterministic,
//! which the robustness suite asserts separately).

use lncl_bench::quality::{record_scenario_outcome, HEADLINE_METRIC};
use lncl_bench::rank::{rank_scenarios, ranking_flips};
use lncl_bench::timing::{BenchReport, QualityCase};
use lncl_bench::{shard_configs, sweep_scenarios, Scale, ScenarioOutcome};
use lncl_crowd::scenario::{standard_mixes, Archetype, DriftSchedule, PropensityProfile, ScenarioConfig, ScenarioGrid};
use lncl_crowd::TaskKind;

const METHODS: &[&str] = &["mv", "dawid-skene", "ibcc"];

/// A small grid over both tasks and three archetype mixes.
fn test_grid() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        let mut grid = ScenarioGrid::new(ScenarioConfig::tiny(task).with_seed(41));
        grid.mixes = standard_mixes()
            .into_iter()
            .filter(|(name, _)| matches!(*name, "clean" | "spammer-third" | "anarchy"))
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        configs.extend(grid.configs());
    }
    configs
}

/// Builds the quality table a `scenario_sweep` run would write for a set
/// of outcomes (recorded, then canonically sorted).
fn quality_table(outcomes: &[ScenarioOutcome]) -> Vec<QualityCase> {
    let mut report = BenchReport::new("test");
    for outcome in outcomes {
        record_scenario_outcome(&mut report, outcome);
    }
    report.sort_quality();
    report.quality
}

/// Exact bit-level comparison of two quality tables.
fn assert_bitwise_equal(a: &[QualityCase], b: &[QualityCase], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((&x.scenario, &x.method), (&y.scenario, &y.method), "{what}: row keys differ");
        assert_eq!(x.metrics.len(), y.metrics.len(), "{what}: {}/{} metric arity differs", x.scenario, x.method);
        for ((kx, vx), (ky, vy)) in x.metrics.iter().zip(&y.metrics) {
            assert_eq!(kx, ky, "{what}: metric keys differ in {}/{}", x.scenario, x.method);
            assert_eq!(
                vx.to_bits(),
                vy.to_bits(),
                "{what}: {}/{} metric {kx} differs: {vx} vs {vy}",
                x.scenario,
                x.method
            );
        }
    }
}

#[test]
fn thread_sharded_sweep_is_bitwise_identical_to_serial() {
    let configs = test_grid();
    let serial = sweep_scenarios(&configs, Scale::Small, Some(METHODS), 1);
    let threaded = sweep_scenarios(&configs, Scale::Small, Some(METHODS), 4);
    assert_eq!(serial.len(), configs.len());
    assert_bitwise_equal(&quality_table(&serial), &quality_table(&threaded), "threads vs serial");
    // the result rows themselves are identical too, not just the tables
    for (s, t) in serial.iter().zip(&threaded) {
        assert_eq!(s.name, t.name);
        assert_eq!(s.rows.len(), t.rows.len());
        for (rs, rt) in s.rows.iter().zip(&t.rows) {
            assert_eq!(rs.method, rt.method);
            assert_eq!(rs.prediction.accuracy.to_bits(), rt.prediction.accuracy.to_bits());
        }
        assert_eq!(s.reliability_pearson.to_bits(), t.reliability_pearson.to_bits());
    }
}

#[test]
fn process_sharded_sweep_merges_back_to_the_serial_table() {
    let configs = test_grid();
    let serial = quality_table(&sweep_scenarios(&configs, Scale::Small, Some(METHODS), 1));

    // simulate LNCL_SHARD=0/2 and 1/2: each process sweeps its strided
    // subset, writes a JSON report, and `bench_diff merge` recombines the
    // parsed quality rows in canonical order
    let mut merged: Vec<QualityCase> = Vec::new();
    let mut shard_sizes = Vec::new();
    for index in 0..2 {
        let shard = shard_configs(&configs, index, 2);
        shard_sizes.push(shard.len());
        let outcomes = sweep_scenarios(&shard, Scale::Small, Some(METHODS), 2);
        let mut report = BenchReport::new(format!("scenario_sweep_shard{index}of2"));
        for outcome in &outcomes {
            record_scenario_outcome(&mut report, outcome);
        }
        report.sort_quality();
        // full serialise -> parse cycle, exactly what separate processes do
        let reparsed = BenchReport::from_json(&report.to_json()).expect("shard report round-trips");
        merged.extend(reparsed.quality);
    }
    merged.sort_by(|x, y| (&x.scenario, &x.method).cmp(&(&y.scenario, &y.method)));

    assert_eq!(shard_sizes.iter().sum::<usize>(), configs.len(), "shards partition the grid");
    assert!(shard_sizes.iter().all(|&n| n > 0), "strided sharding loads every shard");
    assert_bitwise_equal(&serial, &merged, "process shards + merge vs serial");
}

#[test]
fn ranking_flips_between_clean_and_spammer_heavy_mixes() {
    // a larger classification scenario so aggregation quality differences
    // are real, not sampling noise: clean pool vs the spammer-third
    // standard mix over the same gold corpus (same seed/sizes)
    let mixes = standard_mixes();
    let base = ScenarioConfig::classification("flips")
        .with_sizes(400, 20, 20)
        .with_annotators(12)
        .with_redundancy(3, 5)
        .with_seed(13);
    let clean = base.clone().named("sent/clean").with_mix(mixes.iter().find(|(n, _)| *n == "clean").unwrap().1.clone());
    let spam =
        base.named("sent/spammer-third").with_mix(mixes.iter().find(|(n, _)| *n == "spammer-third").unwrap().1.clone());
    let methods = ["mv", "dawid-skene", "glad", "ibcc", "pm", "catd"];
    let outcomes = sweep_scenarios(&[clean, spam], Scale::Small, Some(&methods), 2);
    let quality = quality_table(&outcomes);
    let rankings = rank_scenarios(&quality, HEADLINE_METRIC);
    assert_eq!(rankings.len(), 2);
    let clean_ranking = rankings.iter().find(|r| r.scenario == "sent/clean").unwrap();
    let spam_ranking = rankings.iter().find(|r| r.scenario == "sent/spammer-third").unwrap();
    assert_eq!(clean_ranking.entries.len(), methods.len());

    let flips = ranking_flips(clean_ranking, spam_ranking);
    assert!(
        !flips.is_empty(),
        "diluting a third of the pool with spammers must flip at least one method pair:\nclean: {:?}\nspam: {:?}",
        clean_ranking.entries,
        spam_ranking.entries
    );
    let labels: Vec<&str> = clean_ranking.entries.iter().map(|e| e.method.as_str()).collect();
    assert!(
        flips.iter().all(|f| labels.contains(&f.demoted.as_str()) && labels.contains(&f.promoted.as_str())),
        "flips must reference ranked methods: {flips:?}"
    );
    // majority voting has no way to discount spammers, so it can only lose
    // ground relative to the confusion-aware aggregators
    let mv_clean = clean_ranking.rank_of("MV").expect("MV ranked on the clean pool");
    let mv_spam = spam_ranking.rank_of("MV").expect("MV ranked under spam");
    assert!(mv_spam >= mv_clean, "MV must not gain rank under spam: clean #{mv_clean}, spam #{mv_spam}");
}

#[test]
fn drift_flips_the_ranking_towards_the_windowed_estimator() {
    // the same long-tailed crowd twice: once static, once with a
    // mid-stream step change to near-spam.  Static confusion matrices
    // (dawid-skene) average the two regimes away; the windowed estimator
    // (ds-windowed) tracks them.  The headline ranking must therefore flip
    // strictly between the two variants of the *same* scenario — the
    // drift-induced ranking flip the temporal axes exist to measure.
    // (Config chosen so the flip is robust: at accuracy 0.75 / 800
    // instances it holds on every probed seed, with DS-W paying a visible
    // variance tax on the static variant and gaining 1.5-4 accuracy points
    // on the drifted one.)
    let base = ScenarioConfig::classification("drift-flip")
        .with_sizes(800, 10, 10)
        .with_annotators(8)
        .with_redundancy(5, 5)
        .with_propensity(PropensityProfile::LongTail)
        .with_mix(vec![(Archetype::Reliable { accuracy: 0.75 }, 1.0)])
        .with_seed(17);
    let static_variant = base.clone().named("sent/clean/static");
    let drifted = base.named("sent/clean/step0.95").with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.95 });
    let methods = ["mv", "dawid-skene", "ds-windowed", "ibcc"];
    let outcomes = sweep_scenarios(&[static_variant, drifted], Scale::Small, Some(&methods), 2);
    let quality = quality_table(&outcomes);
    let rankings = rank_scenarios(&quality, HEADLINE_METRIC);
    let static_ranking = rankings.iter().find(|r| r.scenario == "sent/clean/static").unwrap();
    let drift_ranking = rankings.iter().find(|r| r.scenario == "sent/clean/step0.95").unwrap();

    // on the static crowd the pooled estimator wins (the windowed one pays
    // a variance tax); under drift the order strictly inverts
    let ds_static = static_ranking.rank_of("DS").expect("DS ranked on the static variant");
    let dsw_static = static_ranking.rank_of("DS-W").expect("DS-W ranked on the static variant");
    let ds_drift = drift_ranking.rank_of("DS").expect("DS ranked on the drifted variant");
    let dsw_drift = drift_ranking.rank_of("DS-W").expect("DS-W ranked on the drifted variant");
    assert!(dsw_static > ds_static, "static: pooled DS must outrank DS-W (DS #{ds_static}, DS-W #{dsw_static})");
    assert!(dsw_drift < ds_drift, "drifted: DS-W must outrank pooled DS (DS #{ds_drift}, DS-W #{dsw_drift})");
    // and `bench_diff rank`'s flip detection reports exactly that inversion
    let flips = ranking_flips(static_ranking, drift_ranking);
    assert!(
        flips.iter().any(|f| f.promoted == "DS-W" && f.demoted == "DS"),
        "the DS/DS-W pair must appear as a strict flip: {flips:?}"
    );
}
