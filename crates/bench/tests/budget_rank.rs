//! Integration test for the budget-curve → rank pipeline: sweeping the
//! drifted family that `budget_curves` ships must produce the headline
//! ranking flip — static redundancy ahead of uncertainty routing at a 60%
//! budget, strictly behind it at full budget — via the same
//! `rank_scenarios` / `filter_by_budget` / `ranking_flips` path the
//! `bench_diff rank --budget` CLI takes.

use lncl_bench::budget::{filter_by_budget, record_budget_curve, sweep_budget_curves};
use lncl_bench::quality::HEADLINE_METRIC;
use lncl_bench::rank::{rank_scenarios, ranking_flips, RankingFlip};
use lncl_bench::timing::BenchReport;
use lncl_crowd::scenario::{Archetype, DriftSchedule, PropensityProfile, ScenarioConfig};

/// The `sent/drift` family of the `budget_curves` binary, verbatim.
fn drift_config() -> ScenarioConfig {
    ScenarioConfig::classification("sent/drift")
        .with_sizes(120, 20, 20)
        .with_annotators(10)
        .with_redundancy(4, 4)
        .with_propensity(PropensityProfile::Uniform)
        .with_mix(vec![(Archetype::Reliable { accuracy: 0.85 }, 0.7), (Archetype::Spammer, 0.3)])
        .with_drift(DriftSchedule::LinearFatigue { rate: 0.6 })
        .with_seed(307)
}

#[test]
fn drift_family_flips_static_vs_uncertainty_between_budget_levels() {
    let mut report = BenchReport::new("budget_rank_test");
    for curve in sweep_budget_curves(&drift_config()) {
        record_budget_curve(&mut report, &curve);
    }

    let rank_at = |fraction: f64| {
        let rows = filter_by_budget(&report.quality, fraction);
        let rankings = rank_scenarios(&rows, HEADLINE_METRIC);
        assert_eq!(rankings.len(), 1, "one family swept → one scenario at b{fraction:.2}");
        rankings.into_iter().next().unwrap()
    };
    let at_sixty = rank_at(0.6);
    let at_full = rank_at(1.0);

    // the flip the acceptance criterion names: static redundancy wins the
    // cheap regime, uncertainty routing overtakes it at full budget (where
    // static's fatigued late labels drag it down)
    assert_eq!(at_sixty.rank_of("static-redundancy"), Some(1), "{at_sixty:?}");
    let flips = ranking_flips(&at_sixty, &at_full);
    let expected =
        RankingFlip { demoted: "static-redundancy".to_string(), promoted: "uncertainty-routing".to_string() };
    assert!(flips.contains(&expected), "expected static→uncertainty flip, got {flips:?}");
}
