//! Golden-fixture tests for the `bench_diff rank` machinery: checked-in
//! `BENCH_*.json` shard reports (the exact schema `scenario_sweep` writes)
//! exercised through parsing, ranking, tie handling, flip detection and
//! the merge-then-rank equivalence the sharded CI workflow relies on.

use lncl_bench::rank::{quality_regressions, rank_scenarios, ranking_flips, RankingFlip};
use lncl_bench::timing::{BenchReport, QualityCase, SCENARIO_CASE};

const SHARD_A: &str = include_str!("fixtures/rank_shard_a.json");
const SHARD_B: &str = include_str!("fixtures/rank_shard_b.json");

fn load_fixtures() -> (BenchReport, BenchReport) {
    let a = BenchReport::from_json(SHARD_A).expect("shard A fixture parses");
    let b = BenchReport::from_json(SHARD_B).expect("shard B fixture parses");
    (a, b)
}

/// The quality merge `bench_diff merge` performs: concatenate, then sort
/// into the canonical `(scenario, method)` order.
fn merge_quality(reports: &[&BenchReport]) -> Vec<QualityCase> {
    let mut merged: Vec<QualityCase> = reports.iter().flat_map(|r| r.quality.iter().cloned()).collect();
    merged.sort_by(|x, y| (&x.scenario, &x.method).cmp(&(&y.scenario, &y.method)));
    merged
}

#[test]
fn fixtures_parse_with_quality_tables() {
    let (a, b) = load_fixtures();
    assert_eq!(a.quality.len(), 7);
    assert_eq!(b.quality.len(), 5);
    assert!(a.quality.iter().any(|q| q.method == SCENARIO_CASE && q.metric("reliability_pearson") == Some(0.91)));
}

#[test]
fn ranking_orders_methods_and_shares_tied_ranks() {
    let (a, _) = load_fixtures();
    let rankings = rank_scenarios(&a.quality, "headline");
    // scenarios in name order; the __scenario__ sentinel never ranks
    assert_eq!(rankings.len(), 2);
    assert_eq!(rankings[0].scenario, "ner/clean");
    assert_eq!(rankings[1].scenario, "sent/clean");
    let sent = &rankings[1];
    let order: Vec<(&str, usize)> = sent.entries.iter().map(|e| (e.method.as_str(), e.rank)).collect();
    // DS and MV tie at 0.97 -> both rank 1 (alphabetical display order),
    // IBCC takes rank 3 (competition ranking), CATD rank 4
    assert_eq!(order, vec![("DS", 1), ("MV", 1), ("IBCC", 3), ("CATD", 4)]);
}

#[test]
fn flips_between_clean_and_spam_scenarios() {
    let (a, b) = load_fixtures();
    let merged = merge_quality(&[&a, &b]);
    let rankings = rank_scenarios(&merged, "headline");
    let clean = rankings.iter().find(|r| r.scenario == "sent/clean").expect("clean ranked");
    let spam = rankings.iter().find(|r| r.scenario == "sent/spam").expect("spam ranked");
    let flips = ranking_flips(clean, spam);
    // IBCC overtakes both DS and MV under spam; the DS/MV pair is tied on
    // the clean pool, so it is not a flip
    assert_eq!(
        flips,
        vec![
            RankingFlip { demoted: "DS".to_string(), promoted: "IBCC".to_string() },
            RankingFlip { demoted: "MV".to_string(), promoted: "IBCC".to_string() },
        ]
    );
}

#[test]
fn merge_then_rank_equals_rank_over_individual_reports() {
    let (a, b) = load_fixtures();
    // simulate the full process-shard path: merge the two shard reports the
    // way bench_diff does, write + reparse, then rank
    let mut merged_report = BenchReport::new("merged");
    merged_report.quality = merge_quality(&[&a, &b]);
    let reparsed = BenchReport::from_json(&merged_report.to_json()).expect("merged report round-trips");
    let merged_rankings = rank_scenarios(&reparsed.quality, "headline");
    // ranking the concatenated per-shard quality rows directly must agree
    let concatenated: Vec<QualityCase> = a.quality.iter().chain(&b.quality).cloned().collect();
    let direct_rankings = rank_scenarios(&concatenated, "headline");
    assert_eq!(merged_rankings, direct_rankings);
    assert_eq!(merged_rankings.len(), 3);
}

#[test]
fn quality_gate_flags_drops_against_a_baseline_fixture() {
    let (a, _) = load_fixtures();
    let mut current = a.quality.clone();
    // degrade DS on sent/clean below the gate and drop CATD entirely
    for case in &mut current {
        if case.scenario == "sent/clean" && case.method == "DS" {
            case.metrics = vec![("headline".to_string(), 0.80)];
        }
    }
    current.retain(|c| !(c.scenario == "sent/clean" && c.method == "CATD"));
    let regressions = quality_regressions(&a.quality, &current, "headline", 0.05);
    let keys: Vec<(&str, &str)> = regressions.iter().map(|r| (r.scenario.as_str(), r.method.as_str())).collect();
    assert_eq!(keys, vec![("sent/clean", "CATD"), ("sent/clean", "DS")]);
    // within the gate: nothing fires
    assert!(quality_regressions(&a.quality, &a.quality, "headline", 0.0).is_empty());
}
