//! Coverage for [`Scale`] parsing and the scale grid: `LNCL_SCALE`
//! round-trips, huge-tier knobs, and the cross-scale determinism the
//! scale-predictivity study rests on (one config at two scales → distinct
//! corpora; each scale individually bitwise reproducible).

use lncl_bench::experiments::scenario_sweep_configs;
use lncl_bench::predictivity::normalized_scenario_name;
use lncl_bench::scale::Scale;
use lncl_crowd::scenario::generate_scenario;
use lncl_crowd::TaskKind;

#[test]
fn parse_and_name_round_trip_every_tier() {
    for scale in Scale::ALL {
        assert_eq!(Scale::parse(scale.name()), Some(scale), "{}", scale.name());
        // parsing is case- and whitespace-tolerant
        assert_eq!(Scale::parse(&format!("  {}  ", scale.name().to_uppercase())), Some(scale));
    }
    for raw in ["", "gigantic", "smal", "paper-scale", "0"] {
        assert_eq!(Scale::parse(raw), None, "{raw:?} must not parse");
    }
}

#[test]
fn lncl_scale_env_round_trips_and_bad_values_default() {
    // one test owns the variable: the process environment is global and
    // the harness runs tests concurrently
    for scale in Scale::ALL {
        std::env::set_var("LNCL_SCALE", scale.name());
        assert_eq!(Scale::from_env(), scale);
    }
    std::env::set_var("LNCL_SCALE", "enormous");
    assert_eq!(Scale::from_env(), Scale::Small, "invalid value falls back to the default");
    std::env::remove_var("LNCL_SCALE");
    assert_eq!(Scale::from_env(), Scale::Small, "unset is the silent default");
}

#[test]
fn tiers_are_ordered_by_size() {
    let train = |scale: Scale, task| scale.scenario_base(task, 29).train_size;
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        for pair in Scale::ALL.windows(2) {
            assert!(
                train(pair[0], task) < train(pair[1], task),
                "{} must be smaller than {} for {task:?}",
                pair[0].name(),
                pair[1].name()
            );
        }
    }
    for pair in Scale::ALL.windows(2) {
        assert!(pair[0].default_epochs() <= pair[1].default_epochs());
    }
}

#[test]
fn huge_tier_knobs_are_production_scale() {
    // the documented ≥10x-paper contract of the streaming tier
    let huge_class = Scale::Huge.scenario_base(TaskKind::Classification, 29);
    let paper_class = Scale::Paper.scenario_base(TaskKind::Classification, 29);
    assert_eq!(huge_class.train_size, 50_000);
    assert!(huge_class.train_size >= 10 * paper_class.train_size);
    let huge_tag = Scale::Huge.scenario_base(TaskKind::SequenceTagging, 29);
    let paper_tag = Scale::Paper.scenario_base(TaskKind::SequenceTagging, 29);
    assert_eq!(huge_tag.train_size, 12_000);
    assert!(huge_tag.train_size >= 10 * paper_tag.train_size);
    assert_eq!(Scale::Huge.default_epochs(), 30);
    assert_eq!(Scale::Huge.repetitions(), 1, "huge runs are too expensive to repeat");
}

#[test]
fn sweep_grid_names_align_across_scales_once_pool_size_is_normalized() {
    // grid names embed the scale's annotator count (`…/j8/…` at tiny,
    // `…/j60/…` at paper), so the predictivity join matches cells by the
    // `j*`-normalized name; after normalization the two grids must be the
    // same list of distinct cells
    let names = |scale: Scale| -> Vec<String> {
        scenario_sweep_configs(scale, 29).iter().map(|c| normalized_scenario_name(&c.name)).collect()
    };
    let tiny = names(Scale::Tiny);
    let paper = names(Scale::Paper);
    assert_eq!(tiny, paper, "normalized grid cells must line up across scales");
    let distinct: std::collections::BTreeSet<&String> = tiny.iter().collect();
    assert_eq!(distinct.len(), tiny.len(), "normalization must not alias two grid cells");
}

#[test]
fn same_cell_at_two_scales_has_distinct_hash_and_corpus() {
    let tiny = Scale::Tiny.scenario_base(TaskKind::Classification, 29);
    let paper = Scale::Paper.scenario_base(TaskKind::Classification, 29);
    assert_ne!(tiny.content_hash(), paper.content_hash(), "scales must never alias in a ScenarioCache");
    let tiny_data = generate_scenario(&tiny);
    let paper_data = generate_scenario(&paper);
    assert_ne!(tiny_data.train.len(), paper_data.train.len());
}

#[test]
fn each_scale_is_bitwise_reproducible() {
    for scale in [Scale::Tiny, Scale::Small] {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            let config = scale.scenario_base(task, 41);
            let (a, b) = (generate_scenario(&config), generate_scenario(&config));
            assert_eq!(a.train, b.train, "{} {task:?} train split must regenerate bitwise", scale.name());
            assert_eq!(a.dev, b.dev);
            assert_eq!(a.test, b.test);
        }
    }
}
