//! Micro-benchmarks of the truth-inference baselines on growing synthetic
//! label matrices; writes `BENCH_truth_inference.json`.
use lncl_bench::timing::BenchReport;
use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::truth::*;

fn main() {
    println!("truth_inference");
    let mut report = BenchReport::new("truth_inference");
    for &size in &[200usize, 600] {
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: size,
            dev_size: 10,
            test_size: 10,
            num_annotators: 30,
            ..SentimentDatasetConfig::default()
        });
        let view = dataset.annotation_view();
        report.bench(&format!("mv/{size}"), || MajorityVote.infer(&view));
        report
            .bench(&format!("dawid_skene/{size}"), || DawidSkene { max_iters: 20, ..Default::default() }.infer(&view));
        report.bench(&format!("glad/{size}"), || Glad { max_iters: 10, ..Default::default() }.infer(&view));
        report.bench(&format!("pm/{size}"), || Pm::default().infer(&view));
        report.bench(&format!("catd/{size}"), || Catd::default().infer(&view));
    }
    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
