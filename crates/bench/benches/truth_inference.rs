//! Micro-benchmarks of the truth-inference baselines on growing synthetic
//! label matrices (plain timing harness; see `lncl_bench::timing`).
use lncl_bench::timing::bench;
use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::truth::*;

fn main() {
    println!("truth_inference");
    for &size in &[200usize, 600] {
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: size,
            dev_size: 10,
            test_size: 10,
            num_annotators: 30,
            ..SentimentDatasetConfig::default()
        });
        let view = dataset.annotation_view();
        bench(&format!("mv/{size}"), || MajorityVote.infer(&view));
        bench(&format!("dawid_skene/{size}"), || DawidSkene { max_iters: 20, ..Default::default() }.infer(&view));
        bench(&format!("glad/{size}"), || Glad { max_iters: 10, ..Default::default() }.infer(&view));
        bench(&format!("pm/{size}"), || Pm::default().infer(&view));
        bench(&format!("catd/{size}"), || Catd::default().infer(&view));
    }
}
