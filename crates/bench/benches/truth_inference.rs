//! Criterion micro-benchmarks of the truth-inference baselines on growing
//! synthetic label matrices.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::truth::*;

fn bench_truth_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_inference");
    for &size in &[200usize, 600] {
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: size,
            dev_size: 10,
            test_size: 10,
            num_annotators: 30,
            ..SentimentDatasetConfig::default()
        });
        let view = dataset.annotation_view();
        group.bench_with_input(BenchmarkId::new("mv", size), &view, |b, v| b.iter(|| MajorityVote.infer(v)));
        group.bench_with_input(BenchmarkId::new("dawid_skene", size), &view, |b, v| {
            b.iter(|| DawidSkene { max_iters: 20, ..Default::default() }.infer(v))
        });
        group.bench_with_input(BenchmarkId::new("glad", size), &view, |b, v| {
            b.iter(|| Glad { max_iters: 10, ..Default::default() }.infer(v))
        });
        group.bench_with_input(BenchmarkId::new("pm", size), &view, |b, v| b.iter(|| Pm::default().infer(v)));
        group.bench_with_input(BenchmarkId::new("catd", size), &view, |b, v| b.iter(|| Catd::default().infer(v)));
    }
    group.finish();
}

criterion_group!(benches, bench_truth_inference);
criterion_main!(benches);
