//! Micro-benchmarks of the Logic-LNCL pseudo-E-step components — the q_a
//! posterior (Eq. 13) and the annotator update (Eq. 12), both through the
//! flat batched APIs the trainer uses; writes `BENCH_em_steps.json`.
use lncl_bench::timing::BenchReport;
use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_tensor::stats;
use logic_lncl::annotators::AnnotatorModel;
use logic_lncl::posterior::infer_qa_split;

fn main() {
    println!("em_steps");
    let mut report = BenchReport::new("em_steps");
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 500,
        dev_size: 10,
        test_size: 10,
        num_annotators: 40,
        ..SentimentDatasetConfig::default()
    });
    let annotators = AnnotatorModel::new(dataset.num_annotators, dataset.num_classes, 0.7);
    let predictions: Vec<lncl_tensor::Matrix> =
        dataset.train.iter().map(|_| lncl_tensor::Matrix::row_vector(&[0.45, 0.55])).collect();

    report.bench("eq13_posterior_full_train_split", || infer_qa_split(&dataset.train, &predictions, &annotators));

    let qf = infer_qa_split(&dataset.train, &predictions, &annotators);
    report.bench("eq12_annotator_update", || {
        let mut model = AnnotatorModel::new(dataset.num_annotators, dataset.num_classes, 0.7);
        model.update_from_qf(&dataset, &qf, 0.01);
        stats::argmax(&model.reliabilities())
    });

    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
