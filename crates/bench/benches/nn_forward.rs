//! Micro-benchmarks of the two classifier architectures
//! (forward pass and forward+backward); writes `BENCH_nn_forward.json`.
use lncl_autograd::Tape;
use lncl_bench::timing::BenchReport;
use lncl_nn::models::{InstanceClassifier, NerConvGru, NerConvGruConfig, SentimentCnn, SentimentCnnConfig};
use lncl_nn::{Binding, Module};
use lncl_tensor::{Matrix, TensorRng};

fn main() {
    println!("nn_forward");
    let mut report = BenchReport::new("nn_forward");
    let mut rng = TensorRng::seed_from_u64(0);
    let cnn = SentimentCnn::new(SentimentCnnConfig { vocab_size: 500, ..Default::default() }, &mut rng);
    let tokens: Vec<usize> = (1..18).collect();
    report.bench("sentiment_cnn_forward", || cnn.predict_proba(&tokens));
    report.bench("sentiment_cnn_forward_backward", || {
        let mut model = cnn.clone();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut drng = TensorRng::seed_from_u64(1);
        let logits = model.forward_logits(&mut tape, &mut binding, &tokens, true, &mut drng);
        let loss = tape.softmax_cross_entropy(logits, Matrix::row_vector(&[0.3, 0.7]));
        tape.backward(loss);
        binding.accumulate(&tape, model.params_mut());
        model.grad_norm()
    });

    let ner = NerConvGru::new(NerConvGruConfig { vocab_size: 500, ..Default::default() }, &mut rng);
    let sentence: Vec<usize> = (1..15).collect();
    report.bench("ner_conv_gru_forward", || ner.predict_proba(&sentence));

    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
