//! Criterion micro-benchmarks of the posterior-regularisation projection
//! (Eq. 15): the classification closed form and the sequence DP.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lncl_logic::rules::ner_transition::ner_transition_rules;
use lncl_logic::{project_distribution, project_sequence};
use lncl_tensor::TensorRng;

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_projection");
    let mut rng = TensorRng::seed_from_u64(0);
    let qa: Vec<f32> = {
        let v = rng.dirichlet(2, 1.0);
        v
    };
    group.bench_function("closed_form_binary", |b| {
        b.iter(|| project_distribution(&qa, &[0.7, 0.1], 5.0));
    });
    let rules = ner_transition_rules(0.8, 0.2);
    for &len in &[10usize, 30, 60] {
        let seq: Vec<Vec<f32>> = (0..len).map(|_| rng.dirichlet(9, 1.0)).collect();
        group.bench_with_input(BenchmarkId::new("sequence_dp", len), &seq, |b, s| {
            b.iter(|| project_sequence(s, &rules, 5.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
