//! Micro-benchmarks of the posterior-regularisation projection (Eq. 15):
//! the classification closed form and the sequence DP; writes
//! `BENCH_logic_projection.json`.
use lncl_bench::timing::BenchReport;
use lncl_logic::rules::ner_transition::ner_transition_rules;
use lncl_logic::{project_distribution, project_sequence};
use lncl_tensor::TensorRng;

fn main() {
    println!("logic_projection");
    let mut report = BenchReport::new("logic_projection");
    let mut rng = TensorRng::seed_from_u64(0);
    let qa: Vec<f32> = rng.dirichlet(2, 1.0);
    report.bench("closed_form_binary", || project_distribution(&qa, &[0.7, 0.1], 5.0));
    let rules = ner_transition_rules(0.8, 0.2);
    for &len in &[10usize, 30, 60] {
        let seq: Vec<Vec<f32>> = (0..len).map(|_| rng.dirichlet(9, 1.0)).collect();
        report.bench(&format!("sequence_dp/{len}"), || project_sequence(&seq, &rules, 5.0));
    }
    let path = report.write().expect("write benchmark report");
    println!("wrote {}", path.display());
}
