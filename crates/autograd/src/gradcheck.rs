//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and of `lncl-nn` to verify that
//! every hand-written backward rule matches the numerical derivative of the
//! forward computation.

use crate::{Tape, Var};
use lncl_tensor::Matrix;

/// Result of a gradient check for a single input matrix.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Maximum relative difference (|a - n| / max(1, |a|, |n|)).
    pub max_rel_diff: f32,
}

impl GradCheckReport {
    /// True when both the absolute and relative differences are within
    /// `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_diff <= tol || self.max_rel_diff <= tol
    }
}

/// Checks the gradient of `f` with respect to each input in `inputs`.
///
/// `f` receives a fresh tape plus the leaf handles of all inputs (in order)
/// and must return a scalar (1x1) node.  The analytic gradient from
/// [`Tape::backward`] is compared against central finite differences with
/// step `epsilon`.
///
/// Returns one [`GradCheckReport`] per input.
pub fn check_gradients<F>(inputs: &[Matrix], epsilon: f32, f: F) -> Vec<GradCheckReport>
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    // Analytic gradients.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&mut tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Matrix> = vars.iter().map(|&v| tape.grad(v).clone()).collect();

    let eval = |perturbed: &[Matrix]| -> f32 {
        let mut t = Tape::new();
        let vs: Vec<Var> = perturbed.iter().map(|m| t.leaf(m.clone())).collect();
        let l = f(&mut t, &vs);
        t.scalar(l)
    };

    let mut reports = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus: Vec<Matrix> = inputs.to_vec();
                plus[i][(r, c)] += epsilon;
                let mut minus: Vec<Matrix> = inputs.to_vec();
                minus[i][(r, c)] -= epsilon;
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * epsilon);
                let a = analytic[i][(r, c)];
                let abs = (a - numeric).abs();
                let rel = abs / a.abs().max(numeric.abs()).max(1.0);
                max_abs = max_abs.max(abs);
                max_rel = max_rel.max(rel);
            }
        }
        reports.push(GradCheckReport { max_abs_diff: max_abs, max_rel_diff: max_rel });
    }
    reports
}

/// Asserts that every gradient check passes with tolerance `tol`.
///
/// # Panics
/// Panics (with the offending report) if any input fails the check.
pub fn assert_gradients_close<F>(inputs: &[Matrix], epsilon: f32, tol: f32, f: F)
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    let reports = check_gradients(inputs, epsilon, f);
    for (i, report) in reports.iter().enumerate() {
        assert!(report.passes(tol), "gradient check failed for input {i}: {report:?} (tol {tol})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_tensor::TensorRng;

    #[test]
    fn matmul_chain_passes_gradcheck() {
        let mut rng = TensorRng::seed_from_u64(1);
        let a = rng.normal_matrix(3, 4, 0.5);
        let b = rng.normal_matrix(4, 2, 0.5);
        assert_gradients_close(&[a, b], 1e-2, 1e-2, |tape, vars| {
            let c = tape.matmul(vars[0], vars[1]);
            let t = tape.tanh(c);
            tape.sum_all(t)
        });
    }

    #[test]
    fn softmax_cross_entropy_passes_gradcheck() {
        let mut rng = TensorRng::seed_from_u64(2);
        let logits = rng.normal_matrix(4, 3, 1.0);
        let targets = Matrix::from_fn(4, 3, |_, c| if c == 1 { 0.7 } else { 0.15 });
        assert_gradients_close(&[logits], 1e-2, 1e-2, move |tape, vars| {
            tape.softmax_cross_entropy(vars[0], targets.clone())
        });
    }

    #[test]
    fn text_cnn_block_passes_gradcheck() {
        // embedding-free miniature of the Kim CNN block:
        // im2col -> affine -> relu -> max-over-rows -> linear -> CE
        let mut rng = TensorRng::seed_from_u64(3);
        let sentence = rng.normal_matrix(6, 3, 0.5); // 6 tokens, dim 3
        let conv_w = rng.normal_matrix(6, 4, 0.5); // window 2 * dim 3 -> 4 filters
        let conv_b = rng.normal_matrix(1, 4, 0.1);
        let out_w = rng.normal_matrix(4, 2, 0.5);
        let out_b = rng.normal_matrix(1, 2, 0.1);
        let targets = Matrix::row_vector(&[0.2, 0.8]);
        assert_gradients_close(&[sentence, conv_w, conv_b, out_w, out_b], 1e-2, 2e-2, move |tape, vars| {
            let cols = tape.im2col(vars[0], 2);
            let conv = tape.affine(cols, vars[1], vars[2]);
            let act = tape.relu(conv);
            let pooled = tape.max_over_rows(act);
            let logits = tape.affine(pooled, vars[3], vars[4]);
            tape.softmax_cross_entropy(logits, targets.clone())
        });
    }

    #[test]
    fn gru_like_cell_passes_gradcheck() {
        let mut rng = TensorRng::seed_from_u64(4);
        let x = rng.normal_matrix(1, 3, 0.5);
        let h = rng.normal_matrix(1, 2, 0.5);
        let wz = rng.normal_matrix(3, 2, 0.5);
        let uz = rng.normal_matrix(2, 2, 0.5);
        let wh = rng.normal_matrix(3, 2, 0.5);
        let uh = rng.normal_matrix(2, 2, 0.5);
        assert_gradients_close(&[x, h, wz, uz, wh, uh], 1e-2, 2e-2, |tape, v| {
            let (x, h, wz, uz, wh, uh) = (v[0], v[1], v[2], v[3], v[4], v[5]);
            let xz = tape.matmul(x, wz);
            let hz = tape.matmul(h, uz);
            let zs = tape.add(xz, hz);
            let z = tape.sigmoid(zs);
            let xh = tape.matmul(x, wh);
            let hh = tape.matmul(h, uh);
            let hs = tape.add(xh, hh);
            let cand = tape.tanh(hs);
            let one_minus_z = tape.one_minus(z);
            let keep = tape.mul(one_minus_z, h);
            let update = tape.mul(z, cand);
            let new_h = tape.add(keep, update);
            tape.sum_all(new_h)
        });
    }

    #[test]
    fn report_passes_uses_both_tolerances() {
        let report = GradCheckReport { max_abs_diff: 0.5, max_rel_diff: 1e-6 };
        assert!(report.passes(1e-4));
        let bad = GradCheckReport { max_abs_diff: 0.5, max_rel_diff: 0.5 };
        assert!(!bad.passes(1e-4));
    }
}
