//! # lncl-autograd
//!
//! A small reverse-mode automatic-differentiation engine built on top of
//! [`lncl_tensor::Matrix`].  The Logic-LNCL paper trains two neural
//! architectures (a Kim-2014 style text CNN and a convolution + GRU sequence
//! tagger); this crate provides exactly the operator set those models need,
//! each with a hand-written backward pass, recorded on a [`Tape`].
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root.)
//!
//! ## Design
//!
//! * A [`Tape`] owns a flat `Vec` of nodes.  Each node stores its value, its
//!   gradient accumulator and an [`Op`] describing how it was produced.
//! * [`Var`] is a copyable handle (just an index) into the tape.
//! * `Tape::backward(loss)` walks the nodes in reverse creation order and
//!   accumulates gradients — creation order is already a topological order
//!   because operands must exist before the ops that consume them.
//! * Parameters live *outside* the tape (plain `Matrix` values owned by the
//!   `lncl-nn` layer structs); every forward pass copies them onto a fresh
//!   tape with [`Tape::leaf`], and the optimiser reads the gradients back
//!   with [`Tape::grad`].  At the scale of the paper's (simulated)
//!   experiments the copies are negligible and the design keeps borrow-
//!   checking trivial.
//!
//! ```
//! use lncl_autograd::Tape;
//! use lncl_tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.leaf(Matrix::from_rows(&[&[0.5], &[-0.5]]));
//! let y = tape.matmul(x, w);          // 1x1
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(w).row(0), &[1.0]);
//! assert_eq!(tape.grad(w).row(1), &[2.0]);
//! ```

pub mod gradcheck;
mod ops;

pub use ops::Op;

use lncl_tensor::Matrix;

/// Copyable handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Index of the node inside its tape (mostly useful for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct Node {
    pub value: Matrix,
    pub grad: Matrix,
    pub op: Op,
}

/// A reverse-mode autodiff tape.
///
/// All operator methods (`matmul`, `add`, `relu`, …) are defined in the
/// `ops` module and compute the forward value eagerly while recording enough
/// information to run the backward pass later.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { nodes: Vec::with_capacity(capacity) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a leaf node (an input or a parameter copy).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Alias of [`Tape::leaf`] that documents intent for non-trainable data.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.leaf(value)
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op) -> Var {
        // Gradient buffers are materialised lazily by `backward`; a
        // forward-only pass (e.g. `predict_proba`) never allocates them.
        self.nodes.push(Node { value, grad: Matrix::zeros(0, 0), op });
        Var(self.nodes.len() - 1)
    }

    /// Immutable access to a node's value.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Immutable access to a node's accumulated gradient.  Gradient buffers
    /// are allocated lazily: before the first [`Tape::backward`] call this
    /// returns an empty (0x0) matrix.
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Resets every gradient accumulator to zero (rarely needed because a
    /// fresh tape is built per step, but handy for multi-loss experiments).
    pub fn zero_grad(&mut self) {
        for node in &mut self.nodes {
            node.grad.fill(0.0);
        }
    }

    /// Runs the backward pass from `loss`, which must be a `1x1` node.
    ///
    /// Gradients are accumulated into every node reachable from `loss`;
    /// calling it twice without [`Tape::zero_grad`] adds the gradients a
    /// second time (matching the usual "accumulate until cleared" autograd
    /// contract).
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar (1x1) node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be a 1x1 scalar node, got {:?}", self.shape(loss));
        // materialise any gradient buffers the (lazy) forward pass skipped
        for node in &mut self.nodes {
            if node.grad.shape() != node.value.shape() {
                node.grad = Matrix::zeros(node.value.rows(), node.value.cols());
            }
        }
        self.nodes[loss.0].grad = Matrix::full(1, 1, 1.0);
        for i in (0..=loss.0).rev() {
            self.backward_node(i);
        }
    }

    /// Convenience: value of a scalar (1x1) node.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is not 1x1");
        m[(0, 0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let mut tape = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = tape.leaf(m.clone());
        assert_eq!(tape.value(v), &m);
        assert_eq!(tape.shape(v), (2, 2));
        assert_eq!(tape.len(), 1);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let v = tape.leaf(Matrix::zeros(2, 2));
        tape.backward(v);
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::full(1, 3, 2.0));
        let s = tape.sum_all(x);
        tape.backward(s);
        assert!(tape.grad(x).as_slice().iter().all(|&g| g == 1.0));
        tape.zero_grad();
        assert!(tape.grad(x).as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn backward_accumulates_when_called_twice() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::full(1, 2, 1.0));
        let s = tape.sum_all(x);
        tape.backward(s);
        tape.backward(s);
        assert!(tape.grad(x).as_slice().iter().all(|&g| (g - 2.0).abs() < 1e-6));
    }
}
