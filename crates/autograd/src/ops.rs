//! Operator definitions: eager forward computation plus the per-op backward
//! rules used by [`Tape::backward`].

use crate::{Tape, Var};
use lncl_tensor::{ops, stats, Matrix};

/// How a node on the tape was produced.
///
/// Every variant stores the operand handles (and any auxiliary data, such as
/// max-pool argmax indices or the cached softmax probabilities) needed to
/// run its backward rule.
pub enum Op {
    /// Input or parameter copy; no backward rule.
    Leaf,
    /// Matrix product `a * b`.
    MatMul(Var, Var),
    /// Element-wise `a + b`.
    Add(Var, Var),
    /// Element-wise `a - b`.
    Sub(Var, Var),
    /// Element-wise (Hadamard) `a ⊙ b`.
    Mul(Var, Var),
    /// Scalar multiple `s * a`.
    Scale(Var, f32),
    /// `1 - a` element-wise (used by the GRU update gate).
    OneMinus(Var),
    /// Adds a `1 x cols` bias row to every row of `a`.
    AddRowBroadcast(Var, Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Sum of every entry, producing a scalar.
    SumAll(Var),
    /// Mean of every entry, producing a scalar.
    MeanAll(Var),
    /// Horizontal concatenation (same row count).
    HStack(Vec<Var>),
    /// Vertical concatenation (same column count).
    VStack(Vec<Var>),
    /// Gather of the listed rows (embedding lookup).
    GatherRows(Var, Vec<usize>),
    /// Sliding-window flattening: row `p` of the output is the
    /// concatenation of input rows `p .. p+window`.
    Im2Col(Var, usize),
    /// Column-wise max over rows ("max-over-time" pooling); stores argmax.
    MaxOverRows(Var, Vec<usize>),
    /// Element-wise multiplication by a fixed inverted-dropout mask.
    Dropout(Var, Matrix),
    /// Extraction of a single row as a `1 x cols` matrix.
    RowSlice(Var, usize),
    /// Fused affine map `x * w + bias` (bias broadcast over rows).
    Affine { x: Var, w: Var, bias: Var },
    /// Fused `relu(x * w + bias)`; the stored output doubles as the ReLU
    /// mask in the backward rule.
    AffineRelu { x: Var, w: Var, bias: Var },
    /// Fused dual affine map `x * w + h * u + bias` (a GRU gate
    /// pre-activation).
    DualAffine { x: Var, w: Var, h: Var, u: Var, bias: Var },
    /// Fused text-convolution window: `relu(im2col(x, window) * w + bias)`
    /// as one node.  Stores the im2col matrix (needed for the weight
    /// gradient); the intermediate never gets a node or a gradient buffer,
    /// and its backward scatters straight into `x`.
    ConvWindow { x: Var, w: Var, bias: Var, window: usize, cols: Matrix },
    /// Fused row-softmax + cross-entropy against fixed soft targets,
    /// averaged over rows.  Stores the softmax probabilities.
    SoftmaxCrossEntropy { logits: Var, targets: Matrix, probs: Matrix },
}

impl Tape {
    // ---------------------------------------------------------------------
    // Forward operator constructors
    // ---------------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = ops::matmul(self.value(a), self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = ops::add(self.value(a), self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = ops::sub(self.value(a), self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = ops::mul(self.value(a), self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = ops::scale(self.value(a), s);
        self.push(value, Op::Scale(a, s))
    }

    /// `1 - a` element-wise.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 - v);
        self.push(value, Op::OneMinus(a))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let value = ops::add_row_broadcast(self.value(a), self.value(bias));
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = stats::softmax_rows(self.value(a));
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Sum of all entries (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all entries (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Horizontal concatenation of equally-tall matrices.
    pub fn hstack(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "hstack: no operands");
        let values: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Matrix::hstack(&values);
        self.push(value, Op::HStack(parts.to_vec()))
    }

    /// Vertical concatenation of equally-wide matrices.
    pub fn vstack(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "vstack: no operands");
        let values: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Matrix::vstack(&values);
        self.push(value, Op::VStack(parts.to_vec()))
    }

    /// Gathers the listed rows of `a` (embedding lookup); repeats allowed.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let value = ops::gather_rows(self.value(a), indices);
        self.push(value, Op::GatherRows(a, indices.to_vec()))
    }

    /// Sliding-window flattening used to express a text convolution as a
    /// single matrix product: with input `T x d` and window `w`, the output
    /// is `(T - w + 1) x (w * d)`.
    ///
    /// # Panics
    /// Panics if the input has fewer rows than the window size.
    pub fn im2col(&mut self, a: Var, window: usize) -> Var {
        let value = ops::im2col(self.value(a), window);
        self.push(value, Op::Im2Col(a, window))
    }

    /// Column-wise max over rows ("max-over-time" pooling): `T x c -> 1 x c`.
    pub fn max_over_rows(&mut self, a: Var) -> Var {
        let (value, argmax) = ops::max_over_rows(self.value(a));
        self.push(value, Op::MaxOverRows(a, argmax))
    }

    /// Inverted dropout with the given keep probability.  When `training` is
    /// false (or `keep >= 1`) this is the identity.  The mask is sampled
    /// from the supplied uniform numbers in `[0,1)`, one per entry, so the
    /// caller controls the randomness (and reproducibility).
    pub fn dropout(&mut self, a: Var, keep: f32, uniforms: &[f32], training: bool) -> Var {
        if !training || keep >= 1.0 {
            // identity in eval mode: no node, no mask, no copy
            return a;
        }
        let input = self.value(a);
        assert!(keep > 0.0, "dropout: keep probability must be positive");
        assert!(uniforms.len() >= input.len(), "dropout: need {} uniform samples, got {}", input.len(), uniforms.len());
        let inv_keep = 1.0 / keep;
        let mut mask = Matrix::zeros(input.rows(), input.cols());
        for (i, m) in mask.as_mut_slice().iter_mut().enumerate() {
            *m = if uniforms[i] < keep { inv_keep } else { 0.0 };
        }
        let value = ops::mul(input, &mask);
        self.push(value, Op::Dropout(a, mask))
    }

    /// Extracts row `r` of `a` as a `1 x cols` node.
    pub fn row_slice(&mut self, a: Var, r: usize) -> Var {
        let input = self.value(a);
        assert!(r < input.rows(), "row_slice: row {r} out of bounds ({} rows)", input.rows());
        let value = Matrix::from_vec(1, input.cols(), input.row(r).to_vec());
        self.push(value, Op::RowSlice(a, r))
    }

    /// Fused softmax + cross-entropy against fixed soft targets, averaged
    /// over rows.  `targets` must have the same shape as `logits` and each
    /// row should be a probability distribution (the "soft label" `q_f(t)`
    /// of the paper).  Returns a scalar node.  Forward runs as the single
    /// fused pass [`ops::softmax_xent_rows`], whose probabilities are kept
    /// for the backward rule.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Matrix) -> Var {
        let (loss, probs) = ops::softmax_xent_rows(self.value(logits), &targets);
        let value = Matrix::full(1, 1, loss);
        self.push(value, Op::SoftmaxCrossEntropy { logits, targets, probs })
    }

    /// Mean-squared-error against fixed targets, averaged over all entries.
    /// Implemented compositionally (sub → mul → mean), so it needs no
    /// dedicated backward rule.
    pub fn mse(&mut self, predictions: Var, targets: Matrix) -> Var {
        let t = self.constant(targets);
        let diff = self.sub(predictions, t);
        let sq = self.mul(diff, diff);
        self.mean_all(sq)
    }

    /// Fused affine layer `x * w + bias` with bias broadcast over rows: one
    /// node and one output allocation instead of the matmul + broadcast
    /// composition.
    pub fn affine(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let value = ops::affine(self.value(x), self.value(w), self.value(bias));
        self.push(value, Op::Affine { x, w, bias })
    }

    /// Fused `relu(x * w + bias)` — the convolution-layer activation — as a
    /// single node.
    pub fn affine_relu(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let value = ops::affine_relu(self.value(x), self.value(w), self.value(bias));
        self.push(value, Op::AffineRelu { x, w, bias })
    }

    /// Fused dual affine map `x * w + h * u + bias` (bias broadcast over
    /// rows), the pre-activation of a GRU gate: one node instead of the
    /// two-matmul + add + broadcast composition.
    pub fn dual_affine(&mut self, x: Var, w: Var, h: Var, u: Var, bias: Var) -> Var {
        let value = ops::dual_affine(self.value(x), self.value(w), self.value(h), self.value(u), self.value(bias));
        self.push(value, Op::DualAffine { x, w, h, u, bias })
    }

    /// Fused text-convolution window `relu(im2col(x, window) * w + bias)`:
    /// the whole conv block is one node, so the sliding-window matrix never
    /// gets a gradient buffer and its backward scatters directly into `x`.
    pub fn conv_window(&mut self, x: Var, w: Var, bias: Var, window: usize) -> Var {
        let cols = ops::im2col(self.value(x), window);
        let value = ops::affine_relu(&cols, self.value(w), self.value(bias));
        self.push(value, Op::ConvWindow { x, w, bias, window, cols })
    }

    // ---------------------------------------------------------------------
    // Backward rules
    // ---------------------------------------------------------------------

    pub(crate) fn backward_node(&mut self, index: usize) {
        // Temporarily move the op and upstream gradient out of the node so
        // we can mutate other nodes' gradients without aliasing (moved, not
        // cloned — they are restored below).
        let upstream = std::mem::replace(&mut self.nodes[index].grad, Matrix::zeros(0, 0));
        if upstream.as_slice().iter().all(|&g| g == 0.0) {
            self.nodes[index].grad = upstream;
            return;
        }
        let op = std::mem::replace(&mut self.nodes[index].op, Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let da = ops::matmul_transpose_b(&upstream, &self.nodes[b.0].value);
                let db = ops::matmul_transpose_a(&self.nodes[a.0].value, &upstream);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
                ops::add_assign(&mut self.nodes[b.0].grad, &db);
            }
            Op::Add(a, b) => {
                ops::add_assign(&mut self.nodes[a.0].grad, &upstream);
                ops::add_assign(&mut self.nodes[b.0].grad, &upstream);
            }
            Op::Sub(a, b) => {
                ops::add_assign(&mut self.nodes[a.0].grad, &upstream);
                ops::add_scaled_assign(&mut self.nodes[b.0].grad, &upstream, -1.0);
            }
            Op::Mul(a, b) => {
                let da = ops::mul(&upstream, &self.nodes[b.0].value);
                let db = ops::mul(&upstream, &self.nodes[a.0].value);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
                ops::add_assign(&mut self.nodes[b.0].grad, &db);
            }
            Op::Scale(a, s) => {
                ops::add_scaled_assign(&mut self.nodes[a.0].grad, &upstream, *s);
            }
            Op::OneMinus(a) => {
                ops::add_scaled_assign(&mut self.nodes[a.0].grad, &upstream, -1.0);
            }
            Op::AddRowBroadcast(a, bias) => {
                ops::add_assign(&mut self.nodes[a.0].grad, &upstream);
                let dbias = ops::sum_rows(&upstream);
                ops::add_assign(&mut self.nodes[bias.0].grad, &dbias);
            }
            Op::Relu(a) => {
                let mask = self.nodes[a.0].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                let da = ops::mul(&upstream, &mask);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[index].value;
                let deriv = y.map(|v| 1.0 - v * v);
                let da = ops::mul(&upstream, &deriv);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[index].value;
                let deriv = y.map(|v| v * (1.0 - v));
                let da = ops::mul(&upstream, &deriv);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::SoftmaxRows(a) => {
                // Per-row Jacobian-vector product: da = y ⊙ (g - <g, y>).
                let y = self.nodes[index].value.clone();
                let mut da = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = upstream.row(r).iter().zip(y.row(r)).map(|(g, p)| g * p).sum();
                    for c in 0..y.cols() {
                        da[(r, c)] = y[(r, c)] * (upstream[(r, c)] - dot);
                    }
                }
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::SumAll(a) => {
                let g = upstream[(0, 0)];
                let shape = self.nodes[a.0].value.shape();
                let da = Matrix::full(shape.0, shape.1, g);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::MeanAll(a) => {
                let n = self.nodes[a.0].value.len().max(1) as f32;
                let g = upstream[(0, 0)] / n;
                let shape = self.nodes[a.0].value.shape();
                let da = Matrix::full(shape.0, shape.1, g);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::HStack(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let cols = self.nodes[p.0].value.cols();
                    let mut dp = Matrix::zeros(upstream.rows(), cols);
                    for r in 0..upstream.rows() {
                        dp.row_mut(r).copy_from_slice(&upstream.row(r)[offset..offset + cols]);
                    }
                    ops::add_assign(&mut self.nodes[p.0].grad, &dp);
                    offset += cols;
                }
            }
            Op::VStack(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let rows = self.nodes[p.0].value.rows();
                    let dp = upstream.slice_rows(offset, offset + rows);
                    ops::add_assign(&mut self.nodes[p.0].grad, &dp);
                    offset += rows;
                }
            }
            Op::GatherRows(a, indices) => {
                ops::scatter_add_rows(&mut self.nodes[a.0].grad, indices, &upstream);
            }
            Op::Im2Col(a, window) => {
                let d = self.nodes[a.0].value.cols();
                let grad = &mut self.nodes[a.0].grad;
                for p in 0..upstream.rows() {
                    for w in 0..*window {
                        let src = &upstream.row(p)[w * d..(w + 1) * d];
                        for (dst, s) in grad.row_mut(p + w).iter_mut().zip(src) {
                            *dst += s;
                        }
                    }
                }
            }
            Op::MaxOverRows(a, argmax) => {
                let grad = &mut self.nodes[a.0].grad;
                for (c, &r) in argmax.iter().enumerate() {
                    grad[(r, c)] += upstream[(0, c)];
                }
            }
            Op::Dropout(a, mask) => {
                let da = ops::mul(&upstream, mask);
                ops::add_assign(&mut self.nodes[a.0].grad, &da);
            }
            Op::RowSlice(a, r) => {
                let grad = &mut self.nodes[a.0].grad;
                for (dst, s) in grad.row_mut(*r).iter_mut().zip(upstream.row(0)) {
                    *dst += s;
                }
            }
            Op::Affine { x, w, bias } => {
                let dx = ops::matmul_transpose_b(&upstream, &self.nodes[w.0].value);
                let dw = ops::matmul_transpose_a(&self.nodes[x.0].value, &upstream);
                let dbias = ops::sum_rows(&upstream);
                ops::add_assign(&mut self.nodes[x.0].grad, &dx);
                ops::add_assign(&mut self.nodes[w.0].grad, &dw);
                ops::add_assign(&mut self.nodes[bias.0].grad, &dbias);
            }
            Op::AffineRelu { x, w, bias } => {
                // mask the upstream by the ReLU output, then the affine rule
                let y = &self.nodes[index].value;
                let mut masked = upstream.clone();
                for (g, &v) in masked.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
                let dx = ops::matmul_transpose_b(&masked, &self.nodes[w.0].value);
                let dw = ops::matmul_transpose_a(&self.nodes[x.0].value, &masked);
                let dbias = ops::sum_rows(&masked);
                ops::add_assign(&mut self.nodes[x.0].grad, &dx);
                ops::add_assign(&mut self.nodes[w.0].grad, &dw);
                ops::add_assign(&mut self.nodes[bias.0].grad, &dbias);
            }
            Op::DualAffine { x, w, h, u, bias } => {
                let dx = ops::matmul_transpose_b(&upstream, &self.nodes[w.0].value);
                let dw = ops::matmul_transpose_a(&self.nodes[x.0].value, &upstream);
                let dh = ops::matmul_transpose_b(&upstream, &self.nodes[u.0].value);
                let du = ops::matmul_transpose_a(&self.nodes[h.0].value, &upstream);
                let dbias = ops::sum_rows(&upstream);
                ops::add_assign(&mut self.nodes[x.0].grad, &dx);
                ops::add_assign(&mut self.nodes[w.0].grad, &dw);
                ops::add_assign(&mut self.nodes[h.0].grad, &dh);
                ops::add_assign(&mut self.nodes[u.0].grad, &du);
                ops::add_assign(&mut self.nodes[bias.0].grad, &dbias);
            }
            Op::ConvWindow { x, w, bias, window, cols } => {
                // mask the upstream by the ReLU output, then the affine
                // rules against the stored im2col matrix
                let y = &self.nodes[index].value;
                let mut masked = upstream.clone();
                for (g, &v) in masked.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
                let dw = ops::matmul_transpose_a(cols, &masked);
                let dbias = ops::sum_rows(&masked);
                ops::add_assign(&mut self.nodes[w.0].grad, &dw);
                ops::add_assign(&mut self.nodes[bias.0].grad, &dbias);
                // dcols scattered straight into x (the im2col adjoint)
                let dcols = ops::matmul_transpose_b(&masked, &self.nodes[w.0].value);
                let d = self.nodes[x.0].value.cols();
                let grad = &mut self.nodes[x.0].grad;
                for p in 0..dcols.rows() {
                    for wnd in 0..*window {
                        let src = &dcols.row(p)[wnd * d..(wnd + 1) * d];
                        for (dst, s) in grad.row_mut(p + wnd).iter_mut().zip(src) {
                            *dst += s;
                        }
                    }
                }
            }
            Op::SoftmaxCrossEntropy { logits, targets, probs } => {
                let g = upstream[(0, 0)];
                let rows = probs.rows().max(1) as f32;
                let mut dl = ops::sub(probs, targets);
                dl.map_inplace(|v| v * g / rows);
                ops::add_assign(&mut self.nodes[logits.0].grad, &dl);
            }
        }
        self.nodes[index].op = op;
        self.nodes[index].grad = upstream;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_backward_matches_hand_computed() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.leaf(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        // dA = 1 * B^T summed over output: each entry of dA is sum of B row.
        assert_eq!(tape.grad(a), &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]]));
        assert_eq!(tape.grad(b), &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]]));
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[-1.0, 2.0]));
        let y = tape.relu(x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x), &Matrix::row_vector(&[0.0, 1.0]));
    }

    #[test]
    fn sigmoid_tanh_values() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[0.0]));
        let s = tape.sigmoid(x);
        let t = tape.tanh(x);
        assert!((tape.value(s)[(0, 0)] - 0.5).abs() < 1e-6);
        assert!(tape.value(t)[(0, 0)].abs() < 1e-6);
    }

    #[test]
    fn softmax_cross_entropy_grad_is_probs_minus_targets() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::row_vector(&[0.0, 0.0]));
        let targets = Matrix::row_vector(&[1.0, 0.0]);
        let loss = tape.softmax_cross_entropy(logits, targets);
        assert!((tape.scalar(loss) - (2.0f32).ln()).abs() < 1e-5);
        tape.backward(loss);
        let g = tape.grad(logits);
        assert!((g[(0, 0)] - (-0.5)).abs() < 1e-5);
        assert!((g[(0, 1)] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn max_over_rows_routes_gradient_to_argmax() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 9.0], &[7.0, 2.0]]));
        let pooled = tape.max_over_rows(x);
        let loss = tape.sum_all(pooled);
        tape.backward(loss);
        assert_eq!(tape.grad(x), &Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
    }

    #[test]
    fn gather_rows_accumulates_repeated_indices() {
        let mut tape = Tape::new();
        let table = tape.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let picked = tape.gather_rows(table, &[1, 1, 2]);
        let loss = tape.sum_all(picked);
        tape.backward(loss);
        assert_eq!(tape.grad(table), &Matrix::from_rows(&[&[0.0], &[2.0], &[1.0]]));
    }

    #[test]
    fn im2col_shapes_and_backward() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let cols = tape.im2col(x, 2);
        assert_eq!(tape.shape(cols), (2, 4));
        assert_eq!(tape.value(cols).row(0), &[1.0, 2.0, 3.0, 4.0]);
        let loss = tape.sum_all(cols);
        tape.backward(loss);
        // middle row participates in both windows.
        assert_eq!(tape.grad(x), &Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[1.0, 1.0]]));
    }

    #[test]
    fn hstack_vstack_split_gradients() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::row_vector(&[1.0]));
        let b = tape.leaf(Matrix::row_vector(&[2.0, 3.0]));
        let h = tape.hstack(&[a, b]);
        assert_eq!(tape.shape(h), (1, 3));
        let loss = tape.sum_all(h);
        tape.backward(loss);
        assert_eq!(tape.grad(a), &Matrix::row_vector(&[1.0]));
        assert_eq!(tape.grad(b), &Matrix::row_vector(&[1.0, 1.0]));

        let mut tape2 = Tape::new();
        let c = tape2.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let d = tape2.leaf(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let v = tape2.vstack(&[c, d]);
        assert_eq!(tape2.shape(v), (3, 2));
        let loss2 = tape2.sum_all(v);
        tape2.backward(loss2);
        assert_eq!(tape2.grad(c), &Matrix::row_vector(&[1.0, 1.0]));
        assert_eq!(tape2.grad(d), &Matrix::full(2, 2, 1.0));
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let y = tape.dropout(x, 0.5, &[0.9, 0.1, 0.4], false);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    fn dropout_training_scales_kept_units() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        // first uniform 0.9 >= keep=0.5 -> dropped, second 0.1 < 0.5 -> kept.
        let y = tape.dropout(x, 0.5, &[0.9, 0.1], true);
        assert_eq!(tape.value(y), &Matrix::row_vector(&[0.0, 4.0]));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x), &Matrix::row_vector(&[0.0, 2.0]));
    }

    #[test]
    fn row_slice_backward_targets_single_row() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = tape.row_slice(x, 1);
        let loss = tape.sum_all(r);
        tape.backward(loss);
        assert_eq!(tape.grad(x), &Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]));
    }

    #[test]
    fn one_minus_and_scale() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[0.25]));
        let y = tape.one_minus(x);
        let z = tape.scale(y, 4.0);
        let loss = tape.sum_all(z);
        assert!((tape.scalar(loss) - 3.0).abs() < 1e-6);
        tape.backward(loss);
        assert_eq!(tape.grad(x), &Matrix::row_vector(&[-4.0]));
    }

    #[test]
    fn affine_matches_manual_composition() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let w = tape.leaf(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let b = tape.leaf(Matrix::row_vector(&[0.5]));
        let y = tape.affine(x, w, b);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[3.5], &[7.5]]));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(b), &Matrix::row_vector(&[2.0]));
    }

    #[test]
    fn fused_affine_matches_composed_forward_and_backward() {
        let x_val = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let w_val = Matrix::from_rows(&[&[0.5, 1.0, -1.0], &[2.0, 0.0, 0.5]]);
        let b_val = Matrix::row_vector(&[0.1, -0.2, 0.3]);

        let mut fused = Tape::new();
        let (fx, fw, fb) = (fused.leaf(x_val.clone()), fused.leaf(w_val.clone()), fused.leaf(b_val.clone()));
        let fy = fused.affine(fx, fw, fb);
        let floss = fused.sum_all(fy);
        fused.backward(floss);

        let mut composed = Tape::new();
        let (cx, cw, cb) = (composed.leaf(x_val), composed.leaf(w_val), composed.leaf(b_val));
        let xw = composed.matmul(cx, cw);
        let cy = composed.add_row_broadcast(xw, cb);
        let closs = composed.sum_all(cy);
        composed.backward(closs);

        assert_eq!(fused.value(fy), composed.value(cy));
        assert_eq!(fused.grad(fx), composed.grad(cx));
        assert_eq!(fused.grad(fw), composed.grad(cw));
        assert_eq!(fused.grad(fb), composed.grad(cb));
    }

    #[test]
    fn fused_affine_relu_matches_composition() {
        let x_val = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let w_val = Matrix::from_rows(&[&[0.5, 1.0], &[2.0, -0.5]]);
        let b_val = Matrix::row_vector(&[0.1, -0.2]);

        let mut fused = Tape::new();
        let (fx, fw, fb) = (fused.leaf(x_val.clone()), fused.leaf(w_val.clone()), fused.leaf(b_val.clone()));
        let fy = fused.affine_relu(fx, fw, fb);
        let floss = fused.sum_all(fy);
        fused.backward(floss);

        let mut composed = Tape::new();
        let (cx, cw, cb) = (composed.leaf(x_val), composed.leaf(w_val), composed.leaf(b_val));
        let pre = composed.affine(cx, cw, cb);
        let cy = composed.relu(pre);
        let closs = composed.sum_all(cy);
        composed.backward(closs);

        assert_eq!(fused.value(fy), composed.value(cy));
        assert_eq!(fused.grad(fx), composed.grad(cx));
        assert_eq!(fused.grad(fw), composed.grad(cw));
        assert_eq!(fused.grad(fb), composed.grad(cb));
    }

    #[test]
    fn fused_dual_affine_matches_composition() {
        let x_val = Matrix::from_rows(&[&[1.0, -0.5]]);
        let w_val = Matrix::from_rows(&[&[0.5, 1.0], &[2.0, -0.5]]);
        let h_val = Matrix::from_rows(&[&[0.25, 0.75, -1.0]]);
        let u_val = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, -0.5], &[0.0, 2.0]]);
        let b_val = Matrix::row_vector(&[0.1, 0.2]);

        let mut fused = Tape::new();
        let fx = fused.leaf(x_val.clone());
        let fw = fused.leaf(w_val.clone());
        let fh = fused.leaf(h_val.clone());
        let fu = fused.leaf(u_val.clone());
        let fb = fused.leaf(b_val.clone());
        let fy = fused.dual_affine(fx, fw, fh, fu, fb);
        let floss = fused.sum_all(fy);
        fused.backward(floss);

        let mut composed = Tape::new();
        let cx = composed.leaf(x_val);
        let cw = composed.leaf(w_val);
        let ch = composed.leaf(h_val);
        let cu = composed.leaf(u_val);
        let cb = composed.leaf(b_val);
        let xw = composed.matmul(cx, cw);
        let hu = composed.matmul(ch, cu);
        let sum = composed.add(xw, hu);
        let cy = composed.add_row_broadcast(sum, cb);
        let closs = composed.sum_all(cy);
        composed.backward(closs);

        assert_eq!(fused.value(fy), composed.value(cy));
        assert_eq!(fused.grad(fx), composed.grad(cx));
        assert_eq!(fused.grad(fw), composed.grad(cw));
        assert_eq!(fused.grad(fh), composed.grad(ch));
        assert_eq!(fused.grad(fu), composed.grad(cu));
        assert_eq!(fused.grad(fb), composed.grad(cb));
    }

    #[test]
    fn fused_ops_pass_gradcheck() {
        use crate::gradcheck::assert_gradients_close;
        let x = Matrix::from_rows(&[&[0.3, -0.6], &[0.1, 0.8]]);
        let w = Matrix::from_rows(&[&[0.5, 0.2], &[-0.4, 0.7]]);
        let h = Matrix::from_rows(&[&[0.2, -0.1], &[0.6, 0.4]]);
        let u = Matrix::from_rows(&[&[0.9, -0.3], &[0.2, 0.5]]);
        let b = Matrix::row_vector(&[0.05, -0.15]);
        assert_gradients_close(&[x.clone(), w.clone(), b.clone()], 1e-2, 1e-2, |tape, v| {
            let y = tape.affine(v[0], v[1], v[2]);
            let t = tape.tanh(y);
            tape.sum_all(t)
        });
        assert_gradients_close(&[x.clone(), w.clone(), b.clone()], 1e-2, 1e-2, |tape, v| {
            let y = tape.affine_relu(v[0], v[1], v[2]);
            tape.sum_all(y)
        });
        assert_gradients_close(&[x, w, h, u, b], 1e-2, 1e-2, |tape, v| {
            let y = tape.dual_affine(v[0], v[1], v[2], v[3], v[4]);
            let t = tape.sigmoid(y);
            tape.sum_all(t)
        });
    }

    #[test]
    fn fused_conv_window_matches_composition() {
        let x_val = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[-1.0, 0.25], &[2.0, 1.0]]);
        let w_val = Matrix::from_rows(&[&[0.5, 1.0, -1.0], &[2.0, 0.0, 0.5], &[-0.5, 0.25, 1.0], &[1.0, -1.0, 0.0]]);
        let b_val = Matrix::row_vector(&[0.1, -0.2, 0.3]);

        let mut fused = Tape::new();
        let (fx, fw, fb) = (fused.leaf(x_val.clone()), fused.leaf(w_val.clone()), fused.leaf(b_val.clone()));
        let fy = fused.conv_window(fx, fw, fb, 2);
        let floss = fused.sum_all(fy);
        fused.backward(floss);

        let mut composed = Tape::new();
        let (cx, cw, cb) = (composed.leaf(x_val), composed.leaf(w_val), composed.leaf(b_val));
        let cols = composed.im2col(cx, 2);
        let cy = composed.affine_relu(cols, cw, cb);
        let closs = composed.sum_all(cy);
        composed.backward(closs);

        assert_eq!(fused.value(fy), composed.value(cy));
        assert_eq!(fused.grad(fx), composed.grad(cx));
        assert_eq!(fused.grad(fw), composed.grad(cw));
        assert_eq!(fused.grad(fb), composed.grad(cb));
    }

    #[test]
    fn fused_conv_window_passes_gradcheck() {
        use crate::gradcheck::assert_gradients_close;
        let x = Matrix::from_rows(&[&[0.3, -0.6], &[0.1, 0.8], &[0.5, -0.2], &[-0.4, 0.9]]);
        let w = Matrix::from_rows(&[&[0.5, 0.2], &[-0.4, 0.7], &[0.3, -0.8], &[0.6, 0.1]]);
        let b = Matrix::row_vector(&[0.07, -0.11]);
        assert_gradients_close(&[x, w, b], 1e-2, 2e-2, |tape, v| {
            let y = tape.conv_window(v[0], v[1], v[2], 2);
            tape.sum_all(y)
        });
    }

    #[test]
    fn eval_mode_dropout_adds_no_node() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let before = tape.len();
        let y = tape.dropout(x, 0.5, &[], false);
        assert_eq!(y, x, "eval-mode dropout must be the identity node");
        assert_eq!(tape.len(), before);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 3.0]));
        let loss = tape.mse(x, Matrix::row_vector(&[0.0, 0.0]));
        assert!((tape.scalar(loss) - 5.0).abs() < 1e-6);
        tape.backward(loss);
        // d/dx mean((x-t)^2) = 2(x-t)/n
        assert!(tape.grad(x).approx_eq(&Matrix::row_vector(&[1.0, 3.0]), 1e-5));
    }
}
