//! Property tests for the `scenario::wire` codec: round-trip fidelity over
//! seeded configuration grids and typed rejection of malformed buffers.

use lncl_crowd::scenario::router::{PolicyKind, RoutePlan};
use lncl_crowd::scenario::wire::{decode_config, encode_config, WireError, WIRE_VERSION};
use lncl_crowd::scenario::{
    standard_mixes, Archetype, DifficultyModel, DriftSchedule, PropensityProfile, ScenarioConfig, ScenarioGrid,
};
use lncl_crowd::TaskKind;

/// A seeded grid visiting every enum variant and a spread of numeric knobs
/// — the codec's input space, not just the defaults.
fn seeded_grid(seed: u64) -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        let base = ScenarioConfig::tiny(task).with_seed(seed);
        configs.extend(ScenarioGrid::new(base.clone()).with_standard_mixes().configs());
        for (i, drift) in [
            DriftSchedule::Static,
            DriftSchedule::LinearFatigue { rate: 0.4 },
            DriftSchedule::StepChange { at: 0.5, level: 0.9 },
            DriftSchedule::LearningCurve { rate: 0.3 },
        ]
        .into_iter()
        .enumerate()
        {
            configs.push(
                base.clone()
                    .named(format!("wire/{}/drift{i}", drift.name()))
                    .with_drift(drift)
                    .with_difficulty(DifficultyModel::with_strength(0.1 * i as f32))
                    .with_seed(seed + i as u64),
            );
        }
        for (i, policy) in PolicyKind::ALL.into_iter().enumerate() {
            configs.push(
                base.clone()
                    .named(format!("wire/route/{}", policy.name()))
                    .with_route(RoutePlan::new(policy, 0.2 + 0.2 * i as f32))
                    .with_propensity(PropensityProfile::Uniform),
            );
        }
    }
    configs
}

#[test]
fn every_grid_config_round_trips_bitwise() {
    for seed in [11, 29, 41] {
        for config in seeded_grid(seed) {
            let bytes = encode_config(&config);
            let decoded = decode_config(&bytes).unwrap_or_else(|e| panic!("{}: {e}", config.name));
            assert_eq!(decoded, config, "{} does not round-trip", config.name);
            assert_eq!(decoded.content_hash(), config.content_hash(), "{} hash drifts", config.name);
            // encoding is deterministic: re-encoding the decoded config
            // reproduces the exact wire bytes
            assert_eq!(encode_config(&decoded), bytes, "{} re-encode differs", config.name);
        }
    }
}

#[test]
fn name_is_carried_but_hash_excluded() {
    let a = ScenarioConfig::tiny(TaskKind::Classification).named("wire/name-a");
    let b = a.clone().named("wire/name-b");
    let (da, db) = (decode_config(&encode_config(&a)).unwrap(), decode_config(&encode_config(&b)).unwrap());
    assert_eq!(da.name, "wire/name-a");
    assert_eq!(db.name, "wire/name-b");
    assert_eq!(da.content_hash(), db.content_hash());
}

#[test]
fn every_truncation_of_every_variant_is_typed() {
    // one config per archetype/drift/route shape so each decode arm sees
    // truncated input
    let mut configs = vec![ScenarioConfig::tiny(TaskKind::Classification)
        .with_mix(vec![
            (Archetype::reliable(), 0.4),
            (Archetype::Spammer, 0.2),
            (Archetype::adversarial(), 0.2),
            (Archetype::pair_confuser(), 0.1),
            (Archetype::Colluding, 0.1),
        ])
        .with_route(RoutePlan::new(PolicyKind::SpamQuarantine, 0.5))];
    configs
        .push(ScenarioConfig::tiny(TaskKind::SequenceTagging).with_drift(DriftSchedule::LinearFatigue { rate: 0.2 }));
    for config in configs {
        let bytes = encode_config(&config);
        for len in 0..bytes.len() {
            assert!(
                matches!(decode_config(&bytes[..len]), Err(WireError::Truncated { .. })),
                "truncation at {len} of {} bytes not rejected",
                bytes.len()
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_config(&padded), Err(WireError::Trailing(1)));
    }
}

#[test]
fn malformed_frame_rejection_table() {
    let config = ScenarioConfig::tiny(TaskKind::Classification);
    let bytes = encode_config(&config);
    let name_end = 1 + 4 + config.name.len();

    // wrong version byte
    let mut wrong_version = bytes.clone();
    wrong_version[0] = WIRE_VERSION + 3;
    assert_eq!(decode_config(&wrong_version), Err(WireError::UnsupportedVersion(WIRE_VERSION + 3)));

    // over-length name claim walks off the buffer
    let mut overlong = bytes.clone();
    overlong[1..5].copy_from_slice(&(MAX_NAME_PLUS_ONE).to_le_bytes());
    assert!(matches!(decode_config(&overlong), Err(WireError::Oversized { field: "name", .. })));

    // non-UTF-8 name bytes
    let mut bad_name = bytes.clone();
    bad_name[5] = 0xFF;
    bad_name[6] = 0xFE;
    assert_eq!(decode_config(&bad_name), Err(WireError::BadName));

    // unknown task tag
    let mut bad_task = bytes.clone();
    bad_task[name_end] = 7;
    assert_eq!(decode_config(&bad_task), Err(WireError::BadTag { field: "task", value: 7 }));

    // empty buffer
    assert!(matches!(decode_config(&[]), Err(WireError::Truncated { field: "version" })));
}

const MAX_NAME_PLUS_ONE: u32 = 4097;

#[test]
fn standard_mixes_are_covered_by_the_codec() {
    // guard: if a new archetype joins standard_mixes without a wire arm,
    // this fails at encode (new variant → non-exhaustive match breaks the
    // build) or here at equality
    for (name, mix) in standard_mixes() {
        let config = ScenarioConfig::tiny(TaskKind::Classification).named(name).with_mix(mix);
        assert_eq!(decode_config(&encode_config(&config)).unwrap(), config);
    }
}
