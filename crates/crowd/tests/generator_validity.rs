//! Seed × config grid over every dataset generator: each emitted dataset
//! must pass `CrowdDataset::validate()`, including under degenerate
//! configurations (a single annotator, redundancy 1, a tiny vocabulary).
//! The generators additionally self-check under `cfg(debug_assertions)`;
//! this suite keeps the guarantee in release builds too.

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_crowd::scenario::{generate_scenario, standard_mixes, Archetype, PropensityProfile, ScenarioConfig};
use lncl_crowd::TaskKind;

const SEEDS: [u64; 3] = [0, 7, 1234];

#[test]
fn sentiment_generator_valid_across_seed_config_grid() {
    let tiny = SentimentDatasetConfig::tiny();
    let configs = vec![
        ("tiny", tiny.clone()),
        (
            "single-annotator",
            SentimentDatasetConfig {
                num_annotators: 1,
                min_labels_per_instance: 1,
                max_labels_per_instance: 1,
                ..tiny.clone()
            },
        ),
        (
            "redundancy-1",
            SentimentDatasetConfig { min_labels_per_instance: 1, max_labels_per_instance: 1, ..tiny.clone() },
        ),
        ("tiny-vocab", SentimentDatasetConfig { filler_vocab: 1, ..tiny.clone() }),
        ("all-spammers", SentimentDatasetConfig { spammer_fraction: 1.0, ..tiny.clone() }),
        ("no-contrast", SentimentDatasetConfig { but_fraction: 0.0, however_fraction: 0.0, ..tiny }),
    ];
    for seed in SEEDS {
        for (name, config) in &configs {
            let dataset = generate_sentiment(&SentimentDatasetConfig { seed, ..config.clone() });
            dataset.validate().unwrap_or_else(|e| panic!("sentiment/{name} seed {seed}: {e}"));
            assert_eq!(dataset.train.len(), config.train_size);
            assert!(dataset
                .train
                .iter()
                .all(|i| (config.min_labels_per_instance..=config.max_labels_per_instance)
                    .contains(&i.num_annotations())));
        }
    }
}

#[test]
fn ner_generator_valid_across_seed_config_grid() {
    let tiny = NerDatasetConfig::tiny();
    let configs = vec![
        ("tiny", tiny.clone()),
        (
            "single-annotator",
            NerDatasetConfig {
                num_annotators: 1,
                min_labels_per_instance: 1,
                max_labels_per_instance: 1,
                ..tiny.clone()
            },
        ),
        ("redundancy-1", NerDatasetConfig { min_labels_per_instance: 1, max_labels_per_instance: 1, ..tiny.clone() }),
        ("wide-redundancy", NerDatasetConfig { min_labels_per_instance: 1, max_labels_per_instance: 8, ..tiny }),
    ];
    for seed in SEEDS {
        for (name, config) in &configs {
            let dataset = generate_ner(&NerDatasetConfig { seed, ..config.clone() });
            dataset.validate().unwrap_or_else(|e| panic!("ner/{name} seed {seed}: {e}"));
            assert_eq!(dataset.train.len(), config.train_size);
        }
    }
}

#[test]
fn scenario_generator_valid_across_seed_mix_grid() {
    for seed in SEEDS {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            for (name, mix) in standard_mixes() {
                let config = ScenarioConfig::tiny(task).named(name).with_mix(mix).with_seed(seed);
                let dataset = generate_scenario(&config);
                dataset.validate().unwrap_or_else(|e| panic!("scenario/{task:?}/{name} seed {seed}: {e}"));
            }
        }
    }
}

#[test]
fn scenario_generator_valid_under_degenerate_configs() {
    for seed in SEEDS {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            let degenerate = vec![
                (
                    "single-annotator",
                    ScenarioConfig::tiny(task).with_annotators(1).with_redundancy(1, 1).with_sizes(12, 4, 4),
                ),
                ("redundancy-1", ScenarioConfig::tiny(task).with_redundancy(1, 1).with_sizes(12, 4, 4)),
                (
                    "tiny-vocab-uniform",
                    ScenarioConfig {
                        filler_vocab: 1,
                        ..ScenarioConfig::tiny(task).with_propensity(PropensityProfile::Uniform).with_sizes(12, 4, 4)
                    },
                ),
                (
                    "zero-fraction-entry",
                    ScenarioConfig::tiny(task)
                        .with_mix(vec![(Archetype::reliable(), 1.0), (Archetype::Spammer, 0.0)])
                        .with_sizes(12, 4, 4),
                ),
                ("extreme-imbalance", ScenarioConfig::tiny(task).with_majority_share(1.0).with_sizes(12, 4, 4)),
            ];
            for (name, config) in degenerate {
                let dataset = generate_scenario(&config.named(name).with_seed(seed));
                dataset.validate().unwrap_or_else(|e| panic!("scenario/{task:?}/{name} seed {seed}: {e}"));
            }
        }
    }
}
