//! Property tests for the closed-loop router (`scenario::router`): exact
//! budget accounting, bitwise determinism across same-seed runs, the
//! StaticRedundancy ↔ batch-dataset equivalence at full budget, and the
//! headline budget-efficiency claim — uncertainty routing at 60% of the
//! static label spend strictly beating static redundancy at full spend on
//! the drifted family the bench sweep ships.

use lncl_crowd::scenario::router::{
    run_closed_loop, ClosedLoopOutcome, LabelBudget, PolicyKind, RoutePlan, DEFAULT_CHECKPOINTS,
};
use lncl_crowd::scenario::{generate_scenario, Archetype, DriftSchedule, PropensityProfile, ScenarioConfig};
use lncl_crowd::truth::streaming::StreamingConfig;

/// A small pool with enough annotator diversity that every policy takes a
/// distinct path through it.
fn mixed_config() -> ScenarioConfig {
    ScenarioConfig::classification("router-props/mixed")
        .with_sizes(60, 10, 10)
        .with_annotators(8)
        .with_redundancy(3, 4)
        .with_propensity(PropensityProfile::Uniform)
        .with_mix(vec![(Archetype::Reliable { accuracy: 0.85 }, 0.6), (Archetype::Spammer, 0.4)])
        .with_seed(41)
}

/// The drifted family of `budget_curves` (same knobs, same seed): linear
/// annotator fatigue makes late static labels a liability, which is the
/// regime adaptive routing is supposed to win in.
fn drift_config() -> ScenarioConfig {
    ScenarioConfig::classification("router-props/drift")
        .with_sizes(120, 20, 20)
        .with_annotators(10)
        .with_redundancy(4, 4)
        .with_propensity(PropensityProfile::Uniform)
        .with_mix(vec![(Archetype::Reliable { accuracy: 0.85 }, 0.7), (Archetype::Spammer, 0.3)])
        .with_drift(DriftSchedule::LinearFatigue { rate: 0.6 })
        .with_seed(307)
}

fn run_with(config: &ScenarioConfig, policy: PolicyKind, fraction: f32, checkpoints: &[f32]) -> ClosedLoopOutcome {
    let dataset = generate_scenario(config);
    let mut boxed = policy.build();
    run_closed_loop(
        &dataset,
        boxed.as_mut(),
        RoutePlan::new(policy, fraction).budget_for(&dataset),
        StreamingConfig::pooled(dataset.num_classes),
        checkpoints,
        config.seed,
    )
}

fn run(config: &ScenarioConfig, policy: PolicyKind, fraction: f32) -> ClosedLoopOutcome {
    run_with(config, policy, fraction, &DEFAULT_CHECKPOINTS)
}

#[test]
fn budget_accounting_is_exact_for_every_policy() {
    let config = mixed_config();
    for policy in PolicyKind::ALL {
        for fraction in [0.3, 0.7, 1.0] {
            let outcome = run(&config, policy, fraction);
            let collected: usize = outcome.collected.iter().map(Vec::len).sum();
            // one budget unit per revealed label, no more, no less
            assert_eq!(outcome.labels_spent(), collected, "{policy:?}@{fraction}");
            assert_eq!(outcome.labels_spent(), outcome.assignments.len(), "{policy:?}@{fraction}");
            assert_eq!(outcome.labels_spent(), outcome.budget.spent(), "{policy:?}@{fraction}");
            assert!(outcome.budget.spent() <= outcome.budget.total(), "{policy:?}@{fraction}");
            // the curve's spend column is monotone and ends at the total
            let spends: Vec<usize> = outcome.curve.iter().map(|p| p.labels_spent).collect();
            assert!(spends.windows(2).all(|w| w[0] <= w[1]), "{policy:?}@{fraction}: {spends:?}");
            assert_eq!(*spends.last().unwrap(), outcome.labels_spent(), "{policy:?}@{fraction}");
        }
    }
}

#[test]
fn same_seed_runs_are_bitwise_identical() {
    let config = mixed_config();
    for policy in PolicyKind::ALL {
        let a = run(&config, policy, 0.8);
        let b = run(&config, policy, 0.8);
        assert_eq!(a.assignments, b.assignments, "{policy:?} assignment sequence diverged");
        assert_eq!(a.collected, b.collected, "{policy:?} collected labels diverged");
        assert_eq!(a.curve, b.curve, "{policy:?} curve diverged");
        assert_eq!(a.accuracy, b.accuracy, "{policy:?} accuracy diverged");
    }
}

#[test]
fn static_redundancy_at_full_budget_reproduces_the_batch_dataset() {
    let config = mixed_config();
    let dataset = generate_scenario(&config);
    let outcome = run(&config, PolicyKind::StaticRedundancy, 1.0);
    assert!(outcome.budget.is_exhausted(), "full budget must be fully spent");
    assert_eq!(outcome.labels_spent(), dataset.total_crowd_labels());
    // per instance, the revealed labels are exactly the batch generator's
    // labels as a multiset (reveal order may differ from stored order)
    for (instance, revealed) in dataset.train.iter().zip(&outcome.collected) {
        let mut expected = instance.crowd_labels.clone();
        let mut got = revealed.clone();
        expected.sort_by_key(|cl| cl.annotator);
        got.sort_by_key(|cl| cl.annotator);
        assert_eq!(got, expected, "label multiset mismatch on an instance");
    }
}

#[test]
fn uncertainty_routing_beats_static_redundancy_at_sixty_percent_budget() {
    // the acceptance claim behind BENCH_budget_curves.json: on the drifted
    // family, uncertainty routing at a 60% budget strictly beats static
    // redundancy at full budget, with strictly fewer labels spent.  A
    // single final checkpoint keeps the partial run's drain cadence on
    // plain round_size multiples — the same cadence the full-budget bench
    // sweep drains at (its checkpoint thresholds are 32-multiples here),
    // so this run ends bitwise in the sweep's recorded b0.60 state.
    let config = drift_config();
    let uncertainty = run_with(&config, PolicyKind::UncertaintyRouting, 0.6, &[1.0]);
    let static_full = run(&config, PolicyKind::StaticRedundancy, 1.0);
    assert!(
        uncertainty.labels_spent() <= (0.6 * static_full.labels_spent() as f32).ceil() as usize,
        "uncertainty spend {} exceeds 60% of static spend {}",
        uncertainty.labels_spent(),
        static_full.labels_spent()
    );
    assert!(
        uncertainty.accuracy > static_full.accuracy,
        "uncertainty@0.60 ({:.3} with {} labels) should strictly beat static@1.00 ({:.3} with {} labels)",
        uncertainty.accuracy,
        uncertainty.labels_spent(),
        static_full.accuracy,
        static_full.labels_spent()
    );
}

#[test]
fn checkpoint_states_match_the_corresponding_smaller_budget_runs() {
    // the prefix property the budget sweep relies on: the 0.6-checkpoint
    // of a full-budget run is bitwise the final state of a 0.6-budget run.
    // Alignment matters — both runs must drain on the same boundaries up
    // to the shared threshold, so the full run checkpoints at [0.6, 1.0]
    // (no interior thresholds below 0.6) and the partial run measures only
    // at its end.  An adaptive policy that stops early stops at the same
    // spend in both runs (identical history), so the assertions hold
    // unconditionally.
    let config = mixed_config();
    for policy in PolicyKind::ALL {
        let full = run_with(&config, policy, 1.0, &[0.6, 1.0]);
        let partial = run_with(&config, policy, 0.6, &[1.0]);
        let at = full.curve.iter().find(|p| p.budget_fraction == 0.6).expect("0.6 checkpoint");
        assert_eq!(at.labels_spent, partial.labels_spent(), "{policy:?}");
        assert_eq!(at.accuracy, partial.accuracy, "{policy:?}");
        assert_eq!(at.mean_entropy, partial.curve.last().unwrap().mean_entropy, "{policy:?}");
        assert_eq!(
            full.assignments[..at.labels_spent],
            partial.assignments[..],
            "{policy:?}: full-budget prefix diverged from the partial run"
        );
    }
}

#[test]
fn policies_never_overdraw_a_tiny_budget() {
    let config = mixed_config();
    let dataset = generate_scenario(&config);
    for policy in PolicyKind::ALL {
        let mut boxed = policy.build();
        let outcome = run_closed_loop(
            &dataset,
            boxed.as_mut(),
            LabelBudget::new(7),
            StreamingConfig::pooled(dataset.num_classes),
            &[1.0],
            config.seed,
        );
        assert!(outcome.labels_spent() <= 7, "{policy:?} overspent: {}", outcome.labels_spent());
        assert_eq!(outcome.labels_spent(), outcome.assignments.len());
    }
}
