//! The replay-equivalence contract of the incremental estimator
//! ([`lncl_crowd::truth::streaming`]): ingesting a dataset label-by-label
//! and running one finalization pass must reproduce the batch estimators —
//! bitwise when each unit's labels arrive in canonical (annotator-sorted)
//! order, within a tight tolerance otherwise, on a seeded grid over both
//! tasks and clean / mixed / drifted scenarios.  Pooled-mode convergence
//! must additionally be independent of the arrival interleaving.

use lncl_crowd::data::AnnotationView;
use lncl_crowd::scenario::{generate_scenario, Archetype, DriftSchedule, ScenarioConfig};
use lncl_crowd::truth::streaming::{StreamingConfig, StreamingTruth};
use lncl_crowd::truth::{DawidSkene, DsWindowed, TruthInference};
use lncl_crowd::TaskKind;
use lncl_tensor::TensorRng;

/// The scenario axis of the grid: a clean pool, an adversarial mix and a
/// mid-stream step drift, for one task.
fn grid_views(task: TaskKind) -> Vec<(String, AnnotationView)> {
    let base = ScenarioConfig::tiny(task);
    let task_name = match task {
        TaskKind::Classification => "cls",
        TaskKind::SequenceTagging => "tag",
    };
    let variants = vec![
        ("clean", base.clone()),
        (
            "mixed",
            base.clone().with_mix(vec![
                (Archetype::reliable(), 0.5),
                (Archetype::adversarial(), 0.25),
                (Archetype::pair_confuser(), 0.25),
            ]),
        ),
        ("drifted", base.with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.6 })),
    ];
    variants
        .into_iter()
        .flat_map(|(name, config)| {
            [3u64, 17].into_iter().map(move |seed| {
                let config = config.clone().named(format!("{task_name}/{name}/s{seed}")).with_seed(seed);
                (config.name.clone(), generate_scenario(&config).annotation_view())
            })
        })
        .collect()
}

fn max_posterior_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    assert_eq!(a.len(), b.len(), "unit-count mismatch");
    a.iter().zip(b).flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs())).fold(0.0f32, f32::max)
}

/// A copy of the view with each unit's labels in canonical
/// (annotator, class) order — the order `finalize` sorts into, so the
/// batch estimator's float-summation order matches the stream's exactly.
fn canonical(view: &AnnotationView) -> AnnotationView {
    let mut sorted = view.clone();
    for annotations in &mut sorted.annotations {
        annotations.sort();
    }
    sorted
}

#[test]
fn replayed_stream_matches_batch_ds_across_grid() {
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        for (name, view) in grid_views(task) {
            let mut stream = StreamingTruth::new(StreamingConfig::pooled(view.num_classes));
            stream.ingest_view(&view);
            stream.finalize();
            let batch = DawidSkene::default().infer(&view);
            let diff = max_posterior_diff(&stream.estimate().posteriors, &batch.posteriors);
            assert!(diff < 5e-4, "{name}: stream+finalize vs batch DS diff {diff}");
        }
    }
}

#[test]
fn replayed_stream_matches_batch_ds_windowed_across_grid() {
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        for (name, view) in grid_views(task) {
            let mut stream = StreamingTruth::new(StreamingConfig::windowed_default(view.num_classes));
            stream.ingest_view(&view);
            stream.finalize();
            let batch = DsWindowed::default().infer(&view);
            let diff = max_posterior_diff(&stream.estimate().posteriors, &batch.posteriors);
            assert!(diff < 5e-4, "{name}: stream+finalize vs batch DS-W diff {diff}");
        }
    }
}

#[test]
fn canonical_order_replay_is_bitwise_identical_to_batch() {
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        let view = canonical(&generate_scenario(&ScenarioConfig::tiny(task).with_seed(5)).annotation_view());
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(view.num_classes));
        stream.ingest_view(&view);
        stream.finalize();
        let batch = DawidSkene::default().infer(&view);
        let streamed = stream.estimate().posteriors;
        assert_eq!(
            streamed, batch.posteriors,
            "{task:?}: canonical-order replay must be bitwise identical to batch DS"
        );
    }
}

#[test]
fn pooled_convergence_is_independent_of_arrival_interleaving() {
    let view = generate_scenario(&ScenarioConfig::tiny(TaskKind::Classification).with_seed(9)).annotation_view();
    let labels: Vec<(usize, usize, usize)> =
        view.annotations.iter().enumerate().flat_map(|(u, anns)| anns.iter().map(move |&(a, c)| (u, a, c))).collect();

    let mut reference: Option<Vec<Vec<f32>>> = None;
    for seed in [1u64, 2, 3] {
        let mut order: Vec<usize> = (0..labels.len()).collect();
        let mut rng = TensorRng::seed_from_u64(seed);
        // Fisher–Yates over the arrival order
        for i in (1..order.len()).rev() {
            order.swap(i, rng.usize_below(i + 1));
        }
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(view.num_classes));
        for &i in &order {
            let (u, a, c) = labels[i];
            stream.ingest(u, a, c).expect("valid label");
        }
        stream.finalize();
        let posteriors = stream.estimate().posteriors;
        match &reference {
            None => reference = Some(posteriors),
            Some(reference) => {
                assert_eq!(reference, &posteriors, "interleaving seed {seed} changed the converged pooled state")
            }
        }
    }
}

#[test]
fn online_stream_stays_usable_between_finalizations() {
    // finalize mid-stream, keep ingesting, finalize again: the second
    // finalization must still match a batch run over everything
    let view = generate_scenario(&ScenarioConfig::tiny(TaskKind::Classification).with_seed(21)).annotation_view();
    let mut stream = StreamingTruth::new(StreamingConfig::pooled(view.num_classes));
    let half = view.annotations.len() / 2;
    for (u, annotations) in view.annotations.iter().enumerate().take(half) {
        for &(a, c) in annotations {
            stream.ingest(u, a, c).expect("valid label");
        }
    }
    stream.finalize();
    for (u, annotations) in view.annotations.iter().enumerate().skip(half) {
        for &(a, c) in annotations {
            stream.ingest(u, a, c).expect("valid label");
        }
    }
    stream.finalize();
    let batch = DawidSkene::default().infer(&view);
    let diff = max_posterior_diff(&stream.estimate().posteriors, &batch.posteriors);
    assert!(diff < 5e-4, "mid-stream finalization must not poison the final state, diff {diff}");
}
