//! Per-annotator workload and quality statistics — the data behind Figure 4
//! of the paper (boxplots of the number of annotated instances and of the
//! accuracy / F1 of the AMT annotators).

use crate::data::{CrowdDataset, TaskKind};
use crate::metrics::{annotator_accuracy, annotator_span_f1};
use lncl_tensor::stats::five_number_summary;

/// Statistics for a single annotator.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatorStat {
    /// Annotator index.
    pub annotator: usize,
    /// Number of training instances the annotator labelled.
    pub num_instances: usize,
    /// Accuracy (classification) or strict span F1 (sequence tagging)
    /// against the gold labels, if the annotator labelled anything.
    pub quality: Option<f32>,
}

/// Dataset-level summary of the annotator pool.
#[derive(Debug, Clone)]
pub struct AnnotatorSummary {
    /// Per-annotator statistics (indexed by annotator id).
    pub per_annotator: Vec<AnnotatorStat>,
    /// Five-number summary (min, q1, median, q3, max) of the instance
    /// counts of annotators that labelled at least one instance.
    pub instances_boxplot: [f32; 5],
    /// Five-number summary of the quality values.
    pub quality_boxplot: [f32; 5],
    /// Mean number of labels per training instance.
    pub avg_labels_per_instance: f32,
    /// Total number of crowd labels.
    pub total_labels: usize,
}

/// Computes the Figure-4 statistics for a dataset.
pub fn annotator_summary(dataset: &CrowdDataset) -> AnnotatorSummary {
    let mut per_annotator = Vec::with_capacity(dataset.num_annotators);
    for a in 0..dataset.num_annotators {
        let num_instances = dataset.train.iter().filter(|i| i.labels_by(a).is_some()).count();
        let quality = match dataset.task {
            TaskKind::Classification => annotator_accuracy(&dataset.train, a),
            TaskKind::SequenceTagging => annotator_span_f1(&dataset.train, a),
        };
        per_annotator.push(AnnotatorStat { annotator: a, num_instances, quality });
    }
    let counts: Vec<f32> =
        per_annotator.iter().filter(|s| s.num_instances > 0).map(|s| s.num_instances as f32).collect();
    let qualities: Vec<f32> = per_annotator.iter().filter_map(|s| s.quality).collect();
    let instances_boxplot = if counts.is_empty() { [0.0; 5] } else { five_number_summary(&counts) };
    let quality_boxplot = if qualities.is_empty() { [0.0; 5] } else { five_number_summary(&qualities) };
    AnnotatorSummary {
        per_annotator,
        instances_boxplot,
        quality_boxplot,
        avg_labels_per_instance: dataset.avg_annotations_per_instance(),
        total_labels: dataset.total_crowd_labels(),
    }
}

impl AnnotatorSummary {
    /// Indices of the `n` annotators with the most labels (the annotators
    /// shown individually in Figures 6a/7a).
    pub fn top_annotators(&self, n: usize) -> Vec<usize> {
        let mut ordered: Vec<(usize, usize)> =
            self.per_annotator.iter().map(|s| (s.annotator, s.num_instances)).collect();
        ordered.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        ordered.into_iter().take(n).map(|(a, _)| a).collect()
    }

    /// Annotators that labelled more than `min_instances` instances (Figure
    /// 6b excludes annotators with five or fewer labels).
    pub fn active_annotators(&self, min_instances: usize) -> Vec<usize> {
        self.per_annotator.iter().filter(|s| s.num_instances > min_instances).map(|s| s.annotator).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_sentiment, SentimentDatasetConfig};

    #[test]
    fn summary_covers_all_annotators() {
        let data = generate_sentiment(&SentimentDatasetConfig::tiny());
        let summary = annotator_summary(&data);
        assert_eq!(summary.per_annotator.len(), data.num_annotators);
        assert_eq!(summary.total_labels, data.total_crowd_labels());
        assert!(summary.avg_labels_per_instance > 0.0);
    }

    #[test]
    fn boxplots_are_ordered() {
        let data = generate_sentiment(&SentimentDatasetConfig::tiny());
        let s = annotator_summary(&data);
        for w in s.instances_boxplot.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for w in s.quality_boxplot.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // sentiment annotator accuracies live in [0, 1]
        assert!(s.quality_boxplot[0] >= 0.0 && s.quality_boxplot[4] <= 1.0);
    }

    #[test]
    fn top_annotators_sorted_by_workload() {
        let data = generate_sentiment(&SentimentDatasetConfig::tiny());
        let s = annotator_summary(&data);
        let top = s.top_annotators(3);
        assert_eq!(top.len(), 3);
        let count = |a: usize| s.per_annotator[a].num_instances;
        assert!(count(top[0]) >= count(top[1]));
        assert!(count(top[1]) >= count(top[2]));
    }

    #[test]
    fn active_annotators_respect_threshold() {
        let data = generate_sentiment(&SentimentDatasetConfig::tiny());
        let s = annotator_summary(&data);
        for a in s.active_annotators(5) {
            assert!(s.per_annotator[a].num_instances > 5);
        }
    }
}
