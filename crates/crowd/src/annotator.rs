//! Simulated crowd annotators.
//!
//! The original datasets were annotated on Amazon Mechanical Turk; those
//! labels are not redistributable here, so the generators in
//! [`crate::datasets`] use the simulators in this module instead (DESIGN.md
//! §1).  Two kinds of annotators are provided:
//!
//! * [`ConfusionAnnotator`] — the classic per-annotator confusion-matrix
//!   model (exactly the generative assumption behind Dawid–Skene, Raykar,
//!   AggNet and Logic-LNCL itself), used for sentence classification.
//! * [`NerAnnotator`] — a sequence annotator that commits the three error
//!   types the paper describes for the NER corpus: *ignore* errors (an
//!   entity is left unannotated), *boundary* errors (right type, wrong
//!   span) and *span-type* errors (right span, wrong type).

use lncl_tensor::{Matrix, TensorRng};

// The weighted-without-replacement draw used to be defined here; it now
// lives in [`crate::sampling`] so scenario generation and the closed-loop
// router policies provably share one implementation.  Re-exported because
// callers think of it as the annotator-pool selection primitive.
pub use crate::sampling::select_weighted_distinct;

/// An annotator whose behaviour is a `K x K` confusion matrix: row `m` is
/// the distribution over reported labels when the true class is `m`.
#[derive(Debug, Clone)]
pub struct ConfusionAnnotator {
    confusion: Matrix,
}

impl ConfusionAnnotator {
    /// Creates an annotator from an explicit confusion matrix (rows must be
    /// probability distributions).
    pub fn new(confusion: Matrix) -> Self {
        assert_eq!(confusion.rows(), confusion.cols(), "confusion matrix must be square");
        for r in 0..confusion.rows() {
            let sum: f32 = confusion.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "confusion row {r} sums to {sum}, expected 1");
            assert!(confusion.row(r).iter().all(|&p| p >= 0.0), "negative probability in row {r}");
        }
        Self { confusion }
    }

    /// Creates an annotator with the given per-class accuracy: the diagonal
    /// is `accuracy` and the remaining mass is spread uniformly over the
    /// other classes.
    pub fn with_accuracy(num_classes: usize, accuracy: f32) -> Self {
        assert!(num_classes >= 2, "need at least 2 classes");
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be in [0,1]");
        let off = (1.0 - accuracy) / (num_classes - 1) as f32;
        let confusion = Matrix::from_fn(num_classes, num_classes, |r, c| if r == c { accuracy } else { off });
        Self::new(confusion)
    }

    /// Creates an annotator by perturbing a target accuracy with Dirichlet
    /// noise, which yields asymmetric, realistic confusion matrices.
    pub fn sample(num_classes: usize, accuracy: f32, concentration: f32, rng: &mut TensorRng) -> Self {
        assert!(num_classes >= 2, "need at least 2 classes");
        let mut confusion = Matrix::zeros(num_classes, num_classes);
        for r in 0..num_classes {
            // Dirichlet over the off-diagonal mass, diagonal pinned near `accuracy`.
            let diag = (accuracy + rng.normal_with(0.0, 0.05)).clamp(0.02, 0.98);
            let off = rng.dirichlet(num_classes - 1, concentration);
            let mut c_idx = 0;
            for c in 0..num_classes {
                if c == r {
                    confusion[(r, c)] = diag;
                } else {
                    confusion[(r, c)] = (1.0 - diag) * off[c_idx];
                    c_idx += 1;
                }
            }
        }
        Self { confusion }
    }

    /// The underlying confusion matrix.
    pub fn confusion(&self) -> &Matrix {
        &self.confusion
    }

    /// Overall reliability: mean of the diagonal (the statistic plotted in
    /// Figures 6b/7b of the paper).
    pub fn reliability(&self) -> f32 {
        let k = self.confusion.rows();
        (0..k).map(|i| self.confusion[(i, i)]).sum::<f32>() / k as f32
    }

    /// Samples a reported label for a unit whose true class is `truth`.
    pub fn annotate(&self, truth: usize, rng: &mut TensorRng) -> usize {
        rng.categorical(self.confusion.row(truth))
    }

    /// Annotates a whole sequence independently per unit.
    pub fn annotate_sequence(&self, truth: &[usize], rng: &mut TensorRng) -> Vec<usize> {
        truth.iter().map(|&t| self.annotate(t, rng)).collect()
    }
}

/// Pool of confusion-matrix annotators with a long-tailed workload
/// distribution, mirroring the statistics reported in Figure 4 of the paper
/// (a few prolific annotators, many occasional ones, abilities ranging from
/// near-random to expert).
#[derive(Debug, Clone)]
pub struct AnnotatorPool {
    /// The annotators.
    pub annotators: Vec<ConfusionAnnotator>,
    /// Relative propensity of each annotator to pick up a task (unnormalised).
    pub propensity: Vec<f32>,
}

impl AnnotatorPool {
    /// Generates `num_annotators` annotators whose accuracies are drawn from
    /// a mixture: `spammer_fraction` of them are near-random (accuracy ≈ 1/K
    /// … 0.6) and the rest are competent (accuracy ≈ 0.6 … 0.95).
    pub fn generate(num_annotators: usize, num_classes: usize, spammer_fraction: f32, rng: &mut TensorRng) -> Self {
        assert!(num_annotators > 0, "need at least one annotator");
        let mut annotators = Vec::with_capacity(num_annotators);
        let mut propensity = Vec::with_capacity(num_annotators);
        let chance = 1.0 / num_classes as f32;
        for _ in 0..num_annotators {
            let accuracy = if rng.bernoulli(spammer_fraction) {
                rng.uniform_range(chance.min(0.45), 0.6)
            } else {
                rng.uniform_range(0.6, 0.95)
            };
            annotators.push(ConfusionAnnotator::sample(num_classes, accuracy, 1.0, rng));
            // long-tailed workload: Pareto-ish propensity
            propensity.push((1.0 / rng.uniform_range(0.02, 1.0)).min(60.0));
        }
        Self { annotators, propensity }
    }

    /// Number of annotators.
    pub fn len(&self) -> usize {
        self.annotators.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.annotators.is_empty()
    }

    /// Selects `count` distinct annotators for one instance, biased by
    /// propensity.  When `count` exceeds the number of annotators with
    /// non-zero propensity, the remaining slots are filled uniformly over
    /// the not-yet-chosen annotators (see [`select_weighted_distinct`]).
    pub fn select(&self, count: usize, rng: &mut TensorRng) -> Vec<usize> {
        select_weighted_distinct(&self.propensity, count, rng)
    }

    /// True confusion matrices (used to evaluate the estimates in Figures
    /// 6/7).
    pub fn true_confusions(&self) -> Vec<Matrix> {
        self.annotators.iter().map(|a| a.confusion().clone()).collect()
    }
}

/// Configuration of the NER sequence annotator error model.
#[derive(Debug, Clone, Copy)]
pub struct NerErrorRates {
    /// Probability that an entity is ignored entirely (all tokens -> O).
    pub ignore: f32,
    /// Probability that an entity's span is shifted/shrunk (boundary error).
    pub boundary: f32,
    /// Probability that an entity's type is replaced by another type.
    pub span_type: f32,
    /// Per-token probability of spuriously tagging an O token as B-`<type>`.
    pub spurious: f32,
}

impl NerErrorRates {
    /// A competent annotator.
    pub fn good() -> Self {
        Self { ignore: 0.08, boundary: 0.06, span_type: 0.05, spurious: 0.005 }
    }

    /// A sloppy annotator.
    pub fn poor() -> Self {
        Self { ignore: 0.45, boundary: 0.25, span_type: 0.25, spurious: 0.03 }
    }

    /// Linear interpolation between [`NerErrorRates::good`] (q=1) and
    /// [`NerErrorRates::poor`] (q=0).
    pub fn with_quality(quality: f32) -> Self {
        let q = quality.clamp(0.0, 1.0);
        let good = Self::good();
        let poor = Self::poor();
        let mix = |g: f32, p: f32| p + (g - p) * q;
        Self {
            ignore: mix(good.ignore, poor.ignore),
            boundary: mix(good.boundary, poor.boundary),
            span_type: mix(good.span_type, poor.span_type),
            spurious: mix(good.spurious, poor.spurious),
        }
    }
}

/// A simulated NER annotator operating on BIO label sequences.
///
/// Label encoding convention (shared with [`crate::datasets::ner`]):
/// class `0` is `O`; classes `1 + 2*t` and `2 + 2*t` are `B-<type t>` and
/// `I-<type t>` for entity types `t = 0..num_types`.
#[derive(Debug, Clone)]
pub struct NerAnnotator {
    rates: NerErrorRates,
    num_types: usize,
}

impl NerAnnotator {
    /// Creates an annotator over `num_types` entity types with the given
    /// error rates.
    pub fn new(num_types: usize, rates: NerErrorRates) -> Self {
        assert!(num_types >= 1, "need at least one entity type");
        Self { rates, num_types }
    }

    /// Number of BIO classes (`1 + 2 * num_types`).
    pub fn num_classes(&self) -> usize {
        1 + 2 * self.num_types
    }

    /// The error-rate configuration.
    pub fn rates(&self) -> &NerErrorRates {
        &self.rates
    }

    /// Produces a noisy BIO sequence for a sentence with gold labels `gold`.
    pub fn annotate(&self, gold: &[usize], rng: &mut TensorRng) -> Vec<usize> {
        let mut out = vec![0usize; gold.len()];
        let spans = gold_spans(gold);
        for (start, end, ty) in &spans {
            let (start, end, ty) = (*start, *end, *ty);
            if rng.bernoulli(self.rates.ignore) {
                continue; // ignore error: leave as O
            }
            let ty = if rng.bernoulli(self.rates.span_type) {
                // span-type error: pick a different type
                let mut new_ty = rng.usize_below(self.num_types);
                if self.num_types > 1 {
                    while new_ty == ty {
                        new_ty = rng.usize_below(self.num_types);
                    }
                }
                new_ty
            } else {
                ty
            };
            let (mut s, mut e) = (start, end);
            if rng.bernoulli(self.rates.boundary) {
                // boundary error: shift the start right or the end left (or extend by one)
                match rng.usize_below(3) {
                    0 if e - s > 1 => s += 1,
                    1 if e - s > 1 => e -= 1,
                    _ => e = (e + 1).min(gold.len()),
                }
            }
            if s < e {
                out[s] = 1 + 2 * ty;
                for slot in out.iter_mut().take(e).skip(s + 1) {
                    *slot = 2 + 2 * ty;
                }
            }
        }
        // spurious entities on O tokens
        for (i, slot) in out.iter_mut().enumerate() {
            if gold[i] == 0 && *slot == 0 && rng.bernoulli(self.rates.spurious) {
                *slot = 1 + 2 * rng.usize_below(self.num_types);
            }
        }
        out
    }
}

/// Extracts `(start, end_exclusive, type)` spans from a BIO sequence using
/// the encoding described on [`NerAnnotator`].
pub fn gold_spans(labels: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < labels.len() {
        let l = labels[i];
        if l != 0 && (l - 1).is_multiple_of(2) {
            // B-`<type>`
            let ty = (l - 1) / 2;
            let mut j = i + 1;
            while j < labels.len() && labels[j] == l + 1 {
                j += 1;
            }
            spans.push((i, j, ty));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_accuracy_builds_valid_confusion() {
        let a = ConfusionAnnotator::with_accuracy(3, 0.7);
        let c = a.confusion();
        assert!((c[(0, 0)] - 0.7).abs() < 1e-6);
        assert!((c[(0, 1)] - 0.15).abs() < 1e-6);
        assert!((a.reliability() - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn new_rejects_non_stochastic_matrix() {
        let _ = ConfusionAnnotator::new(Matrix::from_rows(&[&[0.9, 0.3], &[0.5, 0.5]]));
    }

    #[test]
    fn sampled_confusions_are_row_stochastic() {
        let mut rng = TensorRng::seed_from_u64(0);
        for _ in 0..20 {
            let a = ConfusionAnnotator::sample(4, 0.8, 1.0, &mut rng);
            for r in 0..4 {
                let sum: f32 = a.confusion().row(r).iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn accurate_annotator_mostly_correct() {
        let mut rng = TensorRng::seed_from_u64(1);
        let a = ConfusionAnnotator::with_accuracy(2, 0.9);
        let correct = (0..2000).filter(|_| a.annotate(1, &mut rng) == 1).count();
        let rate = correct as f32 / 2000.0;
        assert!((rate - 0.9).abs() < 0.03, "empirical accuracy {rate}");
    }

    #[test]
    fn pool_selects_distinct_annotators() {
        let mut rng = TensorRng::seed_from_u64(2);
        let pool = AnnotatorPool::generate(20, 2, 0.2, &mut rng);
        let chosen = pool.select(6, &mut rng);
        let mut dedup = chosen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        assert!(chosen.iter().all(|&i| i < 20));
    }

    #[test]
    fn select_caps_count_at_pool_size() {
        let mut rng = TensorRng::seed_from_u64(42);
        let pool =
            AnnotatorPool { annotators: vec![ConfusionAnnotator::with_accuracy(2, 0.9); 3], propensity: vec![0.0; 3] };
        let chosen = pool.select(10, &mut rng);
        let mut dedup = chosen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "capped at pool size, all distinct: {chosen:?}");
    }

    #[test]
    fn pool_spammer_fraction_affects_mean_accuracy() {
        let mut rng = TensorRng::seed_from_u64(3);
        let clean = AnnotatorPool::generate(60, 2, 0.0, &mut rng);
        let noisy = AnnotatorPool::generate(60, 2, 0.9, &mut rng);
        let mean = |p: &AnnotatorPool| p.annotators.iter().map(|a| a.reliability()).sum::<f32>() / p.len() as f32;
        assert!(mean(&clean) > mean(&noisy) + 0.1);
    }

    #[test]
    fn gold_spans_roundtrip() {
        // O B-PER I-PER O B-LOC
        let labels = vec![0, 1, 2, 0, 3];
        assert_eq!(gold_spans(&labels), vec![(1, 3, 0), (4, 5, 1)]);
        assert!(gold_spans(&[0, 0, 0]).is_empty());
    }

    #[test]
    fn perfect_ner_annotator_reproduces_gold() {
        let mut rng = TensorRng::seed_from_u64(4);
        let a = NerAnnotator::new(4, NerErrorRates { ignore: 0.0, boundary: 0.0, span_type: 0.0, spurious: 0.0 });
        let gold = vec![0, 1, 2, 0, 7, 8, 8, 0];
        assert_eq!(a.annotate(&gold, &mut rng), gold);
    }

    #[test]
    fn ignore_only_annotator_never_invents_entities() {
        let mut rng = TensorRng::seed_from_u64(5);
        let a = NerAnnotator::new(4, NerErrorRates { ignore: 1.0, boundary: 0.0, span_type: 0.0, spurious: 0.0 });
        let gold = vec![0, 1, 2, 0, 3, 4];
        assert_eq!(a.annotate(&gold, &mut rng), vec![0; 6]);
    }

    #[test]
    fn poor_annotator_makes_more_mistakes_than_good() {
        let mut rng = TensorRng::seed_from_u64(6);
        let gold = vec![0, 1, 2, 0, 3, 0, 5, 6, 6, 0, 0, 7, 0, 1, 2, 2];
        let good = NerAnnotator::new(4, NerErrorRates::good());
        let poor = NerAnnotator::new(4, NerErrorRates::poor());
        let acc = |ann: &NerAnnotator, rng: &mut TensorRng| {
            let mut correct = 0;
            let mut total = 0;
            for _ in 0..300 {
                let noisy = ann.annotate(&gold, rng);
                correct += noisy.iter().zip(&gold).filter(|(a, b)| a == b).count();
                total += gold.len();
            }
            correct as f32 / total as f32
        };
        assert!(acc(&good, &mut rng) > acc(&poor, &mut rng) + 0.05);
    }

    #[test]
    fn quality_interpolation_is_monotone() {
        let hi = NerErrorRates::with_quality(1.0);
        let lo = NerErrorRates::with_quality(0.0);
        let mid = NerErrorRates::with_quality(0.5);
        assert!(hi.ignore < mid.ignore && mid.ignore < lo.ignore);
    }

    #[test]
    fn ner_annotator_output_always_valid_bio_start() {
        // outputs should never start a span with an I- tag right after O
        let mut rng = TensorRng::seed_from_u64(7);
        let a = NerAnnotator::new(4, NerErrorRates::poor());
        let gold = vec![0, 1, 2, 2, 0, 5, 6, 0, 3, 4, 4, 0];
        for _ in 0..200 {
            let noisy = a.annotate(&gold, &mut rng);
            for i in 0..noisy.len() {
                let l = noisy[i];
                if l != 0 && l.is_multiple_of(2) {
                    // I- tag: previous must be the matching B- or I-
                    let prev = if i == 0 { 0 } else { noisy[i - 1] };
                    assert!(prev == l || prev == l - 1, "invalid BIO transition at {i}: {:?}", noisy);
                }
            }
        }
    }
}
