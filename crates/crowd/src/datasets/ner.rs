//! Synthetic stand-in for the CoNLL-2003 NER (MTurk) dataset.
//!
//! The original corpus has 5,985 training sentences annotated by 47 AMT
//! workers whose F1 against the gold spans ranges from 17.6% to 89.1%, over
//! 9 BIO classes (`O`, `B/I-PER`, `B/I-LOC`, `B/I-ORG`, `B/I-MISC`).  This
//! generator builds template sentences with gazetteer entities and simulates
//! annotators that commit the three error types the paper lists (ignore,
//! boundary, span-type), with a wide spread of per-annotator quality.

use crate::annotator::{NerAnnotator, NerErrorRates};
use crate::data::{CrowdDataset, CrowdLabel, Instance, TaskKind};
use lncl_tensor::TensorRng;

/// Number of entity types (PER, LOC, ORG, MISC).
pub const NUM_ENTITY_TYPES: usize = 4;
/// Number of BIO classes (`O` + B/I per type).
pub const NUM_BIO_CLASSES: usize = 1 + 2 * NUM_ENTITY_TYPES;

/// Configuration for the synthetic NER corpus.
#[derive(Debug, Clone)]
pub struct NerDatasetConfig {
    /// Number of training sentences (paper: 5,985).
    pub train_size: usize,
    /// Number of development sentences (paper: 2,000).
    pub dev_size: usize,
    /// Number of test sentences (paper: 1,250).
    pub test_size: usize,
    /// Number of crowd annotators (paper: 47).
    pub num_annotators: usize,
    /// Minimum annotators per training sentence.
    pub min_labels_per_instance: usize,
    /// Maximum annotators per training sentence.
    pub max_labels_per_instance: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NerDatasetConfig {
    fn default() -> Self {
        Self {
            train_size: 700,
            dev_size: 200,
            test_size: 200,
            num_annotators: 30,
            min_labels_per_instance: 3,
            max_labels_per_instance: 6,
            seed: 11,
        }
    }
}

impl NerDatasetConfig {
    /// A configuration whose scale mirrors the paper's dataset.
    pub fn paper_scale() -> Self {
        Self { train_size: 5985, dev_size: 2000, test_size: 1250, num_annotators: 47, ..Self::default() }
    }

    /// A very small configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self { train_size: 80, dev_size: 30, test_size: 30, num_annotators: 10, ..Self::default() }
    }
}

const FIRST_NAMES: &[&str] = &["john", "maria", "pedro", "yuki", "fatima", "ivan", "li", "anna", "carlos", "amara"];
const LAST_NAMES: &[&str] =
    &["smith", "garcia", "tanaka", "petrov", "okafor", "mueller", "rossi", "kim", "haddad", "jensen"];
const LOCATIONS: &[&str] = &[
    "london", "tokyo", "nairobi", "paris", "madrid", "beijing", "cairo", "lima", "oslo", "sydney", "germany", "brazil",
    "canada", "kenya", "france",
];
const ORG_HEADS: &[&str] = &["united", "national", "general", "global", "first", "royal"];
const ORG_TAILS: &[&str] = &["bank", "university", "airlines", "motors", "institute", "press", "federation"];
const MISC_WORDS: &[&str] = &["olympics", "ramadan", "oscar", "worldcup", "easter", "brexit", "nobel"];
const FILLER_WORDS: &[&str] = &[
    "the",
    "a",
    "said",
    "on",
    "in",
    "yesterday",
    "today",
    "officials",
    "reported",
    "met",
    "visited",
    "announced",
    "after",
    "before",
    "during",
    "with",
    "against",
    "near",
    "talks",
    "match",
    "game",
    "market",
    "shares",
    "rose",
    "fell",
    "percent",
    "season",
    "minister",
    "president",
    "team",
    "spokesman",
    "signed",
    "deal",
    "new",
    "first",
    "week",
    "year",
    "quarter",
    "profits",
    "results",
];

pub(crate) struct Vocab {
    words: Vec<String>,
    first: Vec<usize>,
    last: Vec<usize>,
    loc: Vec<usize>,
    org_head: Vec<usize>,
    org_tail: Vec<usize>,
    misc: Vec<usize>,
    filler: Vec<usize>,
}

fn build_vocab() -> Vocab {
    let mut words = vec!["<pad>".to_string()];
    let push_all = |list: &[&str], words: &mut Vec<String>| -> Vec<usize> {
        list.iter()
            .map(|w| {
                words.push(w.to_string());
                words.len() - 1
            })
            .collect()
    };
    let first = push_all(FIRST_NAMES, &mut words);
    let last = push_all(LAST_NAMES, &mut words);
    let loc = push_all(LOCATIONS, &mut words);
    let org_head = push_all(ORG_HEADS, &mut words);
    let org_tail = push_all(ORG_TAILS, &mut words);
    let misc = push_all(MISC_WORDS, &mut words);
    let filler = push_all(FILLER_WORDS, &mut words);
    Vocab { words, first, last, loc, org_head, org_tail, misc, filler }
}

/// BIO class names in index order.
pub fn bio_class_names() -> Vec<String> {
    vec![
        "O".into(),
        "B-PER".into(),
        "I-PER".into(),
        "B-LOC".into(),
        "I-LOC".into(),
        "B-ORG".into(),
        "I-ORG".into(),
        "B-MISC".into(),
        "I-MISC".into(),
    ]
}

/// The gold-text model behind the synthetic NER corpus: gazetteer
/// vocabulary plus the template-sentence sampler, with a configurable
/// entity-type prior (uniform for the paper's corpus; skewed by the
/// class-imbalance scenarios in [`crate::scenario`]).
pub struct NerTextModel {
    vocab: Vocab,
    /// Unnormalised sampling weight per entity type; `None` keeps the
    /// original uniform `usize_below` draw (bitwise-identical corpora).
    type_weights: Option<[f32; NUM_ENTITY_TYPES]>,
}

impl NerTextModel {
    /// The uniform-entity-type model used by [`generate_ner`].
    pub fn new() -> Self {
        Self { vocab: build_vocab(), type_weights: None }
    }

    /// A model whose entity types are drawn from the given unnormalised
    /// weights (class-imbalance scenarios).
    pub fn with_type_weights(type_weights: [f32; NUM_ENTITY_TYPES]) -> Self {
        assert!(type_weights.iter().all(|&w| w >= 0.0), "entity-type weights must be non-negative");
        assert!(type_weights.iter().sum::<f32>() > 0.0, "entity-type weights must not all be zero");
        Self { vocab: build_vocab(), type_weights: Some(type_weights) }
    }

    /// The vocabulary (index = token id; id 0 is the padding token).
    pub fn vocab(&self) -> &[String] {
        &self.vocab.words
    }

    /// Consumes the model, returning the vocabulary.
    pub fn into_vocab(self) -> Vec<String> {
        self.vocab.words
    }

    /// Generates one gold sentence: returns token ids and BIO labels.
    pub fn sentence(&self, rng: &mut TensorRng) -> (Vec<usize>, Vec<usize>) {
        make_sentence_with(&self.vocab, self.type_weights.as_ref(), rng)
    }
}

impl Default for NerTextModel {
    fn default() -> Self {
        Self::new()
    }
}

fn make_sentence_with(
    vocab: &Vocab,
    type_weights: Option<&[f32; NUM_ENTITY_TYPES]>,
    rng: &mut TensorRng,
) -> (Vec<usize>, Vec<usize>) {
    let mut tokens = Vec::new();
    let mut labels = Vec::new();
    let pick = |ids: &[usize], rng: &mut TensorRng| ids[rng.usize_below(ids.len())];
    let push_filler = |n: usize, tokens: &mut Vec<usize>, labels: &mut Vec<usize>, rng: &mut TensorRng| {
        for _ in 0..n {
            tokens.push(pick(&vocab.filler, rng));
            labels.push(0);
        }
    };
    let num_entities = 1 + rng.usize_below(3);
    push_filler(1 + rng.usize_below(3), &mut tokens, &mut labels, rng);
    for _ in 0..num_entities {
        let ty = match type_weights {
            None => rng.usize_below(NUM_ENTITY_TYPES),
            Some(weights) => rng.categorical(&weights[..]),
        };
        match ty {
            0 => {
                // PER: first [last]
                tokens.push(pick(&vocab.first, rng));
                labels.push(1);
                if rng.bernoulli(0.7) {
                    tokens.push(pick(&vocab.last, rng));
                    labels.push(2);
                }
            }
            1 => {
                tokens.push(pick(&vocab.loc, rng));
                labels.push(3);
                if rng.bernoulli(0.2) {
                    tokens.push(pick(&vocab.loc, rng));
                    labels.push(4);
                }
            }
            2 => {
                // ORG: [head] tail
                if rng.bernoulli(0.6) {
                    tokens.push(pick(&vocab.org_head, rng));
                    labels.push(5);
                    tokens.push(pick(&vocab.org_tail, rng));
                    labels.push(6);
                } else {
                    tokens.push(pick(&vocab.org_tail, rng));
                    labels.push(5);
                }
            }
            _ => {
                tokens.push(pick(&vocab.misc, rng));
                labels.push(7);
                if rng.bernoulli(0.15) {
                    tokens.push(pick(&vocab.misc, rng));
                    labels.push(8);
                }
            }
        }
        push_filler(1 + rng.usize_below(4), &mut tokens, &mut labels, rng);
    }
    (tokens, labels)
}

/// Generates the synthetic NER corpus.
pub fn generate_ner(config: &NerDatasetConfig) -> CrowdDataset {
    assert!(config.num_annotators >= config.max_labels_per_instance, "annotator pool smaller than labels per instance");
    let mut rng = TensorRng::seed_from_u64(config.seed);
    let text = NerTextModel::new();

    // annotator pool with quality spanning weak to strong, long-tailed workload
    let annotators: Vec<NerAnnotator> = (0..config.num_annotators)
        .map(|_| {
            let quality = rng.uniform_range(0.05, 0.95);
            NerAnnotator::new(NUM_ENTITY_TYPES, NerErrorRates::with_quality(quality))
        })
        .collect();
    let propensity: Vec<f32> =
        (0..config.num_annotators).map(|_| (1.0 / rng.uniform_range(0.03, 1.0)).min(40.0)).collect();

    let mut train = Vec::with_capacity(config.train_size);
    for _ in 0..config.train_size {
        let (tokens, gold) = text.sentence(&mut rng);
        let span = config.max_labels_per_instance - config.min_labels_per_instance + 1;
        let count = config.min_labels_per_instance + rng.usize_below(span);
        let crowd_labels = crate::sampling::select_weighted_distinct(&propensity, count, &mut rng)
            .into_iter()
            .map(|a| CrowdLabel { annotator: a, labels: annotators[a].annotate(&gold, &mut rng) })
            .collect();
        train.push(Instance { tokens, gold, crowd_labels });
    }
    let mut make_eval = |size: usize| -> Vec<Instance> {
        (0..size)
            .map(|_| {
                let (tokens, gold) = text.sentence(&mut rng);
                Instance { tokens, gold, crowd_labels: Vec::new() }
            })
            .collect()
    };
    let dev = make_eval(config.dev_size);
    let test = make_eval(config.test_size);

    let dataset = CrowdDataset {
        task: TaskKind::SequenceTagging,
        num_classes: NUM_BIO_CLASSES,
        num_annotators: config.num_annotators,
        vocab: text.into_vocab(),
        class_names: bio_class_names(),
        train,
        dev,
        test,
        but_token: None,
        however_token: None,
    };
    #[cfg(debug_assertions)]
    if let Err(message) = dataset.validate() {
        panic!("generate_ner produced an invalid dataset: {message}");
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::gold_spans;

    fn tiny() -> CrowdDataset {
        generate_ner(&NerDatasetConfig::tiny())
    }

    #[test]
    fn generated_dataset_is_valid() {
        let data = tiny();
        assert!(data.validate().is_ok());
        assert_eq!(data.task, TaskKind::SequenceTagging);
        assert_eq!(data.num_classes, 9);
        assert_eq!(data.class_names.len(), 9);
        assert_eq!(data.train.len(), 80);
    }

    #[test]
    fn gold_sequences_are_valid_bio() {
        let data = tiny();
        for inst in data.train.iter().chain(&data.dev).chain(&data.test) {
            for (i, &l) in inst.gold.iter().enumerate() {
                if l != 0 && l % 2 == 0 {
                    let prev = if i == 0 { 0 } else { inst.gold[i - 1] };
                    assert!(prev == l || prev == l - 1, "invalid gold BIO at {i}: {:?}", inst.gold);
                }
            }
        }
    }

    #[test]
    fn every_sentence_contains_at_least_one_entity() {
        let data = tiny();
        for inst in &data.train {
            assert!(!gold_spans(&inst.gold).is_empty(), "sentence without entity: {:?}", inst.gold);
        }
    }

    #[test]
    fn generation_is_reproducible_and_seed_sensitive() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.train, b.train);
        let c = generate_ner(&NerDatasetConfig { seed: 99, ..NerDatasetConfig::tiny() });
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn annotator_quality_varies_widely() {
        // The paper reports per-annotator F1 between 17.6% and 89.1%; the
        // simulated pool should likewise span a wide strict-F1 range.
        let data = generate_ner(&NerDatasetConfig::default());
        let f1s: Vec<f32> =
            (0..data.num_annotators).filter_map(|a| crate::metrics::annotator_span_f1(&data.train, a)).collect();
        assert!(f1s.len() > 5);
        let min = f1s.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = f1s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.3, "annotator F1 should span a wide range: {min}..{max}");
        assert!(max > 0.7, "best annotator should be strong: {max}");
    }

    #[test]
    fn crowd_labels_align_with_token_count() {
        let data = tiny();
        for inst in &data.train {
            for cl in &inst.crowd_labels {
                assert_eq!(cl.labels.len(), inst.tokens.len());
            }
        }
    }
}
