//! Synthetic stand-in for the Sentiment Polarity (MTurk) dataset.
//!
//! The original corpus consists of movie-review sentences labelled
//! positive/negative, with 27,747 crowd labels from 203 AMT annotators
//! (≈5.55 labels per sentence).  This generator reproduces the *learning
//! problem*:
//!
//! * sentences are bags of lexicon words whose polarity correlates with the
//!   gold label;
//! * a configurable fraction of sentences have the contrastive
//!   `A-but-B` structure the paper's logic rule (Eq. 16/17) exploits — the
//!   clause *after* "but" carries the sentence sentiment while the clause
//!   before it leans the other way;
//! * a smaller fraction use "however", a weaker contrast marker (the
//!   `our-other-rules` ablation of Table IV);
//! * crowd labels come from per-annotator confusion matrices with a
//!   long-tailed workload distribution (Figure 4 statistics).

use crate::annotator::AnnotatorPool;
use crate::data::{CrowdDataset, CrowdLabel, Instance, TaskKind};
use lncl_tensor::TensorRng;

/// Configuration for the synthetic sentiment corpus.
#[derive(Debug, Clone)]
pub struct SentimentDatasetConfig {
    /// Number of training sentences (paper: 4,999).
    pub train_size: usize,
    /// Number of development sentences (paper: 3,000).
    pub dev_size: usize,
    /// Number of test sentences (paper: 2,789).
    pub test_size: usize,
    /// Number of crowd annotators (paper: 203).
    pub num_annotators: usize,
    /// Minimum annotators per training sentence.
    pub min_labels_per_instance: usize,
    /// Maximum annotators per training sentence (paper average ≈ 5.55).
    pub max_labels_per_instance: usize,
    /// Fraction of near-random annotators in the pool.
    pub spammer_fraction: f32,
    /// Fraction of sentences with an `A-but-B` structure.
    pub but_fraction: f32,
    /// Fraction of sentences with an `A-however-B` structure.
    pub however_fraction: f32,
    /// How reliably the clause after "however" carries the sentence
    /// sentiment (1.0 = as reliable as "but"); the paper's ablation uses
    /// "however" as a *weaker* indicator.
    pub however_consistency: f32,
    /// Number of neutral filler words in the vocabulary.
    pub filler_vocab: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SentimentDatasetConfig {
    fn default() -> Self {
        Self {
            train_size: 1200,
            dev_size: 400,
            test_size: 400,
            num_annotators: 60,
            min_labels_per_instance: 4,
            max_labels_per_instance: 7,
            spammer_fraction: 0.25,
            but_fraction: 0.30,
            however_fraction: 0.10,
            however_consistency: 0.6,
            filler_vocab: 120,
            seed: 7,
        }
    }
}

impl SentimentDatasetConfig {
    /// A configuration whose scale mirrors the paper's dataset (slower to
    /// train; used by the full experiment harness when `--paper-scale` is
    /// requested).
    pub fn paper_scale() -> Self {
        Self { train_size: 4999, dev_size: 3000, test_size: 2789, num_annotators: 203, ..Self::default() }
    }

    /// A very small configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self { train_size: 120, dev_size: 40, test_size: 40, num_annotators: 15, filler_vocab: 40, ..Self::default() }
    }
}

const POSITIVE_WORDS: &[&str] = &[
    "wonderful",
    "delightful",
    "brilliant",
    "charming",
    "moving",
    "gripping",
    "hilarious",
    "beautiful",
    "masterful",
    "refreshing",
    "touching",
    "enjoyable",
    "inventive",
    "captivating",
    "superb",
    "engaging",
    "heartfelt",
    "stunning",
    "clever",
    "triumphant",
];

const NEGATIVE_WORDS: &[&str] = &[
    "dull",
    "tedious",
    "clumsy",
    "boring",
    "shallow",
    "predictable",
    "bland",
    "awful",
    "disappointing",
    "lifeless",
    "incoherent",
    "annoying",
    "pretentious",
    "forgettable",
    "messy",
    "painful",
    "uninspired",
    "hollow",
    "stale",
    "dreadful",
];

const NEUTRAL_SEED_WORDS: &[&str] = &[
    "movie",
    "film",
    "plot",
    "story",
    "actor",
    "scene",
    "director",
    "screenplay",
    "character",
    "dialogue",
    "ending",
    "camera",
    "score",
    "performance",
    "audience",
    "narrative",
    "pacing",
    "sequel",
    "premise",
    "cast",
];

/// The gold-text model behind the synthetic sentiment corpus: a lexicon
/// vocabulary (polarity words, neutral words, filler) plus the clause /
/// contrast-structure sampler.  Extracted from [`generate_sentiment`] so the
/// scenario generators in [`crate::scenario`] can draw the same learning
/// problem while swapping in arbitrary annotator pools and class priors.
#[derive(Debug, Clone)]
pub struct SentimentTextModel {
    vocab: Vec<String>,
    but_token: usize,
    however_token: usize,
    pos_ids: Vec<usize>,
    neg_ids: Vec<usize>,
    neutral_ids: Vec<usize>,
    but_fraction: f32,
    however_fraction: f32,
    however_consistency: f32,
}

impl SentimentTextModel {
    /// Builds the vocabulary and contrast-structure sampler.
    pub fn new(filler_vocab: usize, but_fraction: f32, however_fraction: f32, however_consistency: f32) -> Self {
        let mut vocab: Vec<String> = vec!["<pad>".to_string(), "but".to_string(), "however".to_string()];
        let but_token = 1usize;
        let however_token = 2usize;
        let pos_start = vocab.len();
        vocab.extend(POSITIVE_WORDS.iter().map(|s| s.to_string()));
        let neg_start = vocab.len();
        vocab.extend(NEGATIVE_WORDS.iter().map(|s| s.to_string()));
        let neutral_start = vocab.len();
        vocab.extend(NEUTRAL_SEED_WORDS.iter().map(|s| s.to_string()));
        for i in 0..filler_vocab {
            vocab.push(format!("filler{i}"));
        }
        let neutral_end = vocab.len();
        Self {
            vocab,
            but_token,
            however_token,
            pos_ids: (pos_start..neg_start).collect(),
            neg_ids: (neg_start..neutral_start).collect(),
            neutral_ids: (neutral_start..neutral_end).collect(),
            but_fraction,
            however_fraction,
            however_consistency,
        }
    }

    /// The model's configuration as used by [`generate_sentiment`].
    pub fn from_config(config: &SentimentDatasetConfig) -> Self {
        Self::new(config.filler_vocab, config.but_fraction, config.however_fraction, config.however_consistency)
    }

    /// The vocabulary (index = token id; id 0 is the padding token).
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// Token id of the contrast conjunction "but".
    pub fn but_token(&self) -> usize {
        self.but_token
    }

    /// Token id of the weaker-contrast word "however".
    pub fn however_token(&self) -> usize {
        self.however_token
    }

    fn sentiment_word(&self, label: usize, rng: &mut TensorRng) -> usize {
        let ids = if label == 1 { &self.pos_ids } else { &self.neg_ids };
        ids[rng.usize_below(ids.len())]
    }

    fn neutral_word(&self, rng: &mut TensorRng) -> usize {
        self.neutral_ids[rng.usize_below(self.neutral_ids.len())]
    }

    /// A clause carrying sentiment `label`: mostly neutral words with 1-3
    /// polarity words, and a small chance of a contradicting word.
    fn clause(&self, label: usize, len: usize, rng: &mut TensorRng) -> Vec<usize> {
        let mut clause = Vec::with_capacity(len);
        let num_signal = 1 + rng.usize_below(3.min(len));
        for i in 0..len {
            if i < num_signal {
                clause.push(self.sentiment_word(label, rng));
            } else if rng.bernoulli(0.06) {
                clause.push(self.sentiment_word(1 - label, rng));
            } else {
                clause.push(self.neutral_word(rng));
            }
        }
        rng.shuffle(&mut clause);
        clause
    }

    /// Samples the token sequence of a sentence with gold polarity `label`.
    pub fn sentence(&self, label: usize, rng: &mut TensorRng) -> Vec<usize> {
        let draw = rng.uniform();
        if draw < self.but_fraction {
            // A (opposite) but B (label)
            let a = self.clause(1 - label, 3 + rng.usize_below(5), rng);
            let b = self.clause(label, 3 + rng.usize_below(5), rng);
            let mut tokens = a;
            tokens.push(self.but_token);
            tokens.extend(b);
            tokens
        } else if draw < self.but_fraction + self.however_fraction {
            // A however B, where B carries the sentiment only with
            // probability `however_consistency`.
            let b_label = if rng.bernoulli(self.however_consistency) { label } else { 1 - label };
            let a = self.clause(1 - label, 3 + rng.usize_below(5), rng);
            let b = self.clause(b_label, 3 + rng.usize_below(5), rng);
            let mut tokens = a;
            tokens.push(self.however_token);
            tokens.extend(b);
            tokens
        } else {
            self.clause(label, 5 + rng.usize_below(7), rng)
        }
    }
}

/// Generates the synthetic sentiment corpus.
///
/// Class convention: `0 = negative`, `1 = positive` (matching the paper's
/// NEG/POS ordering in Figure 6).
pub fn generate_sentiment(config: &SentimentDatasetConfig) -> CrowdDataset {
    assert!(config.num_annotators >= config.max_labels_per_instance, "annotator pool smaller than labels per instance");
    assert!(config.min_labels_per_instance >= 1 && config.min_labels_per_instance <= config.max_labels_per_instance);
    let mut rng = TensorRng::seed_from_u64(config.seed);

    let text = SentimentTextModel::from_config(config);
    let make_sentence = |rng: &mut TensorRng| -> (Vec<usize>, usize) {
        let label = rng.usize_below(2);
        (text.sentence(label, rng), label)
    };

    // ---- annotator pool --------------------------------------------------
    let pool = AnnotatorPool::generate(config.num_annotators, 2, config.spammer_fraction, &mut rng);

    // ---- splits ----------------------------------------------------------
    let mut train = Vec::with_capacity(config.train_size);
    for _ in 0..config.train_size {
        let (tokens, label) = make_sentence(&mut rng);
        let span = config.max_labels_per_instance - config.min_labels_per_instance + 1;
        let count = config.min_labels_per_instance + rng.usize_below(span);
        let annotators = pool.select(count, &mut rng);
        let crowd_labels = annotators
            .into_iter()
            .map(|a| CrowdLabel { annotator: a, labels: vec![pool.annotators[a].annotate(label, &mut rng)] })
            .collect();
        train.push(Instance { tokens, gold: vec![label], crowd_labels });
    }
    let mut make_eval_split = |size: usize| -> Vec<Instance> {
        (0..size)
            .map(|_| {
                let (tokens, label) = make_sentence(&mut rng);
                Instance { tokens, gold: vec![label], crowd_labels: Vec::new() }
            })
            .collect()
    };
    let dev = make_eval_split(config.dev_size);
    let test = make_eval_split(config.test_size);

    let dataset = CrowdDataset {
        task: TaskKind::Classification,
        num_classes: 2,
        num_annotators: config.num_annotators,
        vocab: text.vocab,
        class_names: vec!["NEG".to_string(), "POS".to_string()],
        train,
        dev,
        test,
        but_token: Some(text.but_token),
        however_token: Some(text.however_token),
    };
    #[cfg(debug_assertions)]
    if let Err(message) = dataset.validate() {
        panic!("generate_sentiment produced an invalid dataset: {message}");
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrowdDataset {
        generate_sentiment(&SentimentDatasetConfig::tiny())
    }

    #[test]
    fn generated_dataset_is_valid() {
        let data = tiny();
        assert!(data.validate().is_ok());
        assert_eq!(data.task, TaskKind::Classification);
        assert_eq!(data.num_classes, 2);
        assert_eq!(data.train.len(), 120);
        assert_eq!(data.dev.len(), 40);
        assert_eq!(data.test.len(), 40);
    }

    #[test]
    fn annotations_per_instance_within_bounds() {
        let config = SentimentDatasetConfig::tiny();
        let data = generate_sentiment(&config);
        for inst in &data.train {
            assert!(inst.num_annotations() >= config.min_labels_per_instance);
            assert!(inst.num_annotations() <= config.max_labels_per_instance);
        }
        // eval splits carry no crowd labels
        assert!(data.dev.iter().all(|i| i.crowd_labels.is_empty()));
        assert!(data.test.iter().all(|i| i.crowd_labels.is_empty()));
    }

    #[test]
    fn generation_is_reproducible() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_sentiment(&SentimentDatasetConfig::tiny());
        let b = generate_sentiment(&SentimentDatasetConfig { seed: 123, ..SentimentDatasetConfig::tiny() });
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn but_sentences_exist_and_signal_label() {
        let data = generate_sentiment(&SentimentDatasetConfig { train_size: 600, ..SentimentDatasetConfig::tiny() });
        let but = data.but_token.unwrap();
        let but_sentences: Vec<&Instance> = data.train.iter().filter(|i| i.tokens.contains(&but)).collect();
        assert!(but_sentences.len() > 100, "expected roughly 30% but-sentences, got {}", but_sentences.len());
        // words after "but" should lean towards the gold polarity
        let pos_range = 3..3 + POSITIVE_WORDS.len();
        let neg_range = 3 + POSITIVE_WORDS.len()..3 + POSITIVE_WORDS.len() + NEGATIVE_WORDS.len();
        let mut consistent = 0usize;
        let mut total = 0usize;
        for inst in &but_sentences {
            let cut = inst.tokens.iter().position(|&t| t == but).unwrap();
            let clause_b = &inst.tokens[cut + 1..];
            let pos = clause_b.iter().filter(|t| pos_range.contains(t)).count();
            let neg = clause_b.iter().filter(|t| neg_range.contains(t)).count();
            if pos != neg {
                total += 1;
                let lean = if pos > neg { 1 } else { 0 };
                if lean == inst.gold[0] {
                    consistent += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            consistent as f32 / total as f32 > 0.85,
            "clause B should match the sentence label: {consistent}/{total}"
        );
    }

    #[test]
    fn crowd_labels_beat_chance_but_are_noisy() {
        let data = tiny();
        let mut correct = 0usize;
        let mut total = 0usize;
        for inst in &data.train {
            for cl in &inst.crowd_labels {
                total += 1;
                if cl.labels[0] == inst.gold[0] {
                    correct += 1;
                }
            }
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.6, "crowd labels should be informative, got {acc}");
        assert!(acc < 0.97, "crowd labels should be noisy, got {acc}");
    }

    #[test]
    fn average_annotation_count_close_to_paper() {
        let data = generate_sentiment(&SentimentDatasetConfig::default());
        let avg = data.avg_annotations_per_instance();
        assert!((4.0..=7.0).contains(&avg), "average annotations {avg}");
    }
}
