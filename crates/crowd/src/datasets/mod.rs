//! Synthetic corpus generators standing in for the two MTurk datasets used
//! by the paper (see DESIGN.md §1 for the substitution rationale).

pub mod ner;
pub mod sentiment;

pub use ner::{generate_ner, NerDatasetConfig, NerTextModel};
pub use sentiment::{generate_sentiment, SentimentDatasetConfig, SentimentTextModel};
