//! Evaluation metrics: accuracy, strict span-level precision/recall/F1 for
//! BIO tagging, empirical annotator confusion matrices and the reliability
//! correlation used in Figures 6/7.

use crate::annotator::gold_spans;
use crate::data::{CrowdDataset, Instance};
use lncl_tensor::{stats, Matrix};

/// Simple classification accuracy between two equally-long label sequences.
pub fn accuracy(predictions: &[usize], gold: &[usize]) -> f32 {
    assert_eq!(predictions.len(), gold.len(), "accuracy: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(gold).filter(|(p, g)| p == g).count();
    correct as f32 / predictions.len() as f32
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecallF1 {
    pub precision: f32,
    pub recall: f32,
    pub f1: f32,
}

impl PrecisionRecallF1 {
    /// Builds the triple from raw counts.
    pub fn from_counts(true_positives: usize, predicted: usize, actual: usize) -> Self {
        let precision = if predicted == 0 { 0.0 } else { true_positives as f32 / predicted as f32 };
        let recall = if actual == 0 { 0.0 } else { true_positives as f32 / actual as f32 };
        let f1 = if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
        Self { precision, recall, f1 }
    }
}

/// Strict span-level precision/recall/F1 for BIO sequences: a predicted span
/// counts as correct only when its boundaries *and* type match a gold span
/// exactly (the "strict criteria" the paper follows).
///
/// `predictions` and `gold` are parallel per-sentence label sequences.
pub fn span_f1(predictions: &[Vec<usize>], gold: &[Vec<usize>]) -> PrecisionRecallF1 {
    assert_eq!(predictions.len(), gold.len(), "span_f1: sentence count mismatch");
    let mut tp = 0usize;
    let mut predicted = 0usize;
    let mut actual = 0usize;
    for (pred, gold) in predictions.iter().zip(gold) {
        assert_eq!(pred.len(), gold.len(), "span_f1: sentence length mismatch");
        let pred_spans = gold_spans(pred);
        let gold_spans_ = gold_spans(gold);
        predicted += pred_spans.len();
        actual += gold_spans_.len();
        for span in &pred_spans {
            if gold_spans_.contains(span) {
                tp += 1;
            }
        }
    }
    PrecisionRecallF1::from_counts(tp, predicted, actual)
}

/// Token-level accuracy over a set of sequences.
pub fn token_accuracy(predictions: &[Vec<usize>], gold: &[Vec<usize>]) -> f32 {
    let flat_pred: Vec<usize> = predictions.iter().flatten().copied().collect();
    let flat_gold: Vec<usize> = gold.iter().flatten().copied().collect();
    accuracy(&flat_pred, &flat_gold)
}

/// Empirical confusion matrix of one annotator against the gold labels of
/// the instances they annotated: entry `(m, n)` is `p(label = n | truth = m)`.
/// Rows with no observations are left uniform.
pub fn empirical_confusion(instances: &[Instance], annotator: usize, num_classes: usize) -> Matrix {
    let mut counts = Matrix::zeros(num_classes, num_classes);
    for inst in instances {
        if let Some(labels) = inst.labels_by(annotator) {
            for (&g, &l) in inst.gold.iter().zip(labels) {
                counts[(g, l)] += 1.0;
            }
        }
    }
    normalize_confusion_rows(&mut counts);
    counts
}

/// Normalises each row of a count matrix into a probability distribution
/// (uniform when the row is empty).
pub fn normalize_confusion_rows(counts: &mut Matrix) {
    let k = counts.cols();
    for r in 0..counts.rows() {
        let row = counts.row_mut(r);
        let sum: f32 = row.iter().sum();
        if sum > 0.0 {
            row.iter_mut().for_each(|v| *v /= sum);
        } else {
            row.iter_mut().for_each(|v| *v = 1.0 / k as f32);
        }
    }
}

/// Mean absolute difference between two confusion matrices (used to score
/// the Figure 6/7 estimates).
pub fn confusion_distance(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "confusion_distance: shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32
}

/// Overall reliability of a confusion matrix: the mean of its diagonal
/// (the scalar plotted in Figures 6b/7b).
pub fn overall_reliability(confusion: &Matrix) -> f32 {
    let k = confusion.rows().min(confusion.cols());
    if k == 0 {
        return 0.0;
    }
    (0..k).map(|i| confusion[(i, i)]).sum::<f32>() / k as f32
}

/// Pearson correlation between estimated and real per-annotator reliability
/// scores (Figures 6b and 7b report ≈0.92 / ≈0.91).
///
/// Degenerate inputs (empty, fewer than two annotators, or a constant
/// vector) correlate with nothing and return `0.0`; the result is always
/// finite so it can be serialised into benchmark reports.
pub fn reliability_correlation(estimated: &[f32], real: &[f32]) -> f32 {
    let r = stats::pearson(estimated, real);
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

/// How well annotator reliability can be recovered from crowd consensus
/// alone: the Pearson correlation between each annotator's reliability
/// estimated against majority-vote proxy labels and their true reliability
/// against the gold labels, over annotators with at least `min_labels`
/// contributed labels.  High values mean the scenario leaves enough signal
/// to tell good annotators from bad ones without gold supervision; spammer-
/// or collusion-heavy pools push it towards zero.
///
/// Deterministic for a fixed dataset, and always finite (degenerate pools
/// fall back to `0.0` via [`reliability_correlation`]).
pub fn reliability_recovery_pearson(dataset: &CrowdDataset, min_labels: usize) -> f32 {
    use crate::truth::TruthInference as _;
    let view = dataset.annotation_view();
    let proxy = crate::truth::MajorityVote.infer(&view).hard;
    let k = dataset.num_classes;
    let mut estimated = vec![Matrix::zeros(k, k); dataset.num_annotators];
    let mut real = vec![Matrix::zeros(k, k); dataset.num_annotators];
    let mut counts = vec![0usize; dataset.num_annotators];
    for (u, annotations) in view.annotations.iter().enumerate() {
        for &(annotator, label) in annotations {
            estimated[annotator][(proxy[u], label)] += 1.0;
            real[annotator][(view.gold[u], label)] += 1.0;
            counts[annotator] += 1;
        }
    }
    let mut est_rel = Vec::new();
    let mut real_rel = Vec::new();
    for a in 0..dataset.num_annotators {
        if counts[a] < min_labels.max(1) {
            continue;
        }
        normalize_confusion_rows(&mut estimated[a]);
        normalize_confusion_rows(&mut real[a]);
        est_rel.push(overall_reliability(&estimated[a]));
        real_rel.push(overall_reliability(&real[a]));
    }
    reliability_correlation(&est_rel, &real_rel)
}

/// Per-annotator accuracy (classification) on the instances they labelled.
pub fn annotator_accuracy(instances: &[Instance], annotator: usize) -> Option<f32> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for inst in instances {
        if let Some(labels) = inst.labels_by(annotator) {
            for (&g, &l) in inst.gold.iter().zip(labels) {
                total += 1;
                if g == l {
                    correct += 1;
                }
            }
        }
    }
    (total > 0).then(|| correct as f32 / total as f32)
}

/// Per-annotator strict span F1 (sequence tagging) on the instances they
/// labelled.
pub fn annotator_span_f1(instances: &[Instance], annotator: usize) -> Option<f32> {
    let mut preds = Vec::new();
    let mut golds = Vec::new();
    for inst in instances {
        if let Some(labels) = inst.labels_by(annotator) {
            preds.push(labels.to_vec());
            golds.push(inst.gold.clone());
        }
    }
    (!preds.is_empty()).then(|| span_f1(&preds, &golds).f1)
}

/// Evaluates a set of hard predictions for the *test split* of a
/// classification dataset.
pub fn classification_accuracy_on(dataset_split: &[Instance], predictions: &[usize]) -> f32 {
    let gold: Vec<usize> = dataset_split.iter().map(|i| i.gold[0]).collect();
    accuracy(predictions, &gold)
}

/// Evaluates per-sentence label-sequence predictions for the test split of a
/// sequence dataset with the strict span criterion.
pub fn sequence_f1_on(dataset_split: &[Instance], predictions: &[Vec<usize>]) -> PrecisionRecallF1 {
    let gold: Vec<Vec<usize>> = dataset_split.iter().map(|i| i.gold.clone()).collect();
    span_f1(predictions, &gold)
}

/// Majority-vote hard labels of the training split (handy gold-free sanity
/// metric used in several tests).
pub fn crowd_label_accuracy(dataset: &CrowdDataset) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for inst in &dataset.train {
        for cl in &inst.crowd_labels {
            for (&g, &l) in inst.gold.iter().zip(&cl.labels) {
                total += 1;
                if g == l {
                    correct += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CrowdLabel;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn prf_from_counts() {
        let m = PrecisionRecallF1::from_counts(6, 10, 12);
        assert!((m.precision - 0.6).abs() < 1e-6);
        assert!((m.recall - 0.5).abs() < 1e-6);
        assert!((m.f1 - 2.0 * 0.6 * 0.5 / 1.1).abs() < 1e-6);
        let zero = PrecisionRecallF1::from_counts(0, 0, 0);
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn span_f1_perfect_match_is_one() {
        let gold = vec![vec![0, 1, 2, 0, 3], vec![5, 6, 0]];
        let m = span_f1(&gold, &gold);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn span_f1_strict_boundary() {
        // predicted span B-PER at 1..2 (missing the I-PER) must not count.
        let gold = vec![vec![0, 1, 2, 0]];
        let pred = vec![vec![0, 1, 0, 0]];
        let m = span_f1(&pred, &gold);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn span_f1_strict_type() {
        // right boundaries, wrong type (LOC instead of PER).
        let gold = vec![vec![0, 1, 2, 0]];
        let pred = vec![vec![0, 3, 4, 0]];
        let m = span_f1(&pred, &gold);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn span_f1_partial_credit_across_sentences() {
        let gold = vec![vec![0, 1, 2, 0], vec![3, 0, 0]];
        let pred = vec![vec![0, 1, 2, 0], vec![0, 0, 0]];
        let m = span_f1(&pred, &gold);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.5);
    }

    #[test]
    fn token_accuracy_flattens() {
        let gold = vec![vec![0, 1], vec![2]];
        let pred = vec![vec![0, 0], vec![2]];
        assert!((token_accuracy(&pred, &gold) - 2.0 / 3.0).abs() < 1e-6);
    }

    fn annotated_instance(gold: Vec<usize>, annotator: usize, labels: Vec<usize>) -> Instance {
        Instance { tokens: vec![1; gold.len()], gold, crowd_labels: vec![CrowdLabel { annotator, labels }] }
    }

    #[test]
    fn empirical_confusion_counts_and_normalises() {
        let instances = vec![
            annotated_instance(vec![0], 3, vec![0]),
            annotated_instance(vec![0], 3, vec![1]),
            annotated_instance(vec![1], 3, vec![1]),
        ];
        let c = empirical_confusion(&instances, 3, 2);
        assert!((c[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((c[(0, 1)] - 0.5).abs() < 1e-6);
        assert!((c[(1, 1)] - 1.0).abs() < 1e-6);
        // annotator never saw class... all rows normalised
        let none = empirical_confusion(&instances, 9, 2);
        assert!((none[(0, 0)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn overall_reliability_and_distance() {
        let a = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        let b = Matrix::identity(2);
        assert!((overall_reliability(&a) - 0.85).abs() < 1e-6);
        assert!((confusion_distance(&a, &b) - 0.15).abs() < 1e-5);
        assert_eq!(confusion_distance(&a, &a), 0.0);
    }

    #[test]
    fn annotator_accuracy_and_f1_require_participation() {
        let instances = vec![annotated_instance(vec![0, 1, 2], 0, vec![0, 1, 0])];
        assert!((annotator_accuracy(&instances, 0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(annotator_accuracy(&instances, 5).is_none());
        assert!(annotator_span_f1(&instances, 5).is_none());
        let f1 = annotator_span_f1(&instances, 0).unwrap();
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn reliability_correlation_is_pearson() {
        let est = [0.9, 0.5, 0.7];
        let real = [0.85, 0.55, 0.75];
        assert!(reliability_correlation(&est, &real) > 0.9);
    }

    #[test]
    fn reliability_correlation_degenerate_inputs_are_finite() {
        // empty, single-element and constant vectors must yield 0.0, never
        // NaN — these values land in benchmark reports whose JSON layer
        // rejects non-finite numbers
        assert_eq!(reliability_correlation(&[], &[]), 0.0);
        assert_eq!(reliability_correlation(&[0.5], &[0.9]), 0.0);
        assert_eq!(reliability_correlation(&[0.7, 0.7, 0.7], &[0.1, 0.5, 0.9]), 0.0);
        assert_eq!(reliability_correlation(&[0.1, 0.5, 0.9], &[0.7, 0.7, 0.7]), 0.0);
    }

    #[test]
    fn span_f1_degenerate_inputs_are_finite() {
        // no sentences / no spans at all: every component is defined as 0
        let empty = span_f1(&[], &[]);
        assert_eq!((empty.precision, empty.recall, empty.f1), (0.0, 0.0, 0.0));
        let no_spans = span_f1(&[vec![0, 0, 0]], &[vec![0, 0, 0]]);
        assert!(no_spans.f1.is_finite() && no_spans.f1 == 0.0);
    }

    #[test]
    fn reliability_recovery_pearson_separates_clean_from_spam() {
        use crate::scenario::{generate_scenario, Archetype, PropensityProfile, ScenarioConfig};
        let base = ScenarioConfig::classification("recovery")
            .with_sizes(200, 10, 10)
            .with_annotators(10)
            .with_redundancy(4, 6)
            .with_propensity(PropensityProfile::Uniform);
        let mixed = generate_scenario(
            &base.clone().with_mix(vec![(Archetype::Reliable { accuracy: 0.9 }, 0.6), (Archetype::Spammer, 0.4)]),
        );
        let r = reliability_recovery_pearson(&mixed, 5);
        assert!(r.is_finite() && (-1.0..=1.0).contains(&r));
        // spammers vs reliables is exactly the contrast consensus recovers
        assert!(r > 0.5, "mixed-pool recovery should be strong, got {r}");
        // a single annotator leaves nothing to correlate -> finite fallback
        let solo = generate_scenario(&base.with_annotators(1).with_redundancy(1, 1).with_sizes(30, 5, 5));
        assert_eq!(reliability_recovery_pearson(&solo, 5), 0.0);
    }
}
