//! Core data model for crowdsourced datasets.
//!
//! A [`CrowdDataset`] holds tokenised instances with *gold* labels (used only
//! for evaluation, never for training), the noisy labels contributed by a
//! pool of simulated annotators, and the vocabulary.  Both tasks of the
//! paper fit the same model:
//!
//! * **Sentence classification** (sentiment): every instance has exactly one
//!   *unit* — the sentence — and each annotator label is a single class.
//! * **Sequence tagging** (NER): every instance has one unit per token and
//!   each annotator label is a full BIO sequence.

use std::collections::BTreeMap;

/// Which kind of task a dataset represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// One label per instance (e.g. sentiment polarity).
    Classification,
    /// One label per token (e.g. NER in BIO encoding).
    SequenceTagging,
}

/// One annotator's labelling of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrowdLabel {
    /// Annotator index in `0..num_annotators`.
    pub annotator: usize,
    /// One class index per unit of the instance (length 1 for
    /// classification, length = #tokens for sequence tagging).
    pub labels: Vec<usize>,
}

/// One data instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Token ids into the dataset vocabulary (id 0 is reserved for padding).
    pub tokens: Vec<usize>,
    /// Gold labels, one per unit.  Present for every split but only used for
    /// evaluation and for simulating annotators.
    pub gold: Vec<usize>,
    /// Noisy crowd labels (empty on the dev/test splits).
    pub crowd_labels: Vec<CrowdLabel>,
}

impl Instance {
    /// Number of label units (1 for classification, #tokens for tagging).
    pub fn num_units(&self) -> usize {
        self.gold.len()
    }

    /// Number of annotators that labelled this instance.
    pub fn num_annotations(&self) -> usize {
        self.crowd_labels.len()
    }

    /// Labels given by a specific annotator, if any.
    pub fn labels_by(&self, annotator: usize) -> Option<&[usize]> {
        self.crowd_labels.iter().find(|c| c.annotator == annotator).map(|c| c.labels.as_slice())
    }
}

/// A complete crowdsourced dataset with train/dev/test splits.
#[derive(Debug, Clone)]
pub struct CrowdDataset {
    /// Task kind.
    pub task: TaskKind,
    /// Number of classes `K`.
    pub num_classes: usize,
    /// Number of annotators `J`.
    pub num_annotators: usize,
    /// Vocabulary (index = token id); `vocab[0]` is the padding token.
    pub vocab: Vec<String>,
    /// Human-readable class names (length `num_classes`).
    pub class_names: Vec<String>,
    /// Training instances (with crowd labels).
    pub train: Vec<Instance>,
    /// Development instances (gold only).
    pub dev: Vec<Instance>,
    /// Test instances (gold only).
    pub test: Vec<Instance>,
    /// Token id of the contrast conjunction ("but") if the vocabulary has
    /// one — used by the sentiment logic rule.
    pub but_token: Option<usize>,
    /// Token id of the weaker-contrast word ("however"), used by the
    /// "other rules" ablation.
    pub however_token: Option<usize>,
}

impl CrowdDataset {
    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Looks a token id up by surface form.
    pub fn token_id(&self, word: &str) -> Option<usize> {
        self.vocab.iter().position(|w| w == word)
    }

    /// Average number of annotations per training instance.
    pub fn avg_annotations_per_instance(&self) -> f32 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train.iter().map(|i| i.num_annotations()).sum::<usize>() as f32 / self.train.len() as f32
    }

    /// Total number of crowd labels in the training split.
    pub fn total_crowd_labels(&self) -> usize {
        self.train.iter().map(|i| i.num_annotations()).sum()
    }

    /// A flattened unit-level view of the crowd annotations on the training
    /// split, suitable for the task-agnostic truth-inference baselines.
    pub fn annotation_view(&self) -> AnnotationView {
        AnnotationView::from_dataset(self)
    }

    /// Sanity-checks internal consistency (class ranges, unit counts,
    /// annotator ranges).  Returns an error message on the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let check_instance = |inst: &Instance, split: &str, idx: usize| -> Result<(), String> {
            if inst.tokens.is_empty() {
                return Err(format!("{split}[{idx}]: empty token sequence"));
            }
            if inst.gold.is_empty() {
                return Err(format!("{split}[{idx}]: no gold labels"));
            }
            if self.task == TaskKind::Classification && inst.gold.len() != 1 {
                return Err(format!("{split}[{idx}]: classification instance with {} gold labels", inst.gold.len()));
            }
            if self.task == TaskKind::SequenceTagging && inst.gold.len() != inst.tokens.len() {
                return Err(format!(
                    "{split}[{idx}]: {} tokens but {} gold labels",
                    inst.tokens.len(),
                    inst.gold.len()
                ));
            }
            for &g in &inst.gold {
                if g >= self.num_classes {
                    return Err(format!("{split}[{idx}]: gold class {g} out of range"));
                }
            }
            for &t in &inst.tokens {
                if t >= self.vocab.len() {
                    return Err(format!("{split}[{idx}]: token id {t} out of range"));
                }
            }
            for cl in &inst.crowd_labels {
                if cl.annotator >= self.num_annotators {
                    return Err(format!("{split}[{idx}]: annotator {} out of range", cl.annotator));
                }
                if cl.labels.len() != inst.gold.len() {
                    return Err(format!(
                        "{split}[{idx}]: crowd label with {} units, expected {}",
                        cl.labels.len(),
                        inst.gold.len()
                    ));
                }
                if cl.labels.iter().any(|&l| l >= self.num_classes) {
                    return Err(format!("{split}[{idx}]: crowd label class out of range"));
                }
            }
            Ok(())
        };
        for (i, inst) in self.train.iter().enumerate() {
            check_instance(inst, "train", i)?;
        }
        for (i, inst) in self.dev.iter().enumerate() {
            check_instance(inst, "dev", i)?;
        }
        for (i, inst) in self.test.iter().enumerate() {
            check_instance(inst, "test", i)?;
        }
        Ok(())
    }

    /// The same dataset with annotator identities renumbered: annotator `a`
    /// becomes `perm[a]`.  The per-instance label *order* is kept, so a
    /// correct aggregation method must produce identical results on the
    /// permuted dataset (the metamorphic property checked by the robustness
    /// suite).  `perm` must be a permutation of `0..num_annotators`.
    pub fn with_permuted_annotators(&self, perm: &[usize]) -> CrowdDataset {
        assert_eq!(perm.len(), self.num_annotators, "permutation length must equal the annotator count");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
        let mut out = self.clone();
        for split in [&mut out.train, &mut out.dev, &mut out.test] {
            for inst in split.iter_mut() {
                for cl in &mut inst.crowd_labels {
                    cl.annotator = perm[cl.annotator];
                }
            }
        }
        out
    }

    /// The same dataset with classes renumbered: class `c` becomes
    /// `perm[c]` in every gold and crowd label, and `class_names` is
    /// reordered to match.  Aggregation quality metrics must be unchanged
    /// under any relabeling (equivariance); for BIO-encoded tagging data
    /// only structure-preserving permutations (e.g. swapping two entity
    /// types B/I pairwise) keep the sequences well-formed.  `perm` must be
    /// a permutation of `0..num_classes`.
    pub fn with_relabeled_classes(&self, perm: &[usize]) -> CrowdDataset {
        assert_eq!(perm.len(), self.num_classes, "permutation length must equal the class count");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
        let mut out = self.clone();
        let mut names = vec![String::new(); self.num_classes];
        for (c, name) in self.class_names.iter().enumerate() {
            names[perm[c]] = name.clone();
        }
        out.class_names = names;
        let relabel = |labels: &mut Vec<usize>| {
            for l in labels.iter_mut() {
                *l = perm[*l];
            }
        };
        for split in [&mut out.train, &mut out.dev, &mut out.test] {
            for inst in split.iter_mut() {
                relabel(&mut inst.gold);
                for cl in &mut inst.crowd_labels {
                    relabel(&mut cl.labels);
                }
            }
        }
        out
    }
}

/// A flattened, unit-level view of the noisy annotations of a dataset:
/// unit `u` corresponds to instance `unit_instance[u]`, position
/// `unit_position[u]` within that instance.  This is the representation the
/// task-agnostic truth-inference methods (MV, DS, GLAD, …) operate on.
#[derive(Debug, Clone)]
pub struct AnnotationView {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of annotators.
    pub num_annotators: usize,
    /// For every unit, the (annotator, class) pairs observed.
    pub annotations: Vec<Vec<(usize, usize)>>,
    /// Gold class per unit (evaluation only).
    pub gold: Vec<usize>,
    /// Instance index of each unit.
    pub unit_instance: Vec<usize>,
    /// Position of each unit within its instance.
    pub unit_position: Vec<usize>,
    /// Number of units per instance (used to reassemble sequences).
    pub instance_len: Vec<usize>,
}

impl AnnotationView {
    /// Builds the view from the training split of a dataset.
    pub fn from_dataset(dataset: &CrowdDataset) -> Self {
        let mut annotations = Vec::new();
        let mut gold = Vec::new();
        let mut unit_instance = Vec::new();
        let mut unit_position = Vec::new();
        let mut instance_len = Vec::new();
        for (i, inst) in dataset.train.iter().enumerate() {
            instance_len.push(inst.num_units());
            for u in 0..inst.num_units() {
                let mut per_unit = Vec::with_capacity(inst.crowd_labels.len());
                for cl in &inst.crowd_labels {
                    per_unit.push((cl.annotator, cl.labels[u]));
                }
                annotations.push(per_unit);
                gold.push(inst.gold[u]);
                unit_instance.push(i);
                unit_position.push(u);
            }
        }
        Self {
            num_classes: dataset.num_classes,
            num_annotators: dataset.num_annotators,
            annotations,
            gold,
            unit_instance,
            unit_position,
            instance_len,
        }
    }

    /// Number of units.
    pub fn num_units(&self) -> usize {
        self.annotations.len()
    }

    /// Per-annotator counts of contributed labels.
    pub fn labels_per_annotator(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_annotators];
        for unit in &self.annotations {
            for &(a, _) in unit {
                counts[a] += 1;
            }
        }
        counts
    }

    /// Groups unit indices by instance (in order), used by the
    /// sequence-aware truth-inference methods.
    pub fn units_by_instance(&self) -> Vec<Vec<usize>> {
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (u, &inst) in self.unit_instance.iter().enumerate() {
            map.entry(inst).or_default().push(u);
        }
        map.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny, hand-built classification dataset shared by several tests.
    pub(crate) fn toy_classification() -> CrowdDataset {
        CrowdDataset {
            task: TaskKind::Classification,
            num_classes: 2,
            num_annotators: 3,
            vocab: vec!["<pad>".into(), "good".into(), "bad".into()],
            class_names: vec!["neg".into(), "pos".into()],
            train: vec![
                Instance {
                    tokens: vec![1],
                    gold: vec![1],
                    crowd_labels: vec![
                        CrowdLabel { annotator: 0, labels: vec![1] },
                        CrowdLabel { annotator: 1, labels: vec![1] },
                        CrowdLabel { annotator: 2, labels: vec![0] },
                    ],
                },
                Instance {
                    tokens: vec![2],
                    gold: vec![0],
                    crowd_labels: vec![
                        CrowdLabel { annotator: 0, labels: vec![0] },
                        CrowdLabel { annotator: 2, labels: vec![1] },
                    ],
                },
            ],
            dev: vec![Instance { tokens: vec![1], gold: vec![1], crowd_labels: vec![] }],
            test: vec![Instance { tokens: vec![2], gold: vec![0], crowd_labels: vec![] }],
            but_token: None,
            however_token: None,
        }
    }

    #[test]
    fn instance_accessors() {
        let data = toy_classification();
        let inst = &data.train[0];
        assert_eq!(inst.num_units(), 1);
        assert_eq!(inst.num_annotations(), 3);
        assert_eq!(inst.labels_by(2), Some(&[0][..]));
        assert_eq!(inst.labels_by(7), None);
    }

    #[test]
    fn dataset_statistics() {
        let data = toy_classification();
        assert_eq!(data.total_crowd_labels(), 5);
        assert!((data.avg_annotations_per_instance() - 2.5).abs() < 1e-6);
        assert_eq!(data.vocab_size(), 3);
        assert_eq!(data.token_id("bad"), Some(2));
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        assert!(toy_classification().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_class() {
        let mut data = toy_classification();
        data.train[0].gold[0] = 9;
        assert!(data.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_unit_count() {
        let mut data = toy_classification();
        data.train[0].crowd_labels[0].labels = vec![1, 0];
        assert!(data.validate().is_err());
    }

    #[test]
    fn permuted_annotators_keep_label_order_and_stay_valid() {
        let data = toy_classification();
        let permuted = data.with_permuted_annotators(&[2, 0, 1]);
        assert!(permuted.validate().is_ok());
        // train[0] was annotated by 0, 1, 2 in that order -> now 2, 0, 1
        let ids: Vec<usize> = permuted.train[0].crowd_labels.iter().map(|c| c.annotator).collect();
        assert_eq!(ids, vec![2, 0, 1]);
        // the labels themselves are untouched
        assert_eq!(permuted.train[0].crowd_labels[0].labels, data.train[0].crowd_labels[0].labels);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_annotators_rejects_duplicates() {
        let _ = toy_classification().with_permuted_annotators(&[0, 0, 1]);
    }

    #[test]
    fn relabeled_classes_swap_gold_crowd_and_names() {
        let data = toy_classification();
        let swapped = data.with_relabeled_classes(&[1, 0]);
        assert!(swapped.validate().is_ok());
        assert_eq!(swapped.class_names, vec!["pos".to_string(), "neg".to_string()]);
        assert_eq!(swapped.train[0].gold, vec![0]);
        assert_eq!(swapped.train[0].crowd_labels[2].labels, vec![1]);
        // double application is the identity
        let back = swapped.with_relabeled_classes(&[1, 0]);
        assert_eq!(back.train, data.train);
        assert_eq!(back.class_names, data.class_names);
    }

    #[test]
    fn annotation_view_flattens_units() {
        let data = toy_classification();
        let view = data.annotation_view();
        assert_eq!(view.num_units(), 2);
        assert_eq!(view.annotations[0].len(), 3);
        assert_eq!(view.gold, vec![1, 0]);
        assert_eq!(view.labels_per_annotator(), vec![2, 1, 2]);
        assert_eq!(view.units_by_instance(), vec![vec![0], vec![1]]);
    }
}
