//! # lncl-crowd
//!
//! The crowdsourcing substrate of the Logic-LNCL reproduction:
//!
//! * [`data`] — the dataset / instance / crowd-label model and the flattened
//!   [`AnnotationView`] consumed by aggregation methods;
//! * [`annotator`] — simulated annotators (confusion-matrix annotators for
//!   classification, error-model annotators for NER);
//! * [`sampling`] — the propensity-weighted selection primitives shared by
//!   scenario generation and closed-loop task routing;
//! * [`datasets`] — synthetic stand-ins for the two MTurk corpora of the
//!   paper (see DESIGN.md §1);
//! * [`scenario`] — composable crowd-scenario simulation: annotator
//!   archetypes (spammers, adversaries, pair confusers, colluding cliques),
//!   propensity profiles, temporal drift schedules and instance-difficulty
//!   models, and scenario grids over redundancy / pool size / archetype
//!   mix / class imbalance / drift / difficulty (the module docs carry a
//!   doctested **scenario cookbook** covering every knob);
//! * [`truth`] — truth-inference baselines: MV, Dawid–Skene (pooled and
//!   stream-windowed), GLAD, IBCC, PM, CATD, HMM-Crowd and a simplified
//!   BSC-seq;
//! * [`metrics`] — accuracy, strict span-level P/R/F1, confusion-matrix and
//!   reliability metrics;
//! * [`stats`] — the per-annotator statistics behind Figure 4.
//!
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root.)
//!
//! ```
//! use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
//! use lncl_crowd::truth::{DawidSkene, MajorityVote, TruthInference};
//!
//! let data = generate_sentiment(&SentimentDatasetConfig::tiny());
//! let view = data.annotation_view();
//! let mv = MajorityVote.infer(&view).accuracy(&view.gold);
//! let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
//! assert!(ds >= mv - 0.05);
//! ```

pub mod annotator;
pub mod data;
pub mod datasets;
pub mod metrics;
pub mod sampling;
pub mod scenario;
pub mod stats;
pub mod truth;

pub use data::{AnnotationView, CrowdDataset, CrowdLabel, Instance, TaskKind};
