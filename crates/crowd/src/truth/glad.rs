//! GLAD (Whitehill et al., 2009): truth inference with per-annotator ability
//! and per-item difficulty.

use super::{TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::truth::MajorityVote;
use lncl_tensor::stats;

/// GLAD models the probability that annotator `j` labels item `i` correctly
/// as `sigma(alpha_j * beta_i)` where `alpha_j` is the annotator ability and
/// `beta_i > 0` (parameterised as `exp(log_beta_i)`) is the inverse item
/// difficulty; incorrect labels are uniform over the remaining classes.
/// Parameters are fitted by EM with gradient-ascent M-steps.
#[derive(Debug, Clone, Copy)]
pub struct Glad {
    /// Number of EM iterations.
    pub max_iters: usize,
    /// Gradient-ascent steps per M-step.
    pub m_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f32,
}

impl Default for Glad {
    fn default() -> Self {
        Self { max_iters: 25, m_steps: 10, learning_rate: 0.1 }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl TruthInference for Glad {
    fn name(&self) -> &'static str {
        "GLAD"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let wrong = 1.0 / (k as f32 - 1.0).max(1.0);
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut alpha = vec![1.0f32; view.num_annotators];
        let mut log_beta = vec![0.0f32; view.num_units()];
        let mut prior = vec![1.0 / k as f32; k];

        for _ in 0..self.max_iters {
            // E-step: posterior over the true class of each unit.
            for (u, annotations) in view.annotations.iter().enumerate() {
                let beta = log_beta[u].exp();
                let mut log_post: Vec<f32> = (0..k).map(|m| prior[m].max(1e-12).ln()).collect();
                for &(annotator, class) in annotations {
                    let p_correct = sigmoid(alpha[annotator] * beta).clamp(1e-6, 1.0 - 1e-6);
                    for (m, lp) in log_post.iter_mut().enumerate() {
                        let p = if m == class { p_correct } else { (1.0 - p_correct) * wrong };
                        *lp += p.max(1e-12).ln();
                    }
                }
                posteriors[u] = stats::softmax(&log_post);
            }
            // class prior update
            prior = super::class_prior(&posteriors, k);

            // M-step: gradient ascent on alpha and log_beta of the expected
            // complete-data log likelihood.  Gradients are averaged over the
            // number of labels touching each parameter so the step size does
            // not depend on annotator workload (prolific annotators would
            // otherwise overshoot and the labels could flip globally).
            let label_counts_per_annotator = {
                let mut c = vec![0.0f32; view.num_annotators];
                for annotations in &view.annotations {
                    for &(annotator, _) in annotations {
                        c[annotator] += 1.0;
                    }
                }
                c
            };
            for _ in 0..self.m_steps {
                let mut grad_alpha = vec![0.0f32; alpha.len()];
                let mut grad_log_beta = vec![0.0f32; log_beta.len()];
                for (u, annotations) in view.annotations.iter().enumerate() {
                    let beta = log_beta[u].exp();
                    for &(annotator, class) in annotations {
                        let a = alpha[annotator];
                        let s = sigmoid(a * beta);
                        // probability (under the posterior) that the given label is correct
                        let p_match = posteriors[u][class];
                        // d/ds of E[log p] where log p = match*log s + (1-match)*log((1-s)*wrong)
                        let ds = p_match / s.max(1e-6) - (1.0 - p_match) / (1.0 - s).max(1e-6);
                        let dsig = s * (1.0 - s);
                        grad_alpha[annotator] += ds * dsig * beta;
                        grad_log_beta[u] += ds * dsig * a * beta; // chain rule through exp
                    }
                }
                for (j, (a, g)) in alpha.iter_mut().zip(&grad_alpha).enumerate() {
                    let n = label_counts_per_annotator[j].max(1.0);
                    *a += self.learning_rate * g / n;
                    *a = a.clamp(-6.0, 6.0);
                }
                for (u, (b, g)) in log_beta.iter_mut().zip(&grad_log_beta).enumerate() {
                    let n = view.annotations[u].len().max(1) as f32;
                    *b += self.learning_rate * g / n * 0.5;
                    *b = b.clamp(-3.0, 3.0);
                }
            }
        }
        TruthEstimate::from_posteriors(posteriors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;
    use crate::truth::{DawidSkene, TruthInference};

    #[test]
    fn beats_mv_with_heterogeneous_annotators() {
        let view = planted_view(500, 2, &[0.95, 0.9, 0.55, 0.5, 0.52], 5, 21);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        let glad = Glad::default().infer(&view).accuracy(&view.gold);
        assert!(glad > mv, "GLAD {glad} should beat MV {mv}");
    }

    #[test]
    fn comparable_to_dawid_skene_on_binary_data() {
        let view = planted_view(400, 2, &[0.9, 0.85, 0.6, 0.55], 4, 23);
        let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
        let glad = Glad::default().infer(&view).accuracy(&view.gold);
        assert!((glad - ds).abs() < 0.08, "GLAD {glad} vs DS {ds}");
    }

    #[test]
    fn posteriors_are_valid_distributions() {
        let view = planted_view(150, 3, &[0.8, 0.75, 0.6, 0.5], 3, 29);
        let est = Glad::default().infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_is_bounded() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}
