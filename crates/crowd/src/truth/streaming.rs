//! Incremental truth inference for streaming crowd labels.
//!
//! The batch estimators in this module's siblings assume the whole dataset
//! exists up front: every EM iteration sweeps every unit.  A long-lived
//! serving process (the `lncl_serve` crate) cannot afford that — labels
//! arrive one at a time and consensus queries must be answered between
//! arrivals.  [`StreamingTruth`] keeps the Dawid–Skene sufficient
//! statistics *running*:
//!
//! * **Ingest** appends a label, credits the annotator's (windowed)
//!   confusion counts with the instance's current posterior mass, and marks
//!   the instance *dirty*.
//! * A **bounded refresh pass** (at most [`StreamingConfig::refresh_budget`]
//!   instances per ingest) re-runs the E-step on dirty instances only,
//!   propagating the posterior delta into the touched annotators' counts.
//!   When an instance's posterior moves by more than
//!   [`StreamingConfig::propagation_tol`], every instance sharing one of
//!   its annotators is re-dirtied — the dirty-set propagation that lets a
//!   newly unmasked spammer's past labels be re-judged without a global
//!   sweep.
//! * [`StreamingTruth::finalize`] runs the full batch EM (identical
//!   operation order to [`DawidSkene`](super::DawidSkene) /
//!   [`DsWindowed`]) over the accumulated labels and
//!   resets the running statistics to the converged state.
//!
//! # The replay-equivalence contract
//!
//! After ingesting a dataset label-by-label **in unit order** and calling
//! [`finalize`](StreamingTruth::finalize) once, the posteriors equal the
//! batch estimator's on the same data: bitwise when each unit's label list
//! arrives in the batch view's per-unit order is canonical (sorted by
//! annotator), and within a tight tolerance otherwise — `finalize`
//! canonicalises each unit's labels by `(annotator, class, arrival)` before
//! iterating, so the converged state is *independent of arrival
//! interleaving* in pooled mode (asserted by
//! `crates/crowd/tests/streaming_equivalence.rs`).  In windowed mode the
//! arrival order **is** the stream clock (each label is judged by the
//! confusion matrix of the window it arrived in), so interleavings that
//! reorder one annotator's stream legitimately change the estimate, exactly
//! as they would change [`DsWindowed`]'s `StreamIndex`.

use super::ds_windowed::{decay_blend, decay_blend_flat, DsWindowed};
use super::{class_prior, TruthEstimate};
use crate::data::AnnotationView;
use crate::metrics::{normalize_confusion_rows, overall_reliability};
use lncl_tensor::{stats, Matrix};
use std::collections::VecDeque;

/// Stream-window parameters for the windowed (DS-W-equivalent) mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamWindow {
    /// Maximum labels per estimation window in each annotator's stream.
    pub size: usize,
    /// Cross-window count decay in `(0, 1]` (`1.0` pools every window).
    pub decay: f32,
    /// Minimum blended label-count support before a window's observed-class
    /// column is trusted during finalization; below it the label is judged
    /// by the annotator's pooled confusion instead (mirrors
    /// [`DsWindowed::backoff_min_support`]).
    pub backoff_min_support: f32,
}

/// Configuration of a [`StreamingTruth`] estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Number of classes `K`.
    pub num_classes: usize,
    /// Additive smoothing used when normalising confusion counts.
    pub smoothing: f32,
    /// Diagonal pseudo-count added to the *online* confusion estimates — an
    /// "annotators are better than chance" prior (IBCC-style) that breaks
    /// the cold-start symmetry batch EM breaks with its majority-vote
    /// initialisation.  Washes out as real counts accumulate; finalization
    /// passes never use it (they mirror the batch estimators exactly).
    pub diag_prior: f32,
    /// Dirty instances re-estimated per ingest (the bounded refresh pass).
    pub refresh_budget: usize,
    /// Mean-absolute posterior change above which a refreshed instance
    /// re-dirties its annotators' other instances.
    pub propagation_tol: f32,
    /// Maximum EM iterations of a finalization pass.
    pub max_iters: usize,
    /// Convergence tolerance of a finalization pass.
    pub tol: f32,
    /// `None` = pooled Dawid–Skene statistics; `Some` = per-stream-window
    /// statistics with `decay^distance` blending (DS-W semantics).
    pub window: Option<StreamWindow>,
}

impl StreamingConfig {
    /// Pooled (classic Dawid–Skene) statistics over `num_classes` classes,
    /// with the same EM defaults as [`DawidSkene`](super::DawidSkene).
    pub fn pooled(num_classes: usize) -> Self {
        Self {
            num_classes,
            smoothing: 0.01,
            diag_prior: 1.0,
            refresh_budget: 8,
            propagation_tol: 0.02,
            max_iters: 50,
            tol: 1e-4,
            window: None,
        }
    }

    /// Stream-windowed (DS-W) statistics; `window`/`decay` default to the
    /// shared [`DsWindowed`] constants when `0` / non-finite input is not
    /// wanted — pass explicit values otherwise.
    pub fn windowed(num_classes: usize, size: usize, decay: f32) -> Self {
        let backoff_min_support = DsWindowed::DEFAULT_BACKOFF_MIN_SUPPORT;
        Self { window: Some(StreamWindow { size, decay, backoff_min_support }), ..Self::pooled(num_classes) }
    }

    /// The default windowed configuration (window
    /// [`DsWindowed::DEFAULT_WINDOW`], decay [`DsWindowed::DEFAULT_DECAY`]).
    pub fn windowed_default(num_classes: usize) -> Self {
        Self::windowed(num_classes, DsWindowed::DEFAULT_WINDOW, DsWindowed::DEFAULT_DECAY)
    }

    /// Panics with a descriptive message on degenerate parameters.
    fn validate(&self) {
        assert!(self.num_classes >= 2, "streaming truth needs at least 2 classes, got {}", self.num_classes);
        assert!(self.smoothing >= 0.0, "streaming smoothing must be non-negative, got {}", self.smoothing);
        assert!(self.diag_prior >= 0.0, "streaming diagonal prior must be non-negative, got {}", self.diag_prior);
        assert!(self.max_iters >= 1, "streaming finalization needs at least 1 EM iteration");
        if let Some(w) = self.window {
            assert!(w.size >= 1, "stream window must hold at least one label, got {}", w.size);
            assert!(
                w.decay > 0.0 && w.decay <= 1.0 && w.decay.is_finite(),
                "stream window decay must be in (0, 1], got {}",
                w.decay
            );
            assert!(
                w.backoff_min_support >= 0.0 && w.backoff_min_support.is_finite(),
                "stream window backoff_min_support must be finite and non-negative, got {}",
                w.backoff_min_support
            );
        }
    }

    #[inline]
    fn window_of(&self, position: usize) -> usize {
        match self.window {
            None => 0,
            Some(w) => position / w.size,
        }
    }

    fn blend_decay(&self) -> f32 {
        self.window.map(|w| w.decay).unwrap_or(1.0)
    }
}

/// One ingested label: who said what, and where in the annotator's own
/// stream it arrived (the windowed mode's clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StreamLabel {
    annotator: usize,
    class: usize,
    position: usize,
}

/// The current consensus on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Consensus {
    /// Posterior distribution over classes.
    pub posterior: Vec<f32>,
    /// Hard label (argmax of the posterior).
    pub hard: usize,
    /// Posterior entropy in nats (0 = certain, `ln K` = uniform).
    pub entropy: f32,
    /// Number of crowd labels received for the instance.
    pub labels: usize,
}

/// The current estimate of one annotator.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatorStat {
    /// Pooled, smoothed, row-normalised confusion estimate.
    pub confusion: Matrix,
    /// Mean of the confusion diagonal (the Figure 6b/7b scalar).
    pub reliability: f32,
    /// Number of labels the annotator has contributed.
    pub labels: usize,
}

/// An incrementally maintained Dawid–Skene (optionally stream-windowed)
/// truth estimator — see the module docs for the update scheme and the
/// replay-equivalence contract.
#[derive(Debug, Clone)]
pub struct StreamingTruth {
    config: StreamingConfig,
    /// Per instance: the labels received so far.
    labels: Vec<Vec<StreamLabel>>,
    /// Per instance: current posterior over classes.
    posteriors: Vec<Vec<f32>>,
    /// Per annotator: instances they touched (one entry per label).
    by_annotator: Vec<Vec<usize>>,
    /// Per annotator: labels contributed so far (stream length).
    stream_len: Vec<usize>,
    /// Per annotator, per window: raw posterior-mass confusion counts
    /// (smoothing is added lazily when normalising).
    counts: Vec<Vec<Matrix>>,
    /// Per annotator: cached blended + smoothed + row-normalised
    /// confusions, invalidated whenever the raw counts move.
    normalized: Vec<Option<Vec<Matrix>>>,
    /// Per class: running sum of posterior mass (the prior statistic).
    prior_counts: Vec<f32>,
    dirty: VecDeque<usize>,
    in_dirty: Vec<bool>,
    ingested: u64,
    refreshed: u64,
}

impl StreamingTruth {
    /// Creates an empty estimator.  Panics on degenerate configuration.
    pub fn new(config: StreamingConfig) -> Self {
        config.validate();
        Self {
            config,
            labels: Vec::new(),
            posteriors: Vec::new(),
            by_annotator: Vec::new(),
            stream_len: Vec::new(),
            counts: Vec::new(),
            normalized: Vec::new(),
            prior_counts: vec![0.0; config.num_classes],
            dirty: VecDeque::new(),
            in_dirty: Vec::new(),
            ingested: 0,
            refreshed: 0,
        }
    }

    /// The configuration the estimator was built with.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Number of distinct instances seen so far.
    pub fn num_instances(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct annotators seen so far.
    pub fn num_annotators(&self) -> usize {
        self.stream_len.len()
    }

    /// Total labels ingested.
    pub fn total_labels(&self) -> u64 {
        self.ingested
    }

    /// Instances currently queued for re-estimation.
    pub fn dirty_backlog(&self) -> usize {
        self.dirty.len()
    }

    /// Instances re-estimated so far (across all refresh passes).
    pub fn refreshed_instances(&self) -> u64 {
        self.refreshed
    }

    /// Ingests one crowd label and runs a bounded refresh pass.  Instance
    /// and annotator ids are dense indices — the estimator grows to cover
    /// them (callers with external string ids intern them first, as the
    /// serving layer does).  Returns an error (no state change) when the
    /// class is out of range.
    pub fn ingest(&mut self, instance: usize, annotator: usize, class: usize) -> Result<(), String> {
        let k = self.config.num_classes;
        if class >= k {
            return Err(format!("class {class} out of range for {k} classes"));
        }
        self.grow_instances(instance + 1);
        self.grow_annotators(annotator + 1);

        let position = self.stream_len[annotator];
        self.stream_len[annotator] += 1;
        let window = self.config.window_of(position);
        while self.counts[annotator].len() <= window {
            self.counts[annotator].push(Matrix::zeros(k, k));
        }
        // credit the annotator's window with the instance's current mass
        for m in 0..k {
            self.counts[annotator][window][(m, class)] += self.posteriors[instance][m];
        }
        self.normalized[annotator] = None;
        self.labels[instance].push(StreamLabel { annotator, class, position });
        self.by_annotator[annotator].push(instance);
        self.ingested += 1;
        self.mark_dirty(instance);
        self.refresh(self.config.refresh_budget);
        Ok(())
    }

    /// Replays every unit of a batch [`AnnotationView`] in unit order —
    /// the replay the equivalence contract is stated over.
    pub fn ingest_view(&mut self, view: &AnnotationView) {
        assert_eq!(view.num_classes, self.config.num_classes, "class-count mismatch");
        for (u, annotations) in view.annotations.iter().enumerate() {
            for &(annotator, class) in annotations {
                self.ingest(u, annotator, class).expect("valid view label");
            }
        }
    }

    /// Re-estimates up to `budget` dirty instances (the bounded refresh
    /// pass); returns how many were refreshed.
    pub fn refresh(&mut self, budget: usize) -> usize {
        let mut done = 0;
        while done < budget {
            let Some(u) = self.dirty.pop_front() else { break };
            self.in_dirty[u] = false;
            let new_post = self.e_step(u);
            let k = self.config.num_classes;
            let delta: f32 =
                new_post.iter().zip(&self.posteriors[u]).map(|(a, b)| (a - b).abs()).sum::<f32>() / k as f32;
            self.apply_posterior(u, new_post);
            self.refreshed += 1;
            done += 1;
            if delta > self.config.propagation_tol {
                // the instance moved: everything its annotators touched is
                // now judged by stale confusions — re-dirty the neighbourhood
                for slot in 0..self.labels[u].len() {
                    let annotator = self.labels[u][slot].annotator;
                    for i in 0..self.by_annotator[annotator].len() {
                        let v = self.by_annotator[annotator][i];
                        self.mark_dirty(v);
                    }
                }
            }
        }
        done
    }

    /// Drains the dirty set completely (no budget).  Cheaper than a
    /// finalization pass — posteriors settle against the *current* running
    /// counts, but no global EM is run.
    pub fn drain_dirty(&mut self) -> usize {
        let mut total = 0;
        loop {
            let done = self.refresh(usize::MAX);
            total += done;
            if done == 0 {
                break;
            }
        }
        total
    }

    /// The current consensus on an instance (`None` for unseen ids).
    pub fn consensus(&self, instance: usize) -> Option<Consensus> {
        let posterior = self.posteriors.get(instance)?.clone();
        Some(Consensus {
            hard: stats::argmax(&posterior),
            entropy: stats::entropy(&posterior),
            labels: self.labels[instance].len(),
            posterior,
        })
    }

    /// The current estimate of an annotator (`None` for unseen ids):
    /// pooled confusion matrix (windows summed), smoothed and normalised,
    /// plus the diagonal-mean reliability.
    pub fn annotator(&self, annotator: usize) -> Option<AnnotatorStat> {
        let windows = self.counts.get(annotator)?;
        let k = self.config.num_classes;
        let mut pooled = Matrix::full(k, k, self.config.smoothing);
        for window in windows {
            for (dst, &src) in pooled.as_mut_slice().iter_mut().zip(window.as_slice()) {
                *dst += src;
            }
        }
        normalize_confusion_rows(&mut pooled);
        Some(AnnotatorStat {
            reliability: overall_reliability(&pooled),
            labels: self.stream_len[annotator],
            confusion: pooled,
        })
    }

    /// Snapshot of the current posteriors as a [`TruthEstimate`] (pooled
    /// per-annotator confusions attached), e.g. for accuracy evaluation.
    pub fn estimate(&self) -> TruthEstimate {
        let confusions = (0..self.num_annotators()).map(|a| self.annotator(a).expect("dense ids").confusion).collect();
        TruthEstimate::from_posteriors(self.posteriors.clone()).with_confusions(confusions)
    }

    /// Runs the full batch EM over the accumulated labels — identical
    /// operation order to [`DawidSkene`](super::DawidSkene) (pooled) /
    /// [`DsWindowed`] (windowed) — and resets the running statistics to the
    /// converged state.  Returns the number of EM iterations run.
    ///
    /// Pooled mode first canonicalises each instance's label list by
    /// `(annotator, class, arrival)`, so the converged state is independent
    /// of the arrival interleaving; windowed mode keeps the recorded stream
    /// positions (the arrival order is the windowed clock).
    pub fn finalize(&mut self) -> usize {
        let k = self.config.num_classes;
        for labels in &mut self.labels {
            labels.sort_by_key(|l| (l.annotator, l.class, l.position));
        }
        // majority-vote initialisation, exactly like the batch estimators
        for (u, labels) in self.labels.iter().enumerate() {
            let mut votes = vec![0.0f32; k];
            for l in labels {
                votes[l.class] += 1.0;
            }
            self.posteriors[u] = stats::normalized(&votes);
        }
        // windowed mode mirrors DsWindowed's weak-column backoff: labels in
        // weakly-supported window columns are judged by the pooled confusion
        let backoff = self.config.window.map(|w| w.backoff_min_support).unwrap_or(0.0);
        let support = self.config.window.map(|_| self.windowed_support());
        let mut confusions = self.m_step();
        let mut pooled = self.config.window.map(|_| self.pooled_m_step());
        let mut prior = class_prior(&self.posteriors, k);
        let mut iterations = 0;
        for _ in 0..self.config.max_iters {
            iterations += 1;
            let mut max_delta = 0.0f32;
            for (u, labels) in self.labels.iter().enumerate() {
                let mut log_post: Vec<f32> = (0..k).map(|m| prior[m].max(1e-12).ln()).collect();
                for l in labels {
                    let window = self.config.window_of(l.position);
                    let confusion = match (&support, &pooled) {
                        (Some(s), Some(p)) if s[l.annotator][window * k + l.class] < backoff => &p[l.annotator],
                        _ => &confusions[l.annotator][window],
                    };
                    for (m, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusion[(m, l.class)].max(1e-12).ln();
                    }
                }
                let new_post = stats::softmax(&log_post);
                let delta: f32 =
                    new_post.iter().zip(&self.posteriors[u]).map(|(a, b)| (a - b).abs()).sum::<f32>() / k as f32;
                max_delta = max_delta.max(delta);
                self.posteriors[u] = new_post;
            }
            confusions = self.m_step();
            if let Some(p) = &mut pooled {
                *p = self.pooled_m_step();
            }
            prior = class_prior(&self.posteriors, k);
            if max_delta < self.config.tol {
                break;
            }
        }
        self.rebuild_running_state();
        iterations
    }

    /// Blended per-annotator label-count support (`window * k + class`
    /// layout) over the accumulated labels — the replay twin of
    /// `ds_windowed::windowed_support`.  Posterior-independent, so it is
    /// computed once per finalization pass.
    fn windowed_support(&self) -> Vec<Vec<f32>> {
        let k = self.config.num_classes;
        let size = self.config.window.expect("support is a windowed-mode statistic").size;
        let mut raw: Vec<Vec<f32>> =
            self.stream_len.iter().map(|&len| vec![0.0; len.div_ceil(size).max(1) * k]).collect();
        for labels in &self.labels {
            for l in labels {
                raw[l.annotator][self.config.window_of(l.position) * k + l.class] += 1.0;
            }
        }
        raw.into_iter().map(|counts| decay_blend_flat(&counts, k, self.config.blend_decay())).collect()
    }

    /// Pooled per-annotator confusions over the accumulated labels —
    /// reproduces `estimate_confusions` (smoothing first, mass in unit
    /// order) for the windowed finalization backoff.
    fn pooled_m_step(&self) -> Vec<Matrix> {
        let k = self.config.num_classes;
        let mut confusions = vec![Matrix::full(k, k, self.config.smoothing); self.num_annotators()];
        for (u, labels) in self.labels.iter().enumerate() {
            for l in labels {
                for m in 0..k {
                    confusions[l.annotator][(m, l.class)] += self.posteriors[u][m];
                }
            }
        }
        for c in &mut confusions {
            normalize_confusion_rows(c);
        }
        confusions
    }

    /// The batch M-step over the accumulated labels: per annotator, per
    /// window, smoothed row-normalised confusions.  Pooled mode reproduces
    /// `estimate_confusions` bit for bit (smoothing first, mass added in
    /// unit order); windowed mode reproduces `estimate_windowed_confusions`
    /// (mass first, blend, then smoothing).
    fn m_step(&self) -> Vec<Vec<Matrix>> {
        let k = self.config.num_classes;
        match self.config.window {
            None => {
                let mut confusions: Vec<Matrix> =
                    vec![Matrix::full(k, k, self.config.smoothing); self.num_annotators()];
                for (u, labels) in self.labels.iter().enumerate() {
                    for l in labels {
                        for m in 0..k {
                            confusions[l.annotator][(m, l.class)] += self.posteriors[u][m];
                        }
                    }
                }
                confusions
                    .into_iter()
                    .map(|mut c| {
                        normalize_confusion_rows(&mut c);
                        vec![c]
                    })
                    .collect()
            }
            Some(window) => {
                let mut raw: Vec<Vec<Matrix>> = (0..self.num_annotators())
                    .map(|a| {
                        let windows = self.stream_len[a].div_ceil(window.size).max(1);
                        vec![Matrix::zeros(k, k); windows]
                    })
                    .collect();
                for (u, labels) in self.labels.iter().enumerate() {
                    for l in labels {
                        let counts = &mut raw[l.annotator][self.config.window_of(l.position)];
                        for m in 0..k {
                            counts[(m, l.class)] += self.posteriors[u][m];
                        }
                    }
                }
                raw.into_iter()
                    .map(|windows| {
                        let mut blended = decay_blend(&windows, window.decay);
                        for c in &mut blended {
                            for v in c.as_mut_slice() {
                                *v += self.config.smoothing;
                            }
                            normalize_confusion_rows(c);
                        }
                        blended
                    })
                    .collect()
            }
        }
    }

    /// Recomputes the running raw counts and prior from the current
    /// posteriors (after a finalization pass) and clears the dirty set.
    fn rebuild_running_state(&mut self) {
        let k = self.config.num_classes;
        for counts in &mut self.counts {
            for c in counts.iter_mut() {
                c.as_mut_slice().fill(0.0);
            }
        }
        for (u, labels) in self.labels.iter().enumerate() {
            for l in labels {
                let counts = &mut self.counts[l.annotator][self.config.window_of(l.position)];
                for m in 0..k {
                    counts[(m, l.class)] += self.posteriors[u][m];
                }
            }
        }
        self.prior_counts = vec![0.0; k];
        for p in &self.posteriors {
            for (m, &v) in p.iter().enumerate() {
                self.prior_counts[m] += v;
            }
        }
        self.normalized = vec![None; self.num_annotators()];
        self.dirty.clear();
        self.in_dirty.iter_mut().for_each(|d| *d = false);
    }

    /// One online E-step for instance `u` against the current (cached)
    /// confusions and prior.
    fn e_step(&mut self, u: usize) -> Vec<f32> {
        let k = self.config.num_classes;
        for slot in 0..self.labels[u].len() {
            let annotator = self.labels[u][slot].annotator;
            self.ensure_normalized(annotator);
        }
        let prior = self.prior();
        let mut log_post: Vec<f32> = prior.iter().map(|p| p.max(1e-12).ln()).collect();
        for l in &self.labels[u] {
            let windows = self.normalized[l.annotator].as_ref().expect("cache ensured above");
            let confusion = &windows[self.config.window_of(l.position)];
            for (m, lp) in log_post.iter_mut().enumerate().take(k) {
                *lp += confusion[(m, l.class)].max(1e-12).ln();
            }
        }
        stats::softmax(&log_post)
    }

    /// Replaces instance `u`'s posterior, pushing the delta into the prior
    /// statistic and every touched annotator's window counts.
    fn apply_posterior(&mut self, u: usize, new_post: Vec<f32>) {
        let old = std::mem::replace(&mut self.posteriors[u], new_post);
        let k = self.config.num_classes;
        for slot in 0..self.labels[u].len() {
            let l = self.labels[u][slot];
            let counts = &mut self.counts[l.annotator][self.config.window_of(l.position)];
            for m in 0..k {
                counts[(m, l.class)] += self.posteriors[u][m] - old[m];
            }
            self.normalized[l.annotator] = None;
        }
        for (m, &old_m) in old.iter().enumerate().take(k) {
            self.prior_counts[m] += self.posteriors[u][m] - old_m;
        }
    }

    /// Smoothed, normalised class prior from the running posterior sums.
    fn prior(&self) -> Vec<f32> {
        let mut prior: Vec<f32> = self.prior_counts.iter().map(|&c| 1e-6 + c.max(0.0)).collect();
        stats::normalize_in_place(&mut prior);
        prior
    }

    fn ensure_normalized(&mut self, annotator: usize) {
        if self.normalized[annotator].is_some() {
            return;
        }
        let mut blended = decay_blend(&self.counts[annotator], self.config.blend_decay());
        let k = self.config.num_classes;
        for c in &mut blended {
            for v in c.as_mut_slice() {
                // running counts are maintained by float deltas; tiny
                // negative drift must not survive into a probability
                *v = v.max(0.0) + self.config.smoothing;
            }
            for m in 0..k {
                c[(m, m)] += self.config.diag_prior;
            }
            normalize_confusion_rows(c);
        }
        self.normalized[annotator] = Some(blended);
    }

    fn mark_dirty(&mut self, instance: usize) {
        if !self.in_dirty[instance] {
            self.in_dirty[instance] = true;
            self.dirty.push_back(instance);
        }
    }

    fn grow_instances(&mut self, len: usize) {
        while self.labels.len() < len {
            self.labels.push(Vec::new());
            self.posteriors.push(vec![1.0 / self.config.num_classes as f32; self.config.num_classes]);
            self.in_dirty.push(false);
            let m = self.posteriors.last().expect("just pushed");
            for (c, &v) in m.iter().enumerate() {
                self.prior_counts[c] += v;
            }
        }
    }

    fn grow_annotators(&mut self, len: usize) {
        while self.stream_len.len() < len {
            self.stream_len.push(0);
            self.counts.push(Vec::new());
            self.normalized.push(None);
            self.by_annotator.push(Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;
    use crate::truth::{DawidSkene, MajorityVote, TruthInference};

    fn max_posterior_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs())).fold(0.0f32, f32::max)
    }

    #[test]
    fn replay_and_finalize_matches_batch_ds_tightly() {
        let view = planted_view(300, 2, &[0.95, 0.9, 0.6, 0.55, 0.5], 4, 7);
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest_view(&view);
        stream.finalize();
        let batch = DawidSkene::default().infer(&view);
        let diff = max_posterior_diff(&stream.estimate().posteriors, &batch.posteriors);
        assert!(diff < 1e-4, "finalized stream must match batch DS, max diff {diff}");
    }

    #[test]
    fn online_posteriors_track_batch_ds_before_finalize() {
        let view = planted_view(300, 2, &[0.95, 0.9, 0.6, 0.55, 0.5], 4, 7);
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest_view(&view);
        stream.drain_dirty();
        let online = stream.estimate().accuracy(&view.gold);
        let batch = DawidSkene::default().infer(&view).accuracy(&view.gold);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        assert!(online >= mv - 0.02, "online estimate {online} must not fall below MV {mv}");
        assert!((online - batch).abs() < 0.05, "online {online} should track batch DS {batch}");
    }

    #[test]
    fn ingest_grows_state_and_counts() {
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(3));
        stream.ingest(0, 0, 1).unwrap();
        stream.ingest(4, 2, 2).unwrap();
        assert_eq!(stream.num_instances(), 5);
        assert_eq!(stream.num_annotators(), 3);
        assert_eq!(stream.total_labels(), 2);
        assert_eq!(stream.consensus(1).unwrap().labels, 0);
        assert_eq!(stream.consensus(4).unwrap().labels, 1);
        assert!(stream.consensus(9).is_none());
        assert!(stream.annotator(7).is_none());
    }

    #[test]
    fn out_of_range_class_is_rejected_without_state_change() {
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest(0, 0, 1).unwrap();
        let before = stream.estimate().posteriors;
        assert!(stream.ingest(0, 0, 2).is_err());
        assert_eq!(stream.total_labels(), 1);
        assert_eq!(stream.estimate().posteriors, before);
    }

    #[test]
    fn consensus_entropy_drops_as_agreeing_labels_arrive() {
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest(0, 0, 1).unwrap();
        let early = stream.consensus(0).unwrap().entropy;
        for a in 1..6 {
            stream.ingest(0, a, 1).unwrap();
        }
        stream.drain_dirty();
        let late = stream.consensus(0).unwrap();
        assert!(late.entropy < early, "unanimous labels must reduce entropy: {early} -> {}", late.entropy);
        assert_eq!(late.hard, 1);
    }

    #[test]
    fn annotator_stat_separates_expert_from_spammer() {
        let view = planted_view(400, 2, &[0.95, 0.9, 0.5], 3, 11);
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest_view(&view);
        stream.finalize();
        let expert = stream.annotator(0).unwrap();
        let spammer = stream.annotator(2).unwrap();
        assert!(
            expert.reliability > spammer.reliability + 0.2,
            "expert {} vs spammer {}",
            expert.reliability,
            spammer.reliability
        );
        let middle = stream.annotator(1).unwrap();
        assert_eq!(
            expert.labels + middle.labels + spammer.labels,
            view.annotations.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn dirty_propagation_eventually_rejudges_old_instances() {
        // first labels land with an uninformative pool; once an annotator's
        // later stream reveals their quality, earlier instances move too
        let mut stream = StreamingTruth::new(StreamingConfig::pooled(2));
        stream.ingest(0, 0, 1).unwrap();
        let backlog_before = stream.refreshed_instances();
        for u in 1..40 {
            stream.ingest(u, 0, (u % 2 == 0) as usize).unwrap();
            stream.ingest(u, 1, (u % 2 == 0) as usize).unwrap();
        }
        stream.drain_dirty();
        assert!(stream.refreshed_instances() > backlog_before + 39, "propagation must re-refresh instances");
        assert_eq!(stream.dirty_backlog(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn one_class_config_is_rejected() {
        let _ = StreamingTruth::new(StreamingConfig::pooled(1));
    }

    #[test]
    #[should_panic(expected = "stream window decay must be in (0, 1]")]
    fn bad_decay_is_rejected() {
        let _ = StreamingTruth::new(StreamingConfig::windowed(2, 10, 1.5));
    }
}
