//! CATD — confidence-aware truth discovery (Li et al., 2014), adapted to
//! categorical crowd labels.

use super::{TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use lncl_tensor::stats;

/// CATD addresses the long tail of annotators who provide very few labels:
/// an annotator's weight is the upper bound of a chi-squared confidence
/// interval on their (inverse) error count, so sparsely observed annotators
/// are not over-trusted.  The chi-squared quantile is computed with the
/// Wilson–Hilferty approximation.
#[derive(Debug, Clone, Copy)]
pub struct Catd {
    /// Number of alternating iterations.
    pub max_iters: usize,
    /// Confidence level of the interval (the original paper uses 0.95).
    pub confidence: f32,
}

impl Default for Catd {
    fn default() -> Self {
        Self { max_iters: 20, confidence: 0.95 }
    }
}

/// Standard-normal quantile via the Acklam rational approximation (adequate
/// for the confidence levels used here).
fn normal_quantile(p: f32) -> f32 {
    let p = p.clamp(1e-6, 1.0 - 1e-6) as f64;
    // coefficients of the Acklam approximation
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.383_577_518_672_69e2,
        -3.066479806614716e1,
        2.506628277459239,
    ];
    const B: [f64; 5] =
        [-5.447609879822406e1, 1.615858368580409e2, -1.556989798598866e2, 6.680131188771972e1, -1.328068155288572e1];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838,
        -2.549732539343734,
        4.374664141464968,
        2.938163982698783,
    ];
    const D: [f64; 4] = [7.784695709041462e-3, 3.224671290700398e-1, 2.445134137142996, 3.754408661907416];
    let plow = 0.02425;
    let x = if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    x as f32
}

/// Chi-squared quantile with `k` degrees of freedom via Wilson–Hilferty.
fn chi_squared_quantile(p: f32, k: f32) -> f32 {
    if k <= 0.0 {
        return 0.0;
    }
    let z = normal_quantile(p);
    let term = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * term.powi(3)
}

impl TruthInference for Catd {
    fn name(&self) -> &'static str {
        "CATD"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let mut weights = vec![1.0f32; view.num_annotators];
        let mut posteriors = vec![vec![1.0 / k as f32; k]; view.num_units()];

        for _ in 0..self.max_iters {
            for (u, annotations) in view.annotations.iter().enumerate() {
                let mut scores = vec![0.0f32; k];
                for &(annotator, class) in annotations {
                    scores[class] += weights[annotator];
                }
                stats::normalize_in_place(&mut scores);
                posteriors[u] = scores;
            }
            // weight update: chi^2_{alpha, n_j} / (sum of squared errors)
            let mut errors = vec![0.0f32; view.num_annotators];
            let mut counts = vec![0.0f32; view.num_annotators];
            for (u, annotations) in view.annotations.iter().enumerate() {
                let truth = stats::argmax(&posteriors[u]);
                for &(annotator, class) in annotations {
                    counts[annotator] += 1.0;
                    if class != truth {
                        errors[annotator] += 1.0;
                    }
                }
            }
            for j in 0..view.num_annotators {
                if counts[j] > 0.0 {
                    let quantile = chi_squared_quantile(self.confidence, counts[j]);
                    weights[j] = quantile / (errors[j] + 0.5);
                } else {
                    weights[j] = 1.0;
                }
            }
            // normalise weights to keep the scale stable
            let max_w = weights.iter().cloned().fold(f32::MIN_POSITIVE, f32::max);
            weights.iter_mut().for_each(|w| *w /= max_w);
        }
        TruthEstimate::from_posteriors(posteriors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;
    use crate::truth::{MajorityVote, TruthInference};

    #[test]
    fn normal_quantile_reference_points() {
        assert!((normal_quantile(0.5)).abs() < 1e-3);
        assert!((normal_quantile(0.975) - 1.96).abs() < 0.02);
        assert!((normal_quantile(0.025) + 1.96).abs() < 0.02);
    }

    #[test]
    fn chi_squared_quantile_reference_points() {
        // chi2_{0.95, 1} ≈ 3.841, chi2_{0.95, 10} ≈ 18.307
        assert!((chi_squared_quantile(0.95, 1.0) - 3.841).abs() < 0.3);
        assert!((chi_squared_quantile(0.95, 10.0) - 18.307).abs() < 0.5);
    }

    #[test]
    fn performs_at_least_as_well_as_mv() {
        let view = planted_view(500, 2, &[0.93, 0.9, 0.55, 0.5, 0.52], 5, 59);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        let catd = Catd::default().infer(&view).accuracy(&view.gold);
        assert!(catd >= mv - 0.01, "CATD {catd} vs MV {mv}");
    }

    #[test]
    fn posteriors_are_distributions() {
        let view = planted_view(120, 3, &[0.8, 0.7, 0.6, 0.5], 3, 61);
        let est = Catd::default().infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }
}
