//! Majority voting.

use super::{vote_counts, TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use lncl_tensor::stats;

/// Majority voting: the posterior of each unit is the empirical distribution
/// of the received labels (uniform when a unit has no labels).  This is both
/// the simplest baseline of the paper and the initialiser of Logic-LNCL
/// (Algorithm 1, line 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl TruthInference for MajorityVote {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let counts = vote_counts(view);
        let posteriors: Vec<Vec<f32>> = (0..view.num_units()).map(|u| stats::normalized(counts.row(u))).collect();
        TruthEstimate::from_posteriors(posteriors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;

    #[test]
    fn recovers_truth_with_accurate_annotators() {
        let view = planted_view(300, 2, &[0.9, 0.9, 0.9, 0.9, 0.9], 5, 1);
        let est = MajorityVote.infer(&view);
        assert!(est.accuracy(&view.gold) > 0.95);
    }

    #[test]
    fn posterior_is_vote_fraction() {
        let view = planted_view(50, 3, &[0.8, 0.8, 0.8], 3, 2);
        let est = MajorityVote.infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            // with 3 votes the fractions are multiples of 1/3
            for &v in p {
                let scaled = v * 3.0;
                assert!((scaled - scaled.round()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn struggles_against_majority_of_spammers() {
        // 1 expert vs 4 near-random annotators: plain MV should do clearly
        // worse than the expert alone would.
        let view = planted_view(400, 2, &[0.95, 0.52, 0.52, 0.52, 0.52], 5, 3);
        let est = MajorityVote.infer(&view);
        let acc = est.accuracy(&view.gold);
        assert!(acc < 0.9, "MV should be hurt by spammers, got {acc}");
    }

    #[test]
    fn name_is_mv() {
        assert_eq!(MajorityVote.name(), "MV");
    }
}
