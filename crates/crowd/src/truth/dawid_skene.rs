//! Dawid–Skene EM aggregation (Dawid & Skene, 1979).

use super::{class_prior, estimate_confusions, TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::truth::MajorityVote;
use lncl_tensor::stats;

/// The classic Dawid–Skene model: a latent true class per unit, a class
/// prior, and one confusion matrix per annotator, fitted with EM.
#[derive(Debug, Clone, Copy)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the mean absolute posterior change.
    pub tol: f32,
    /// Additive smoothing used when estimating confusion matrices.
    pub smoothing: f32,
}

impl Default for DawidSkene {
    fn default() -> Self {
        Self { max_iters: 50, tol: 1e-4, smoothing: 0.01 }
    }
}

impl TruthInference for DawidSkene {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        // initialise with majority voting
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut confusions = estimate_confusions(view, &posteriors, self.smoothing);
        let mut prior = class_prior(&posteriors, k);

        for _ in 0..self.max_iters {
            // E-step: p(t=m | labels) ∝ prior_m * Π_j pi^{(j)}_{m, y_j}
            let mut max_delta = 0.0f32;
            for (u, annotations) in view.annotations.iter().enumerate() {
                let mut log_post: Vec<f32> = (0..k).map(|m| prior[m].max(1e-12).ln()).collect();
                for &(annotator, class) in annotations {
                    for (m, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusions[annotator][(m, class)].max(1e-12).ln();
                    }
                }
                let new_post = stats::softmax(&log_post);
                let delta: f32 =
                    new_post.iter().zip(&posteriors[u]).map(|(a, b)| (a - b).abs()).sum::<f32>() / k as f32;
                max_delta = max_delta.max(delta);
                posteriors[u] = new_post;
            }
            // M-step
            confusions = estimate_confusions(view, &posteriors, self.smoothing);
            prior = class_prior(&posteriors, k);
            if max_delta < self.tol {
                break;
            }
        }
        TruthEstimate::from_posteriors(posteriors).with_confusions(confusions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::overall_reliability;
    use crate::truth::testutil::planted_view;
    use crate::truth::TruthInference;

    #[test]
    fn recovers_truth_better_than_mv_with_spammers() {
        // one strong annotator among near-random ones: DS should learn to
        // trust the expert and beat majority voting.
        let view = planted_view(600, 2, &[0.95, 0.93, 0.55, 0.5, 0.5, 0.5], 5, 7);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
        assert!(ds > mv + 0.02, "DS {ds} should beat MV {mv}");
        assert!(ds > 0.85, "DS accuracy {ds}");
    }

    #[test]
    fn estimates_annotator_reliability_ordering() {
        let view = planted_view(500, 3, &[0.9, 0.7, 0.4], 3, 9);
        let est = DawidSkene::default().infer(&view);
        let confusions = est.confusions.expect("DS estimates confusions");
        let r: Vec<f32> = confusions.iter().map(overall_reliability).collect();
        assert!(r[0] > r[1] && r[1] > r[2], "reliability ordering {r:?}");
    }

    #[test]
    fn posteriors_are_distributions() {
        let view = planted_view(100, 4, &[0.8, 0.7, 0.6, 0.5], 3, 11);
        let est = DawidSkene::default().infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn converges_quickly_on_clean_data() {
        let view = planted_view(200, 2, &[0.99, 0.99, 0.99], 3, 13);
        let fast = DawidSkene { max_iters: 3, ..Default::default() }.infer(&view);
        assert!(fast.accuracy(&view.gold) > 0.97);
    }
}
