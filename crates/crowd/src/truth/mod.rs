//! Truth-inference baselines.
//!
//! These are the label-aggregation methods the paper compares against in the
//! "Truth Inference" blocks of Tables II and III: Majority Voting,
//! Dawid–Skene, GLAD, IBCC, PM, CATD, plus the sequence-aware HMM-Crowd and
//! a simplified BSC-seq.  They all consume the flattened
//! [`AnnotationView`] of a dataset and produce a
//! [`TruthEstimate`].

pub mod bsc_seq;
pub mod catd;
pub mod dawid_skene;
pub mod ds_windowed;
pub mod glad;
pub mod hmm_crowd;
pub mod ibcc;
pub mod mv;
pub mod pm;
pub mod streaming;

pub use bsc_seq::BscSeq;
pub use catd::Catd;
pub use dawid_skene::DawidSkene;
pub use ds_windowed::DsWindowed;
pub use glad::Glad;
pub use hmm_crowd::HmmCrowd;
pub use ibcc::Ibcc;
pub use mv::MajorityVote;
pub use pm::Pm;
pub use streaming::{StreamingConfig, StreamingTruth};

use crate::data::AnnotationView;
use crate::metrics::accuracy;
use lncl_tensor::{stats, Matrix};

/// Output of a truth-inference method.
#[derive(Debug, Clone)]
pub struct TruthEstimate {
    /// Per-unit posterior distribution over classes.
    pub posteriors: Vec<Vec<f32>>,
    /// Per-unit hard label (argmax of the posterior).
    pub hard: Vec<usize>,
    /// Estimated per-annotator confusion matrices, when the method models
    /// them (DS/IBCC/HMM-Crowd/BSC-seq), indexed by annotator.
    pub confusions: Option<Vec<Matrix>>,
}

impl TruthEstimate {
    /// Builds the estimate from posteriors alone.
    pub fn from_posteriors(posteriors: Vec<Vec<f32>>) -> Self {
        let hard = posteriors.iter().map(|p| stats::argmax(p)).collect();
        Self { posteriors, hard, confusions: None }
    }

    /// Attaches annotator confusion estimates.
    pub fn with_confusions(mut self, confusions: Vec<Matrix>) -> Self {
        self.confusions = Some(confusions);
        self
    }

    /// Unit-level accuracy of the hard labels against a gold reference.
    pub fn accuracy(&self, gold: &[usize]) -> f32 {
        accuracy(&self.hard, gold)
    }

    /// Reassembles the per-unit hard labels into per-instance sequences
    /// using the layout of the originating [`AnnotationView`].
    pub fn hard_by_instance(&self, view: &AnnotationView) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = view.instance_len.iter().map(|&len| Vec::with_capacity(len)).collect();
        for (u, &label) in self.hard.iter().enumerate() {
            out[view.unit_instance[u]].push(label);
        }
        out
    }
}

/// A truth-inference method.
pub trait TruthInference {
    /// Short display name used by the experiment tables.
    fn name(&self) -> &'static str;

    /// Infers the per-unit truth posterior from the noisy annotations.
    fn infer(&self, view: &AnnotationView) -> TruthEstimate;
}

/// Per-unit vote-count matrix (`units x classes`), the starting point of
/// several methods.
pub(crate) fn vote_counts(view: &AnnotationView) -> Matrix {
    let mut counts = Matrix::zeros(view.num_units(), view.num_classes);
    for (u, annotations) in view.annotations.iter().enumerate() {
        for &(_, class) in annotations {
            counts[(u, class)] += 1.0;
        }
    }
    counts
}

/// Class prior estimated from a soft posterior assignment.
pub(crate) fn class_prior(posteriors: &[Vec<f32>], num_classes: usize) -> Vec<f32> {
    let mut prior = vec![1e-6f32; num_classes];
    for p in posteriors {
        for (k, &v) in p.iter().enumerate() {
            prior[k] += v;
        }
    }
    stats::normalize_in_place(&mut prior);
    prior
}

/// Estimates per-annotator confusion matrices from soft posteriors
/// (the M-step shared by DS-family methods), with additive smoothing.
pub(crate) fn estimate_confusions(view: &AnnotationView, posteriors: &[Vec<f32>], smoothing: f32) -> Vec<Matrix> {
    let k = view.num_classes;
    let mut confusions = vec![Matrix::full(k, k, smoothing); view.num_annotators];
    for (u, annotations) in view.annotations.iter().enumerate() {
        for &(annotator, class) in annotations {
            for m in 0..k {
                confusions[annotator][(m, class)] += posteriors[u][m];
            }
        }
    }
    for c in &mut confusions {
        crate::metrics::normalize_confusion_rows(c);
    }
    confusions
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::annotator::ConfusionAnnotator;
    use crate::data::{CrowdDataset, CrowdLabel, Instance, TaskKind};
    use lncl_tensor::TensorRng;

    /// Builds a synthetic classification view with known annotator
    /// accuracies so each method's recovery rate can be measured.
    pub fn planted_view(
        num_units: usize,
        num_classes: usize,
        accuracies: &[f32],
        labels_per_unit: usize,
        seed: u64,
    ) -> AnnotationView {
        let mut rng = TensorRng::seed_from_u64(seed);
        let annotators: Vec<ConfusionAnnotator> =
            accuracies.iter().map(|&a| ConfusionAnnotator::with_accuracy(num_classes, a)).collect();
        let mut train = Vec::with_capacity(num_units);
        for _ in 0..num_units {
            let truth = rng.usize_below(num_classes);
            let chosen = rng.sample_indices(annotators.len(), labels_per_unit.min(annotators.len()));
            let crowd_labels = chosen
                .into_iter()
                .map(|a| CrowdLabel { annotator: a, labels: vec![annotators[a].annotate(truth, &mut rng)] })
                .collect();
            train.push(Instance { tokens: vec![1], gold: vec![truth], crowd_labels });
        }
        let dataset = CrowdDataset {
            task: TaskKind::Classification,
            num_classes,
            num_annotators: accuracies.len(),
            vocab: vec!["<pad>".into(), "w".into()],
            class_names: (0..num_classes).map(|k| format!("c{k}")).collect(),
            train,
            dev: vec![],
            test: vec![],
            but_token: None,
            however_token: None,
        };
        dataset.annotation_view()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::planted_view;
    use super::*;

    #[test]
    fn vote_counts_shape() {
        let view = planted_view(20, 3, &[0.9, 0.8, 0.7, 0.6], 3, 1);
        let counts = vote_counts(&view);
        assert_eq!(counts.shape(), (20, 3));
        for u in 0..20 {
            assert!((counts.row(u).iter().sum::<f32>() - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn class_prior_normalised() {
        let posts = vec![vec![0.8, 0.2], vec![0.3, 0.7]];
        let prior = class_prior(&posts, 2);
        assert!((prior.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((prior[0] - 0.55).abs() < 1e-3);
    }

    #[test]
    fn estimate_confusions_identifies_good_annotator() {
        let view = planted_view(300, 2, &[0.95, 0.55], 2, 2);
        // use gold as (degenerate) posteriors
        let posteriors: Vec<Vec<f32>> = view
            .gold
            .iter()
            .map(|&g| {
                let mut p = vec![0.0; 2];
                p[g] = 1.0;
                p
            })
            .collect();
        let confusions = estimate_confusions(&view, &posteriors, 0.1);
        let good = crate::metrics::overall_reliability(&confusions[0]);
        let bad = crate::metrics::overall_reliability(&confusions[1]);
        assert!(good > bad + 0.2, "good {good} vs bad {bad}");
    }

    #[test]
    fn hard_by_instance_reassembles_sequences() {
        let view = planted_view(5, 2, &[0.9, 0.9, 0.9], 2, 3);
        let est = TruthEstimate::from_posteriors(vec![vec![1.0, 0.0]; 5]);
        let grouped = est.hard_by_instance(&view);
        assert_eq!(grouped.len(), 5);
        assert!(grouped.iter().all(|g| g == &vec![0]));
    }
}
