//! BSC-seq (Simpson & Gurevych, 2019), simplified: Bayesian sequence
//! combination with Dirichlet priors on the annotator and transition models.

use super::{TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::metrics::normalize_confusion_rows;
use crate::truth::hmm_crowd::{apply_bio_mask, forward_backward, sentence_log_emissions, viterbi, HmmParams};
use crate::truth::MajorityVote;
use lncl_tensor::{stats, Matrix};

/// A MAP approximation of Bayesian sequence combination: identical graphical
/// structure to [`HmmCrowd`](crate::truth::HmmCrowd) (per-annotator confusion
/// matrices + first-order Markov prior over the true sequence) but with
/// Dirichlet pseudo-counts on every multinomial, which is what gives the
/// original method its robustness on sparse annotators.  The full variational
/// treatment of the original paper is out of scope; the MAP version exposes
/// the same qualitative behaviour (it sits between DS and HMM-Crowd on the
/// NER table).
#[derive(Debug, Clone, Copy)]
pub struct BscSeq {
    /// Number of EM iterations.
    pub max_iters: usize,
    /// Dirichlet pseudo-count on the diagonal of annotator confusion rows.
    pub confusion_diag_prior: f32,
    /// Dirichlet pseudo-count off the diagonal.
    pub confusion_off_prior: f32,
    /// Dirichlet pseudo-count on transition rows (favouring self-consistent
    /// BIO sequences is learned, not imposed).
    pub transition_prior: f32,
}

impl Default for BscSeq {
    fn default() -> Self {
        // The strong Dirichlet prior on the confusion diagonal is what makes
        // the Bayesian variant more robust than plain HMM-Crowd on sparse
        // annotators (mirroring the BSC-seq > HMM-Crowd ordering of Table III).
        Self { max_iters: 5, confusion_diag_prior: 8.0, confusion_off_prior: 1.0, transition_prior: 0.5 }
    }
}

impl BscSeq {
    fn estimate_confusions_map(&self, view: &AnnotationView, posteriors: &[Vec<f32>]) -> Vec<Matrix> {
        let k = view.num_classes;
        let mut confusions =
            vec![
                Matrix::from_fn(k, k, |r, c| if r == c { self.confusion_diag_prior } else { self.confusion_off_prior });
                view.num_annotators
            ];
        for (u, annotations) in view.annotations.iter().enumerate() {
            for &(annotator, class) in annotations {
                for m in 0..k {
                    confusions[annotator][(m, class)] += posteriors[u][m];
                }
            }
        }
        for c in &mut confusions {
            normalize_confusion_rows(c);
        }
        confusions
    }
}

impl TruthInference for BscSeq {
    fn name(&self) -> &'static str {
        "BSC-seq"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let sentences = view.units_by_instance();
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut confusions = self.estimate_confusions_map(view, &posteriors);
        let mut params = HmmParams { initial: vec![1.0 / k as f32; k], transition: Matrix::full(k, k, 1.0 / k as f32) };

        for _ in 0..self.max_iters {
            let mut init_counts = vec![self.transition_prior; k];
            let mut trans_counts = Matrix::full(k, k, self.transition_prior);
            for sentence in &sentences {
                let log_emissions = sentence_log_emissions(view, sentence, &confusions, k);
                let (marginals, xi) = forward_backward(&log_emissions, &params);
                for (pos, &u) in sentence.iter().enumerate() {
                    posteriors[u] = marginals[pos].clone();
                }
                for (m, count) in init_counts.iter_mut().enumerate() {
                    *count += marginals[0][m];
                }
                lncl_tensor::ops::add_assign(&mut trans_counts, &xi);
            }
            // a sentence cannot start inside an entity
            for (class, count) in init_counts.iter_mut().enumerate() {
                if class != 0 && class % 2 == 0 {
                    *count = 0.0;
                }
            }
            stats::normalize_in_place(&mut init_counts);
            params.initial = init_counts;
            normalize_confusion_rows(&mut trans_counts);
            apply_bio_mask(&mut trans_counts);
            params.transition = trans_counts;
            confusions = self.estimate_confusions_map(view, &posteriors);
        }
        // Joint Viterbi decoding for contiguous spans (see HmmCrowd).
        let mut estimate = TruthEstimate::from_posteriors(posteriors);
        for sentence in &sentences {
            let log_emissions = sentence_log_emissions(view, sentence, &confusions, k);
            let path = viterbi(&log_emissions, &params);
            for (pos, &u) in sentence.iter().enumerate() {
                estimate.hard[u] = path[pos];
            }
        }
        estimate.with_confusions(confusions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_ner, NerDatasetConfig};
    use crate::metrics::span_f1;
    use crate::truth::{MajorityVote, TruthInference};

    #[test]
    fn beats_majority_voting_on_ner() {
        let data = generate_ner(&NerDatasetConfig {
            train_size: 250,
            num_annotators: 20,
            min_labels_per_instance: 2,
            max_labels_per_instance: 4,
            seed: 1,
            ..NerDatasetConfig::default()
        });
        let view = data.annotation_view();
        let gold: Vec<Vec<usize>> = data.train.iter().map(|i| i.gold.clone()).collect();
        let mv_f1 = span_f1(&MajorityVote.infer(&view).hard_by_instance(&view), &gold).f1;
        let bsc_f1 =
            span_f1(&BscSeq { max_iters: 15, ..Default::default() }.infer(&view).hard_by_instance(&view), &gold).f1;
        assert!(bsc_f1 > mv_f1 - 0.01, "BSC-seq {bsc_f1} vs MV {mv_f1}");
    }

    #[test]
    fn estimates_confusions_for_every_annotator() {
        let data = generate_ner(&NerDatasetConfig::tiny());
        let view = data.annotation_view();
        let est = BscSeq { max_iters: 5, ..Default::default() }.infer(&view);
        let confusions = est.confusions.unwrap();
        assert_eq!(confusions.len(), data.num_annotators);
        for c in &confusions {
            for r in 0..c.rows() {
                assert!((c.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn posteriors_are_distributions() {
        let data = generate_ner(&NerDatasetConfig::tiny());
        let view = data.annotation_view();
        let est = BscSeq { max_iters: 3, ..Default::default() }.infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
    }
}
