//! HMM-Crowd (Nguyen et al., 2017): sequence-aware aggregation of crowd
//! labels with a hidden-Markov prior over the true label sequence.

use super::{estimate_confusions, TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::truth::MajorityVote;
use lncl_tensor::{stats, Matrix};

/// HMM-Crowd combines the Dawid–Skene annotator model with a first-order
/// Markov chain over the true labels of each sentence: the E-step runs the
/// forward–backward algorithm per sentence with per-token emission scores
/// `Π_j π^{(j)}_{m, y_j}`, and the M-step re-estimates the transition
/// matrix, the initial distribution and the annotator confusions.
#[derive(Debug, Clone, Copy)]
pub struct HmmCrowd {
    /// Number of EM iterations.
    pub max_iters: usize,
    /// Additive smoothing for confusion and transition counts.
    pub smoothing: f32,
    /// When true (the default), transitions that are invalid under the BIO
    /// encoding (entering `I-t` from anything other than `B-t`/`I-t`) are
    /// masked out, which is where most of HMM-Crowd's span-level benefit
    /// over token-independent DS comes from.
    pub bio_constrained: bool,
}

impl Default for HmmCrowd {
    fn default() -> Self {
        // The relatively strong smoothing keeps the annotator confusions
        // from co-adapting with the transition prior (which hurts strict
        // span F1); see the regression tests below.
        Self { max_iters: 5, smoothing: 2.0, bio_constrained: true }
    }
}

/// Returns true when a transition `from -> to` is valid under the BIO
/// encoding used by [`crate::datasets::ner`] (`0 = O`, odd = `B-t`,
/// even = `I-t`).
pub(crate) fn bio_transition_valid(from: usize, to: usize) -> bool {
    if to == 0 || to % 2 == 1 {
        // O and B-* can follow anything
        return true;
    }
    // I-t can only follow B-t or I-t of the same type
    to == from + 1 || to == from
}

/// Zeroes invalid BIO transitions in a count matrix and renormalises rows.
pub(crate) fn apply_bio_mask(transition: &mut Matrix) {
    let k = transition.rows();
    for from in 0..k {
        for to in 0..k {
            if !bio_transition_valid(from, to) {
                transition[(from, to)] = 0.0;
            }
        }
    }
    crate::metrics::normalize_confusion_rows(transition);
}

pub(crate) struct HmmParams {
    pub initial: Vec<f32>,
    pub transition: Matrix,
}

/// Per-token log-emission scores of one sentence under the annotator model:
/// `log Π_j π^{(j)}_{m, y_j}` for every class `m`.
pub(crate) fn sentence_log_emissions(
    view: &AnnotationView,
    sentence: &[usize],
    confusions: &[Matrix],
    num_classes: usize,
) -> Vec<Vec<f32>> {
    sentence
        .iter()
        .map(|&u| {
            let mut le = vec![0.0f32; num_classes];
            for &(annotator, class) in &view.annotations[u] {
                for (m, l) in le.iter_mut().enumerate() {
                    *l += confusions[annotator][(m, class)].max(1e-12).ln();
                }
            }
            le
        })
        .collect()
}

/// Runs forward–backward over one sentence given per-token log-emission
/// scores; returns per-token posterior marginals and the expected transition
/// counts.
pub(crate) fn forward_backward(log_emissions: &[Vec<f32>], params: &HmmParams) -> (Vec<Vec<f32>>, Matrix) {
    let t_len = log_emissions.len();
    let k = params.initial.len();
    assert!(t_len > 0, "forward_backward: empty sequence");

    let log_init: Vec<f32> = params.initial.iter().map(|p| p.max(1e-12).ln()).collect();
    let log_trans = Matrix::from_fn(k, k, |r, c| params.transition[(r, c)].max(1e-12).ln());

    // forward (log domain)
    let mut alpha = vec![vec![0.0f32; k]; t_len];
    for m in 0..k {
        alpha[0][m] = log_init[m] + log_emissions[0][m];
    }
    for t in 1..t_len {
        for m in 0..k {
            let candidates: Vec<f32> = (0..k).map(|p| alpha[t - 1][p] + log_trans[(p, m)]).collect();
            alpha[t][m] = stats::log_sum_exp(&candidates) + log_emissions[t][m];
        }
    }
    // backward
    let mut beta = vec![vec![0.0f32; k]; t_len];
    for t in (0..t_len.saturating_sub(1)).rev() {
        for m in 0..k {
            let candidates: Vec<f32> =
                (0..k).map(|n| log_trans[(m, n)] + log_emissions[t + 1][n] + beta[t + 1][n]).collect();
            beta[t][m] = stats::log_sum_exp(&candidates);
        }
    }
    // marginals
    let mut marginals = vec![vec![0.0f32; k]; t_len];
    for t in 0..t_len {
        let joint: Vec<f32> = (0..k).map(|m| alpha[t][m] + beta[t][m]).collect();
        marginals[t] = stats::softmax(&joint);
    }
    // expected transitions
    let mut xi = Matrix::zeros(k, k);
    for t in 0..t_len.saturating_sub(1) {
        let mut scores = Matrix::zeros(k, k);
        for m in 0..k {
            for n in 0..k {
                scores[(m, n)] = alpha[t][m] + log_trans[(m, n)] + log_emissions[t + 1][n] + beta[t + 1][n];
            }
        }
        let flat: Vec<f32> = scores.as_slice().to_vec();
        let norm = stats::log_sum_exp(&flat);
        for m in 0..k {
            for n in 0..k {
                xi[(m, n)] += (scores[(m, n)] - norm).exp();
            }
        }
    }
    (marginals, xi)
}

/// Viterbi decoding: the most likely label sequence under the HMM given
/// per-token log-emission scores.  Decoding the joint sequence (rather than
/// taking per-token marginal argmaxes) is what keeps predicted spans
/// contiguous, which matters for the strict span-level F1 the paper reports.
pub(crate) fn viterbi(log_emissions: &[Vec<f32>], params: &HmmParams) -> Vec<usize> {
    let t_len = log_emissions.len();
    let k = params.initial.len();
    assert!(t_len > 0, "viterbi: empty sequence");
    let log_init: Vec<f32> = params.initial.iter().map(|p| p.max(1e-12).ln()).collect();
    let log_trans = Matrix::from_fn(k, k, |r, c| params.transition[(r, c)].max(1e-12).ln());

    let mut delta = vec![vec![f32::NEG_INFINITY; k]; t_len];
    let mut back = vec![vec![0usize; k]; t_len];
    for m in 0..k {
        delta[0][m] = log_init[m] + log_emissions[0][m];
    }
    for t in 1..t_len {
        for m in 0..k {
            let mut best = f32::NEG_INFINITY;
            let mut best_prev = 0;
            for p in 0..k {
                let score = delta[t - 1][p] + log_trans[(p, m)];
                if score > best {
                    best = score;
                    best_prev = p;
                }
            }
            delta[t][m] = best + log_emissions[t][m];
            back[t][m] = best_prev;
        }
    }
    let mut path = vec![0usize; t_len];
    path[t_len - 1] = stats::argmax(&delta[t_len - 1]);
    for t in (0..t_len - 1).rev() {
        path[t] = back[t + 1][path[t + 1]];
    }
    path
}

impl TruthInference for HmmCrowd {
    fn name(&self) -> &'static str {
        "HMM-Crowd"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let sentences = view.units_by_instance();
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut confusions = estimate_confusions(view, &posteriors, self.smoothing);
        let mut params = HmmParams { initial: vec![1.0 / k as f32; k], transition: Matrix::full(k, k, 1.0 / k as f32) };

        for _ in 0..self.max_iters {
            let mut init_counts = vec![self.smoothing; k];
            let mut trans_counts = Matrix::full(k, k, self.smoothing);
            for sentence in &sentences {
                // per-token log emissions from the annotator model
                let log_emissions = sentence_log_emissions(view, sentence, &confusions, k);
                let (marginals, xi) = forward_backward(&log_emissions, &params);
                for (pos, &u) in sentence.iter().enumerate() {
                    posteriors[u] = marginals[pos].clone();
                }
                for (m, count) in init_counts.iter_mut().enumerate() {
                    *count += marginals[0][m];
                }
                lncl_tensor::ops::add_assign(&mut trans_counts, &xi);
            }
            // M-step
            if self.bio_constrained {
                // a sentence cannot start inside an entity
                for (class, count) in init_counts.iter_mut().enumerate() {
                    if class != 0 && class % 2 == 0 {
                        *count = 0.0;
                    }
                }
            }
            stats::normalize_in_place(&mut init_counts);
            params.initial = init_counts;
            crate::metrics::normalize_confusion_rows(&mut trans_counts);
            if self.bio_constrained {
                apply_bio_mask(&mut trans_counts);
            }
            params.transition = trans_counts;
            confusions = estimate_confusions(view, &posteriors, self.smoothing);
        }
        // Hard labels come from joint Viterbi decoding so spans stay
        // contiguous; posteriors remain the per-token marginals.
        let mut estimate = TruthEstimate::from_posteriors(posteriors);
        for sentence in &sentences {
            let log_emissions = sentence_log_emissions(view, sentence, &confusions, k);
            let path = viterbi(&log_emissions, &params);
            for (pos, &u) in sentence.iter().enumerate() {
                estimate.hard[u] = path[pos];
            }
        }
        estimate.with_confusions(confusions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_ner, NerDatasetConfig};
    use crate::metrics::span_f1;
    use crate::truth::{DawidSkene, TruthInference};

    #[test]
    fn forward_backward_uniform_model_gives_emission_posteriors() {
        let params = HmmParams { initial: vec![0.5, 0.5], transition: Matrix::full(2, 2, 0.5) };
        // strong emission for class 1 at t=0, class 0 at t=1
        let log_em = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let (marginals, _) = forward_backward(&log_em, &params);
        assert!(marginals[0][1] > 0.9);
        assert!(marginals[1][0] > 0.9);
    }

    #[test]
    fn forward_backward_transitions_propagate_information() {
        // transition strongly favours staying in the same state; only the
        // first token has an informative emission.
        let params =
            HmmParams { initial: vec![0.5, 0.5], transition: Matrix::from_rows(&[&[0.95, 0.05], &[0.05, 0.95]]) };
        let log_em = vec![vec![0.0, -4.0], vec![0.0, 0.0], vec![0.0, 0.0]];
        let (marginals, _) = forward_backward(&log_em, &params);
        assert!(marginals[2][0] > 0.6, "sticky transitions should carry class 0 forward: {:?}", marginals);
    }

    #[test]
    fn improves_over_token_level_ds_on_ner_spans() {
        let data = generate_ner(&NerDatasetConfig {
            train_size: 250,
            num_annotators: 20,
            min_labels_per_instance: 2,
            max_labels_per_instance: 4,
            seed: 1,
            ..NerDatasetConfig::default()
        });
        let view = data.annotation_view();
        let gold: Vec<Vec<usize>> = data.train.iter().map(|i| i.gold.clone()).collect();

        let ds = DawidSkene::default().infer(&view);
        let hmm = HmmCrowd { max_iters: 15, ..Default::default() }.infer(&view);
        let ds_f1 = span_f1(&ds.hard_by_instance(&view), &gold).f1;
        let hmm_f1 = span_f1(&hmm.hard_by_instance(&view), &gold).f1;
        // the HMM prior should not hurt, and usually helps, span consistency
        assert!(hmm_f1 >= ds_f1 - 0.02, "HMM-Crowd {hmm_f1} vs DS {ds_f1}");
    }

    #[test]
    fn posteriors_are_distributions() {
        let data = generate_ner(&NerDatasetConfig::tiny());
        let view = data.annotation_view();
        let est = HmmCrowd { max_iters: 5, ..Default::default() }.infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
    }
}
