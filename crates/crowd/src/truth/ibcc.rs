//! IBCC — independent Bayesian classifier combination (Kim & Ghahramani,
//! 2012), implemented as MAP Dawid–Skene with Dirichlet priors.

use super::{class_prior, TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::metrics::normalize_confusion_rows;
use crate::truth::MajorityVote;
use lncl_tensor::{stats, Matrix};

/// IBCC places symmetric Dirichlet priors on the class proportions and on
/// every row of every annotator confusion matrix; this implementation
/// performs MAP-EM (Dirichlet pseudo-counts added in each M-step), which is
/// the standard "poor man's variational" treatment and is how the paper's
/// tables use it (as a robustified DS).
#[derive(Debug, Clone, Copy)]
pub struct Ibcc {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Dirichlet pseudo-count added to the diagonal of each confusion row.
    pub diag_prior: f32,
    /// Dirichlet pseudo-count added to the off-diagonal entries.
    pub off_diag_prior: f32,
}

impl Default for Ibcc {
    fn default() -> Self {
        Self { max_iters: 50, diag_prior: 2.0, off_diag_prior: 0.5 }
    }
}

impl TruthInference for Ibcc {
    fn name(&self) -> &'static str {
        "IBCC"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut prior = vec![1.0 / k as f32; k];
        let mut confusions = self.m_step(view, &posteriors);

        for _ in 0..self.max_iters {
            for (u, annotations) in view.annotations.iter().enumerate() {
                let mut log_post: Vec<f32> = (0..k).map(|m| prior[m].max(1e-12).ln()).collect();
                for &(annotator, class) in annotations {
                    for (m, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusions[annotator][(m, class)].max(1e-12).ln();
                    }
                }
                posteriors[u] = stats::softmax(&log_post);
            }
            confusions = self.m_step(view, &posteriors);
            prior = class_prior(&posteriors, k);
        }
        TruthEstimate::from_posteriors(posteriors).with_confusions(confusions)
    }
}

impl Ibcc {
    fn m_step(&self, view: &AnnotationView, posteriors: &[Vec<f32>]) -> Vec<Matrix> {
        let k = view.num_classes;
        let mut confusions =
            vec![
                Matrix::from_fn(k, k, |r, c| if r == c { self.diag_prior } else { self.off_diag_prior });
                view.num_annotators
            ];
        for (u, annotations) in view.annotations.iter().enumerate() {
            for &(annotator, class) in annotations {
                for m in 0..k {
                    confusions[annotator][(m, class)] += posteriors[u][m];
                }
            }
        }
        for c in &mut confusions {
            normalize_confusion_rows(c);
        }
        confusions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;
    use crate::truth::{DawidSkene, TruthInference};

    #[test]
    fn performs_close_to_ds_with_enough_data() {
        let view = planted_view(500, 2, &[0.9, 0.85, 0.6, 0.55, 0.5], 5, 31);
        let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
        let ibcc = Ibcc::default().infer(&view).accuracy(&view.gold);
        assert!((ibcc - ds).abs() < 0.05, "IBCC {ibcc} vs DS {ds}");
    }

    #[test]
    fn prior_regularises_sparse_annotators() {
        // annotators with very few labels: the prior keeps their confusion
        // estimates close to the prior mean instead of degenerate 0/1 rows.
        let view = planted_view(30, 2, &[0.9, 0.8, 0.7], 2, 37);
        let est = Ibcc::default().infer(&view);
        for c in est.confusions.unwrap() {
            for r in 0..2 {
                for col in 0..2 {
                    assert!(c[(r, col)] > 0.01, "confusion entries should stay away from 0");
                    assert!(c[(r, col)] < 0.99);
                }
            }
        }
    }

    #[test]
    fn recovers_truth_on_accurate_pool() {
        let view = planted_view(300, 3, &[0.85, 0.85, 0.85, 0.85], 4, 41);
        let est = Ibcc::default().infer(&view);
        assert!(est.accuracy(&view.gold) > 0.9);
    }
}
