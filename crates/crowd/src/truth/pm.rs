//! PM — an iterative, weight-based truth-discovery method in the style of
//! Aydin et al. (2014), adapted to categorical crowd labels.

use super::{TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use lncl_tensor::stats;

/// PM alternates between (1) estimating the truth of each unit by weighted
/// voting and (2) re-weighting each annotator by how far their labels are
/// from the current truth estimates (`w_j = -log(error_j)`), which is the
/// heuristic fixed-point iteration the paper cites for the sentiment table.
#[derive(Debug, Clone, Copy)]
pub struct Pm {
    /// Number of alternating iterations.
    pub max_iters: usize,
    /// Floor on the estimated error rate so weights stay finite.
    pub min_error: f32,
}

impl Default for Pm {
    fn default() -> Self {
        Self { max_iters: 20, min_error: 0.02 }
    }
}

impl TruthInference for Pm {
    fn name(&self) -> &'static str {
        "PM"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        let k = view.num_classes;
        let mut weights = vec![1.0f32; view.num_annotators];
        let mut posteriors = vec![vec![1.0 / k as f32; k]; view.num_units()];

        for _ in 0..self.max_iters {
            // truth update: weighted vote
            for (u, annotations) in view.annotations.iter().enumerate() {
                let mut scores = vec![0.0f32; k];
                for &(annotator, class) in annotations {
                    scores[class] += weights[annotator];
                }
                stats::normalize_in_place(&mut scores);
                posteriors[u] = scores;
            }
            // weight update: w_j = -log(error_j)
            let mut errors = vec![0.0f32; view.num_annotators];
            let mut counts = vec![0.0f32; view.num_annotators];
            for (u, annotations) in view.annotations.iter().enumerate() {
                let truth = stats::argmax(&posteriors[u]);
                for &(annotator, class) in annotations {
                    counts[annotator] += 1.0;
                    if class != truth {
                        errors[annotator] += 1.0;
                    }
                }
            }
            for j in 0..view.num_annotators {
                if counts[j] > 0.0 {
                    let err = (errors[j] / counts[j]).clamp(self.min_error, 1.0 - self.min_error);
                    weights[j] = -err.ln();
                } else {
                    weights[j] = 1.0;
                }
            }
        }
        TruthEstimate::from_posteriors(posteriors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::testutil::planted_view;
    use crate::truth::{MajorityVote, TruthInference};

    #[test]
    fn beats_plain_mv_when_abilities_differ() {
        let view = planted_view(600, 2, &[0.95, 0.9, 0.52, 0.5, 0.5], 5, 43);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        let pm = Pm::default().infer(&view).accuracy(&view.gold);
        assert!(pm >= mv, "PM {pm} should not be worse than MV {mv}");
    }

    #[test]
    fn matches_mv_when_all_annotators_equal() {
        let view = planted_view(300, 2, &[0.8, 0.8, 0.8, 0.8], 4, 47);
        let mv = MajorityVote.infer(&view).accuracy(&view.gold);
        let pm = Pm::default().infer(&view).accuracy(&view.gold);
        assert!((pm - mv).abs() < 0.03);
    }

    #[test]
    fn posteriors_normalised() {
        let view = planted_view(100, 4, &[0.7, 0.7, 0.6], 3, 53);
        let est = Pm::default().infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }
}
