//! Windowed Dawid–Skene: confusion matrices estimated per *stream window*
//! so drifting annotators (fatigue, learning, step changes) are tracked
//! instead of averaged away.

use super::{class_prior, estimate_confusions, TruthEstimate, TruthInference};
use crate::data::AnnotationView;
use crate::truth::MajorityVote;
use lncl_tensor::{stats, Matrix};

/// Dawid–Skene with **windowed, exponentially-decayed sufficient
/// statistics**: each annotator's label stream (their labels in unit order,
/// a proxy for time) is cut into windows of at most `window` labels, one
/// confusion matrix is estimated per window, and the per-window counts are
/// smoothed across neighbouring windows with weight `decay^distance`.
///
/// * `decay == 1.0` pools every window — the estimator degenerates to
///   classic [`DawidSkene`](super::DawidSkene) (all windows share the
///   global counts);
/// * `decay → 0` trusts each window alone — maximal drift tracking,
///   maximal variance.
///
/// On statically generated crowds the windowed estimator pays a small
/// variance tax against classic DS; on drifting crowds (see
/// [`DriftSchedule`](crate::scenario::DriftSchedule)) it is the one
/// DS-family method whose E-step can discount an annotator's late-stream
/// garbage while still trusting their early-stream labels — the seeded
/// step-change test below asserts exactly that separation.
///
/// A windowed confusion column is only trustworthy when the window
/// actually saw labels of that observed class: every label self-supports
/// its own window's column (its posterior mass lands there in the very
/// M-step that shapes the column), so a column resting on one or two
/// labels is circular — under heavy drift it collapses window-unseen
/// tokens to the majority class (`O` in NER), which wins token accuracy
/// but loses strict span F1 to static DS.  The estimator therefore backs
/// off to the **pooled** (static) confusion matrix for any label whose
/// window column has less blended label-count support than
/// `backoff_min_support` (see [`DsWindowed::DEFAULT_BACKOFF_MIN_SUPPORT`]).
///
/// Degenerate parameters (`window == 0`, `decay` outside `(0, 1]`) are
/// rejected with a descriptive panic instead of silently misbehaving.
#[derive(Debug, Clone, Copy)]
pub struct DsWindowed {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the mean absolute posterior change.
    pub tol: f32,
    /// Additive smoothing added to every (blended) count.
    pub smoothing: f32,
    /// Maximum labels per estimation window in each annotator's stream.
    pub window: usize,
    /// Cross-window count decay in `(0, 1]` (`1.0` = classic DS pooling).
    pub decay: f32,
    /// Minimum blended label-count support of a window's observed-class
    /// column before the E-step trusts it; below this the label is judged
    /// by the annotator's pooled confusion matrix instead.  `0.0` disables
    /// the backoff (the pre-fix behaviour).
    pub backoff_min_support: f32,
}

impl Default for DsWindowed {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-4,
            smoothing: 0.01,
            window: Self::DEFAULT_WINDOW,
            decay: Self::DEFAULT_DECAY,
            backoff_min_support: Self::DEFAULT_BACKOFF_MIN_SUPPORT,
        }
    }
}

impl DsWindowed {
    /// Default maximum labels per estimation window — the single source
    /// both windowed registry methods (`ds-windowed`,
    /// `logic-lncl-windowed`) configure themselves from, so cross-method
    /// sweep comparisons always run the same windowing scheme.
    pub const DEFAULT_WINDOW: usize = 48;
    /// Default cross-window count decay, shared like
    /// [`DsWindowed::DEFAULT_WINDOW`].
    pub const DEFAULT_DECAY: f32 = 0.35;
    /// Default minimum blended label-count support before a windowed
    /// confusion column is trusted over the pooled one.  A column needs a
    /// handful of labels beyond its own circular self-support (one count
    /// plus decayed neighbour spill-over) before its per-window estimate
    /// carries real signal; below that the pooled estimate is strictly
    /// better.  On the documented step-change drift scenario `6.0` is the
    /// knee: it restores the strict span-F1 win over static DS while
    /// *raising* the token-accuracy margin, and the curve is flat for a
    /// couple of counts either side before degrading at the extremes
    /// (`0` = never back off, reproducing the collapse; very large values
    /// reproduce static DS exactly).
    pub const DEFAULT_BACKOFF_MIN_SUPPORT: f32 = 6.0;

    /// Panics with a descriptive message on degenerate parameters.
    fn validate(&self) {
        assert!(self.window >= 1, "DS-W window must hold at least one label, got {}", self.window);
        assert!(
            self.decay > 0.0 && self.decay <= 1.0 && self.decay.is_finite(),
            "DS-W decay must be in (0, 1], got {}",
            self.decay
        );
        assert!(self.smoothing >= 0.0, "DS-W smoothing must be non-negative, got {}", self.smoothing);
        assert!(
            self.backoff_min_support >= 0.0 && self.backoff_min_support.is_finite(),
            "DS-W backoff_min_support must be finite and non-negative, got {}",
            self.backoff_min_support
        );
    }
}

/// Stream bookkeeping: for every unit and every annotation on it, the
/// position of that label in the annotator's own stream, plus each
/// annotator's window count.
struct StreamIndex {
    /// Parallel to `view.annotations`: per annotation, the label's position
    /// in its annotator's stream.
    positions: Vec<Vec<usize>>,
    /// Windows per annotator (at least 1 each).
    windows: Vec<usize>,
    window_size: usize,
}

impl StreamIndex {
    fn build(view: &AnnotationView, window_size: usize) -> Self {
        let mut counters = vec![0usize; view.num_annotators];
        let mut positions = Vec::with_capacity(view.num_units());
        for annotations in &view.annotations {
            let per_unit = annotations
                .iter()
                .map(|&(annotator, _)| {
                    let p = counters[annotator];
                    counters[annotator] += 1;
                    p
                })
                .collect();
            positions.push(per_unit);
        }
        let windows = counters.iter().map(|&len| len.div_ceil(window_size).max(1)).collect();
        Self { positions, windows, window_size }
    }

    /// Window index of a stream position for an annotator.
    #[inline]
    fn window_of(&self, annotator: usize, position: usize) -> usize {
        (position / self.window_size).min(self.windows[annotator] - 1)
    }
}

/// Blends per-window count blocks (flat `block`-sized chunks, one chunk per
/// window) with `decay^distance` weights in two linear passes (forward +
/// backward geometric prefixes), so the smoothing is O(windows · block)
/// instead of O(windows² · block).  Window `w`'s blended counts are
/// `Σ_i decay^|w - i| · raw_i`; `decay == 1.0` pools every window to the
/// global counts.
///
/// Shared by both stream-windowed estimators — [`DsWindowed`] here and the
/// windowed Logic-LNCL E-step in the core crate — so the two always apply
/// the same smoothing scheme.
pub fn decay_blend_flat(raw: &[f32], block: usize, decay: f32) -> Vec<f32> {
    // the chunked passes below walk whole blocks, so a ragged tail would be
    // passed through unblended — catch the caller's sizing bug loudly
    debug_assert!(block >= 1, "decay_blend_flat: block size must be at least 1");
    debug_assert!(
        raw.len().is_multiple_of(block),
        "decay_blend_flat: {} count(s) do not divide into blocks of {block} — the {} trailing element(s) would be \
         silently dropped from the blend",
        raw.len(),
        raw.len() % block
    );
    let windows = raw.len() / block;
    if windows <= 1 {
        return raw.to_vec();
    }
    let mut forward = raw.to_vec();
    for w in 1..windows {
        let (done, rest) = forward.split_at_mut(w * block);
        let prev = &done[(w - 1) * block..];
        for (dst, &src) in rest[..block].iter_mut().zip(prev) {
            *dst += decay * src;
        }
    }
    let mut backward = raw.to_vec();
    for w in (0..windows - 1).rev() {
        let (head, tail) = backward.split_at_mut((w + 1) * block);
        let next = &tail[..block];
        for (dst, &src) in head[w * block..].iter_mut().zip(next) {
            *dst += decay * src;
        }
    }
    forward.iter().zip(&backward).zip(raw).map(|((&f, &b), &r)| f + b - r).collect()
}

/// [`decay_blend_flat`] over per-window matrices (one `K x K` count matrix
/// per window of one annotator's stream).  Shared with the incremental
/// estimator in [`crate::truth::streaming`].
pub(crate) fn decay_blend(raw: &[Matrix], decay: f32) -> Vec<Matrix> {
    let Some(first) = raw.first() else { return Vec::new() };
    let (rows, cols) = first.shape();
    let block = rows * cols;
    let mut flat = Vec::with_capacity(raw.len() * block);
    for m in raw {
        flat.extend_from_slice(m.as_slice());
    }
    decay_blend_flat(&flat, block, decay)
        .chunks_exact(block)
        .map(|chunk| Matrix::from_vec(rows, cols, chunk.to_vec()))
        .collect()
}

/// Estimates per-annotator, per-window confusion matrices from soft
/// posteriors: raw window counts, decay blending, smoothing, row
/// normalisation.
fn estimate_windowed_confusions(
    view: &AnnotationView,
    index: &StreamIndex,
    posteriors: &[Vec<f32>],
    smoothing: f32,
    decay: f32,
) -> Vec<Vec<Matrix>> {
    let k = view.num_classes;
    let mut raw: Vec<Vec<Matrix>> = index.windows.iter().map(|&w| vec![Matrix::zeros(k, k); w]).collect();
    for (u, annotations) in view.annotations.iter().enumerate() {
        for (slot, &(annotator, class)) in annotations.iter().enumerate() {
            let window = index.window_of(annotator, index.positions[u][slot]);
            let counts = &mut raw[annotator][window];
            for m in 0..k {
                counts[(m, class)] += posteriors[u][m];
            }
        }
    }
    raw.into_iter()
        .map(|windows| {
            let mut blended = decay_blend(&windows, decay);
            for c in &mut blended {
                for v in c.as_mut_slice() {
                    *v += smoothing;
                }
                crate::metrics::normalize_confusion_rows(c);
            }
            blended
        })
        .collect()
}

/// Blended per-annotator label-count support: entry `window * k + class`
/// is the decay-blended number of labels of observed class `class` the
/// annotator produced in `window`.  This is the evidence mass a windowed
/// confusion column rests on — posterior-independent, so it is computed
/// once per inference, not per EM iteration.
fn windowed_support(view: &AnnotationView, index: &StreamIndex, decay: f32) -> Vec<Vec<f32>> {
    let k = view.num_classes;
    let mut raw: Vec<Vec<f32>> = index.windows.iter().map(|&w| vec![0.0; w * k]).collect();
    for (u, annotations) in view.annotations.iter().enumerate() {
        for (slot, &(annotator, class)) in annotations.iter().enumerate() {
            let window = index.window_of(annotator, index.positions[u][slot]);
            raw[annotator][window * k + class] += 1.0;
        }
    }
    raw.into_iter().map(|counts| decay_blend_flat(&counts, k, decay)).collect()
}

impl TruthInference for DsWindowed {
    fn name(&self) -> &'static str {
        "DS-W"
    }

    fn infer(&self, view: &AnnotationView) -> TruthEstimate {
        self.validate();
        let k = view.num_classes;
        let index = StreamIndex::build(view, self.window);
        let support = windowed_support(view, &index, self.decay);
        let mut posteriors = MajorityVote.infer(view).posteriors;
        let mut confusions = estimate_windowed_confusions(view, &index, &posteriors, self.smoothing, self.decay);
        let mut pooled = estimate_confusions(view, &posteriors, self.smoothing);
        let mut prior = class_prior(&posteriors, k);

        for _ in 0..self.max_iters {
            // E-step: each label is judged by its annotator's confusion in
            // the window the label was produced in — unless that window's
            // observed-class column is too weakly supported to be more than
            // the label's own circular self-evidence, in which case the
            // pooled (static) confusion judges it instead
            let mut max_delta = 0.0f32;
            for (u, annotations) in view.annotations.iter().enumerate() {
                let mut log_post: Vec<f32> = (0..k).map(|m| prior[m].max(1e-12).ln()).collect();
                for (slot, &(annotator, class)) in annotations.iter().enumerate() {
                    let window = index.window_of(annotator, index.positions[u][slot]);
                    let confusion = if support[annotator][window * k + class] < self.backoff_min_support {
                        &pooled[annotator]
                    } else {
                        &confusions[annotator][window]
                    };
                    for (m, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusion[(m, class)].max(1e-12).ln();
                    }
                }
                let new_post = stats::softmax(&log_post);
                let delta: f32 =
                    new_post.iter().zip(&posteriors[u]).map(|(a, b)| (a - b).abs()).sum::<f32>() / k as f32;
                max_delta = max_delta.max(delta);
                posteriors[u] = new_post;
            }
            // M-step: both confusion families track the evolving posteriors
            // so the backoff always compares like-for-like estimates
            confusions = estimate_windowed_confusions(view, &index, &posteriors, self.smoothing, self.decay);
            pooled = estimate_confusions(view, &posteriors, self.smoothing);
            prior = class_prior(&posteriors, k);
            if max_delta < self.tol {
                break;
            }
        }
        // report the *pooled* per-annotator confusions for compatibility
        // with consumers that expect one matrix per annotator
        let pooled = estimate_confusions(view, &posteriors, self.smoothing);
        TruthEstimate::from_posteriors(posteriors).with_confusions(pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate_scenario, Archetype, DriftSchedule, PropensityProfile, ScenarioConfig};
    use crate::truth::testutil::planted_view;
    use crate::truth::{DawidSkene, TruthInference};

    #[test]
    fn comparable_to_static_ds_on_static_crowds() {
        let view = planted_view(500, 2, &[0.95, 0.9, 0.6, 0.55, 0.5], 5, 7);
        let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
        let dsw = DsWindowed::default().infer(&view).accuracy(&view.gold);
        assert!((ds - dsw).abs() < 0.04, "DS-W {dsw} should track DS {ds} on static data");
        assert!(dsw > 0.85, "DS-W accuracy {dsw}");
    }

    #[test]
    fn decay_one_pools_all_windows_like_static_ds() {
        let view = planted_view(300, 3, &[0.9, 0.7, 0.5, 0.45], 4, 11);
        let ds = DawidSkene::default().infer(&view);
        let pooled = DsWindowed { decay: 1.0, window: 20, ..Default::default() }.infer(&view);
        let agree = ds.hard.iter().zip(&pooled.hard).filter(|(a, b)| a == b).count();
        let rate = agree as f32 / ds.hard.len() as f32;
        assert!(rate > 0.98, "decay 1.0 must reproduce static DS labels, agreement {rate}");
    }

    /// The drift scenario the windowed estimator exists for: a long-tailed
    /// pool of decent NER annotators whose labels turn near-spam after a
    /// step change halfway through their stream.  The long tail matters:
    /// prolific annotators cross the break early while light annotators
    /// never reach it, so at any point in the corpus *some* streams are
    /// still clean — exactly the structure a static confusion matrix
    /// averages away and a windowed one preserves.
    fn step_change_config() -> ScenarioConfig {
        ScenarioConfig::tagging("step-drift")
            .with_sizes(500, 10, 10)
            .with_annotators(8)
            .with_redundancy(5, 5)
            .with_propensity(PropensityProfile::LongTail)
            .with_mix(vec![(Archetype::Reliable { accuracy: 0.9 }, 1.0)])
            .with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.9 })
            .with_seed(17)
    }

    #[test]
    fn beats_static_ds_on_a_step_change_drift_scenario() {
        let view = generate_scenario(&step_change_config()).annotation_view();
        let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
        let dsw = DsWindowed::default().infer(&view).accuracy(&view.gold);
        // measured margin is ~0.25 (DS ~0.43, DS-W ~0.68), stable across
        // seeds and drift levels; 0.1 leaves generous slack
        assert!(dsw > ds + 0.1, "windowed DS must beat static DS under a step-change drift: DS {ds}, DS-W {dsw}");
    }

    #[test]
    fn span_f1_matches_or_beats_static_ds_under_step_drift() {
        // the formerly documented failure mode: window-unseen tokens used
        // to collapse to the majority class (O), winning token accuracy but
        // losing strict span F1 to static DS.  The pooled-confusion backoff
        // for weakly-supported window columns closes exactly that gap.
        let dataset = generate_scenario(&step_change_config());
        let view = dataset.annotation_view();
        let gold: Vec<Vec<usize>> = dataset.train.iter().map(|i| i.gold.clone()).collect();
        let ds = DawidSkene::default().infer(&view);
        let dsw = DsWindowed::default().infer(&view);
        let ds_f1 = crate::metrics::span_f1(&ds.hard_by_instance(&view), &gold).f1;
        let dsw_f1 = crate::metrics::span_f1(&dsw.hard_by_instance(&view), &gold).f1;
        assert!(
            dsw_f1 >= ds_f1,
            "windowed DS span F1 must not lose to static DS under drift: DS {ds_f1}, DS-W {dsw_f1}"
        );
    }

    #[test]
    fn posteriors_are_distributions() {
        let view = generate_scenario(&step_change_config()).annotation_view();
        let est = DsWindowed::default().infer(&view);
        for p in &est.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        assert_eq!(est.confusions.as_ref().map(Vec::len), Some(view.num_annotators));
    }

    #[test]
    #[should_panic(expected = "DS-W window must hold at least one label")]
    fn zero_window_is_rejected_with_a_real_message() {
        let view = planted_view(10, 2, &[0.9, 0.9], 2, 3);
        let _ = DsWindowed { window: 0, ..Default::default() }.infer(&view);
    }

    #[test]
    #[should_panic(expected = "DS-W decay must be in (0, 1]")]
    fn out_of_range_decay_is_rejected_with_a_real_message() {
        let view = planted_view(10, 2, &[0.9, 0.9], 2, 3);
        let _ = DsWindowed { decay: 1.5, ..Default::default() }.infer(&view);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "do not divide into blocks")]
    fn ragged_flat_counts_are_rejected_in_debug_builds() {
        // 7 counts over blocks of 4: the trailing 3 would silently vanish
        let _ = decay_blend_flat(&[1.0; 7], 4, 0.5);
    }

    #[test]
    fn decay_blend_is_symmetric_and_mass_preserving_at_decay_one() {
        let raw = vec![
            lncl_tensor::Matrix::full(2, 2, 1.0),
            lncl_tensor::Matrix::full(2, 2, 2.0),
            lncl_tensor::Matrix::full(2, 2, 4.0),
        ];
        let blended = decay_blend(&raw, 1.0);
        // decay 1.0: every window sees the global sum (7.0 per cell)
        for b in &blended {
            for &v in b.as_slice() {
                assert!((v - 7.0).abs() < 1e-5, "pooled value {v}");
            }
        }
        let half = decay_blend(&raw, 0.5);
        // window 1 sees 1*0.5 + 2 + 4*0.5 = 4.5
        assert!((half[1][(0, 0)] - 4.5).abs() < 1e-5, "got {}", half[1][(0, 0)]);
        // window 0 sees 1 + 2*0.5 + 4*0.25 = 3.0
        assert!((half[0][(0, 0)] - 3.0).abs() < 1e-5, "got {}", half[0][(0, 0)]);
    }
}
