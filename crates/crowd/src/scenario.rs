//! Composable crowd-scenario simulation.
//!
//! The paper evaluates on two fixed crowd conditions (AMT sentiment, AMT
//! NER).  Classic truth-inference work shows that method rankings flip under
//! spammers, adversaries, colluding cliques and sparse redundancy — regimes
//! the fixed generators in [`crate::datasets`] cannot express.  This module
//! opens that axis:
//!
//! * [`Archetype`] — composable annotator behaviours ([`Archetype::Reliable`],
//!   uniform [`Archetype::Spammer`], anti-diagonal [`Archetype::Adversarial`],
//!   class-swapping [`Archetype::PairConfuser`], clique-forming
//!   [`Archetype::Colluding`]) layered on the base
//!   [`ConfusionAnnotator`]/[`NerAnnotator`] simulators;
//! * [`PropensityProfile`] — uniform or long-tailed workload distributions;
//! * [`DriftSchedule`] — temporal drift of every annotator's error rate over
//!   their own label stream (linear fatigue, step change, learning curve),
//!   wrapping any archetype;
//! * [`DifficultyModel`] — GLAD-style instance difficulty making *all*
//!   annotators err more on the same hard instances (correlated,
//!   non-colluding mistakes);
//! * [`ScenarioConfig`] + [`generate_scenario`] — one knob set (task,
//!   redundancy, pool size, archetype mix, class imbalance, drift,
//!   difficulty, seed) emitting a valid [`CrowdDataset`] for either task;
//! * [`ScenarioGrid`] — cartesian sweeps over those knobs, feeding the
//!   `scenario_sweep` benchmark binary and the cross-method robustness suite.
//!
//! The workspace-level crate map lives in `ARCHITECTURE.md` at the
//! repository root.
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, Archetype, ScenarioConfig};
//!
//! let config = ScenarioConfig::classification("spam-third")
//!     .with_sizes(120, 40, 40)
//!     .with_mix(vec![(Archetype::reliable(), 0.65), (Archetype::Spammer, 0.35)]);
//! let dataset = generate_scenario(&config);
//! assert!(dataset.validate().is_ok());
//! ```
//!
//! # Scenario cookbook
//!
//! Every knob of the simulator, each with a runnable recipe (all of these
//! are doctests, enforced by the CI doctest step).  Start from
//! [`ScenarioConfig::classification`] / [`ScenarioConfig::tagging`] (or
//! [`ScenarioConfig::tiny`] in tests) and layer `with_*` builders on top.
//!
//! ## Archetypes
//!
//! `with_mix` takes `(archetype, fraction)` pairs; fractions are normalised
//! and rounded to annotator counts by largest remainder.
//!
//! | archetype | behaviour |
//! |---|---|
//! | [`Archetype::Reliable`] | high-diagonal confusion (classification) / structured ignore-boundary-span-type errors (NER) |
//! | [`Archetype::Spammer`] | uniform rows — zero signal |
//! | [`Archetype::Adversarial`] | anti-diagonal — actively misleading |
//! | [`Archetype::PairConfuser`] | swaps one class pair (entity-type pair, span-wise, on NER) |
//! | [`Archetype::Colluding`] | one clique copying its leader's noisy stream verbatim |
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, Archetype, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! // a hostile pool: spammers, an adversary and a PER<->LOC confuser
//! let config = ScenarioConfig::tiny(TaskKind::SequenceTagging).named("hostile").with_mix(vec![
//!     (Archetype::Reliable { accuracy: 0.8 }, 0.5),
//!     (Archetype::Spammer, 0.2),
//!     (Archetype::adversarial(), 0.15),
//!     (Archetype::PairConfuser { class_a: 0, class_b: 1, swap_prob: 0.8 }, 0.15),
//! ]);
//! assert!(generate_scenario(&config).validate().is_ok());
//! ```
//!
//! ## Propensity profiles
//!
//! [`PropensityProfile::Uniform`] gives every annotator the same workload;
//! [`PropensityProfile::LongTail`] mirrors the Figure-4 statistics (a few
//! prolific annotators, many occasional ones).
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, PropensityProfile, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! let config = ScenarioConfig::tiny(TaskKind::Classification).with_propensity(PropensityProfile::Uniform);
//! let dataset = generate_scenario(&config);
//! let counts = dataset.annotation_view().labels_per_annotator();
//! assert!(counts.iter().all(|&c| c > 0), "uniform propensity reaches every annotator: {counts:?}");
//! ```
//!
//! ## Redundancy, pool size and class imbalance
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! let config = ScenarioConfig::tiny(TaskKind::Classification)
//!     .with_redundancy(1, 1) // single label per instance: aggregation is hardest
//!     .with_annotators(8)
//!     .with_majority_share(0.8); // 80% of gold labels are class 0
//! let dataset = generate_scenario(&config);
//! assert!(dataset.train.iter().all(|i| i.num_annotations() == 1));
//! ```
//!
//! ## Drifting annotators
//!
//! A [`DriftSchedule`] makes every annotator's error rate a function of the
//! position in *their own* label stream.  `LinearFatigue` degrades towards
//! the stream end, `StepChange` switches abruptly (the regime windowed
//! estimators such as `ds-windowed` track and static confusion matrices
//! cannot), `LearningCurve` starts noisy and improves.  Rate `0` (or
//! [`DriftSchedule::Static`]) reproduces the static generator **bitwise**.
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, DriftSchedule, PropensityProfile, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! let base = ScenarioConfig::tiny(TaskKind::Classification).with_propensity(PropensityProfile::Uniform);
//! let drifted = base.clone().with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.9 });
//! let (clean, tired) = (generate_scenario(&base), generate_scenario(&drifted));
//! // same gold corpus, noisier late-stream labels
//! assert_eq!(clean.train[0].gold, tired.train[0].gold);
//! assert!(lncl_crowd::metrics::crowd_label_accuracy(&tired) < lncl_crowd::metrics::crowd_label_accuracy(&clean));
//! ```
//!
//! ## Difficulty-conditioned (correlated) error
//!
//! A [`DifficultyModel`] samples a per-instance hardness (GLAD's `1/beta`)
//! and corrupts *every* annotator's labels on hard instances — correlated
//! mistakes without collusion, violating the conditional-independence
//! assumption behind DS-family aggregation.  `strength == 0` is the
//! degenerate, bitwise-identical setting.
//!
//! ```
//! use lncl_crowd::scenario::{generate_scenario, DifficultyModel, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! let config = ScenarioConfig::tiny(TaskKind::Classification)
//!     .with_difficulty(DifficultyModel { strength: 0.8, concentration: 0.5 });
//! let dataset = generate_scenario(&config);
//! assert!(dataset.validate().is_ok());
//! ```
//!
//! ## Grid sweeps
//!
//! [`ScenarioGrid`] materialises the cartesian product of every axis with
//! stable, descriptive names; temporal segments only appear in the names
//! when those axes are actually swept.
//!
//! ```
//! use lncl_crowd::scenario::{DriftSchedule, ScenarioConfig, ScenarioGrid};
//! use lncl_crowd::TaskKind;
//!
//! let grid = ScenarioGrid::new(ScenarioConfig::tiny(TaskKind::Classification))
//!     .with_standard_mixes()
//!     .with_drifts(vec![
//!         ("static".into(), DriftSchedule::Static),
//!         ("fatigue0.6".into(), DriftSchedule::LinearFatigue { rate: 0.6 }),
//!     ]);
//! let configs = grid.configs();
//! assert_eq!(configs.len(), 6 * 2);
//! assert!(configs.iter().any(|c| c.name.ends_with("/fatigue0.6")));
//! ```

pub mod router;
pub mod wire;

use crate::annotator::{gold_spans, ConfusionAnnotator, NerAnnotator, NerErrorRates};
use crate::data::{CrowdDataset, CrowdLabel, Instance, TaskKind};
use crate::datasets::ner::{bio_class_names, NerTextModel, NUM_BIO_CLASSES, NUM_ENTITY_TYPES};
use crate::datasets::sentiment::SentimentTextModel;
use crate::sampling::select_weighted_distinct;
use lncl_tensor::{Matrix, TensorRng};
use router::RoutePlan;
use std::collections::BTreeMap;

/// One annotator behaviour archetype.  For sequence tagging the
/// confusion-style archetypes act token-wise over the BIO classes, except
/// [`Archetype::PairConfuser`], whose classes name *entity types* and which
/// swaps whole spans (preserving BIO structure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Archetype {
    /// A competent annotator: high-diagonal confusion (classification,
    /// sampled around `accuracy` with Dirichlet off-diagonal noise) or the
    /// structured ignore/boundary/span-type error model at quality
    /// `accuracy` (tagging).
    Reliable {
        /// Target per-class accuracy / NER quality in `[0, 1]`.
        accuracy: f32,
    },
    /// A uniform spammer: every row of the confusion is `1/K` regardless of
    /// the true class, carrying zero signal.
    Spammer,
    /// An adversary answering on the anti-diagonal: true class `m` is
    /// reported as class `K-1-m` with probability `flip` (rest uniform) —
    /// worse than random, actively misleading accuracy-weighted aggregators.
    Adversarial {
        /// Probability mass on the anti-diagonal class.
        flip: f32,
    },
    /// Confuses exactly one pair of classes (classification) or entity
    /// types (tagging), reporting the other member of the pair with
    /// probability `swap_prob` and behaving near-perfectly elsewhere.
    PairConfuser {
        /// First class (classification) / entity type (tagging) of the pair.
        class_a: usize,
        /// Second class / entity type of the pair.
        class_b: usize,
        /// Probability of swapping the pair.
        swap_prob: f32,
    },
    /// A colluding clique: the first annotator of the clique (the *leader*)
    /// behaves like a mediocre [`Archetype::Reliable`] annotator and every
    /// other member copies the leader's noisy label stream verbatim, so the
    /// clique looks like independent corroboration but carries one
    /// annotator's worth of signal.
    Colluding,
}

impl Archetype {
    /// The default competent annotator (`accuracy = 0.85`).
    pub fn reliable() -> Self {
        Archetype::Reliable { accuracy: 0.85 }
    }

    /// The default adversary (`flip = 0.85`).
    pub fn adversarial() -> Self {
        Archetype::Adversarial { flip: 0.85 }
    }

    /// The default pair confuser over the first two classes / entity types.
    pub fn pair_confuser() -> Self {
        Archetype::PairConfuser { class_a: 0, class_b: 1, swap_prob: 0.8 }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Archetype::Reliable { .. } => "reliable",
            Archetype::Spammer => "spammer",
            Archetype::Adversarial { .. } => "adversarial",
            Archetype::PairConfuser { .. } => "pair-confuser",
            Archetype::Colluding => "colluding",
        }
    }

    /// The `K x K` unit-level confusion matrix of the archetype, for the
    /// archetypes that act through one (everything except tagging-mode
    /// [`Archetype::PairConfuser`] and [`Archetype::Colluding`] followers).
    pub fn confusion(&self, num_classes: usize) -> Matrix {
        let k = num_classes;
        match *self {
            Archetype::Reliable { accuracy } => {
                let off = (1.0 - accuracy) / (k - 1) as f32;
                Matrix::from_fn(k, k, |r, c| if r == c { accuracy } else { off })
            }
            Archetype::Spammer => Matrix::full(k, k, 1.0 / k as f32),
            Archetype::Adversarial { flip } => {
                let off = (1.0 - flip) / (k - 1) as f32;
                Matrix::from_fn(k, k, |r, c| if c == k - 1 - r { flip } else { off })
            }
            Archetype::PairConfuser { class_a, class_b, swap_prob } => {
                assert!(class_a < k && class_b < k && class_a != class_b, "pair classes out of range");
                let diag = 0.95f32;
                let off = (1.0 - diag) / (k - 1) as f32;
                Matrix::from_fn(k, k, |r, c| {
                    if r == class_a || r == class_b {
                        let partner = if r == class_a { class_b } else { class_a };
                        if c == partner {
                            swap_prob
                        } else if c == r {
                            1.0 - swap_prob
                        } else {
                            0.0
                        }
                    } else if r == c {
                        diag
                    } else {
                        off
                    }
                })
            }
            Archetype::Colluding => {
                // the clique leader's behaviour; followers copy its stream
                Archetype::Reliable { accuracy: COLLUSION_LEADER_ACCURACY }.confusion(k)
            }
        }
    }
}

/// Accuracy of a colluding clique's leader.
const COLLUSION_LEADER_ACCURACY: f32 = 0.7;

/// How an annotator's error rate evolves over *their own* label stream —
/// the temporal axis layered on top of any [`Archetype`].
///
/// The schedule yields an extra **corruption probability** as a function of
/// the annotator's progress through their expected workload: with
/// probability `corruption_at(progress)` each labelled unit is replaced by a
/// uniformly random class (spammer-style noise), on top of whatever the
/// base archetype already does.  Corruption draws come from a dedicated RNG
/// stream, so a schedule that never corrupts ([`DriftSchedule::Static`], or
/// any schedule at rate/level `0`) reproduces the static generator
/// **bitwise** (asserted by the metamorphic tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSchedule {
    /// No drift: the archetype behaves identically over the whole stream.
    Static,
    /// Fatigue: corruption grows linearly from `0` (stream start) to `rate`
    /// (expected stream end), then stays there.
    LinearFatigue {
        /// Corruption probability reached at the end of the expected
        /// stream, in `[0, 1]`.
        rate: f32,
    },
    /// A step change: no corruption before fraction `at` of the stream,
    /// constant corruption `level` afterwards (the regime windowed
    /// estimators should track and static confusion matrices cannot).
    StepChange {
        /// Stream fraction in `[0, 1]` at which the change happens.
        at: f32,
        /// Corruption probability after the change, in `[0, 1]`.
        level: f32,
    },
    /// A learning curve: corruption starts at `rate` and decays linearly to
    /// `0` over the expected stream (novices improving with practice).
    LearningCurve {
        /// Corruption probability at the start of the stream, in `[0, 1]`.
        rate: f32,
    },
}

impl DriftSchedule {
    /// Extra corruption probability at `progress` (fraction of the
    /// annotator's expected stream already labelled, clamped to `[0, 1]`).
    pub fn corruption_at(&self, progress: f32) -> f32 {
        let progress = progress.clamp(0.0, 1.0);
        match *self {
            DriftSchedule::Static => 0.0,
            DriftSchedule::LinearFatigue { rate } => rate * progress,
            DriftSchedule::StepChange { at, level } => {
                if progress >= at {
                    level
                } else {
                    0.0
                }
            }
            DriftSchedule::LearningCurve { rate } => rate * (1.0 - progress),
        }
    }

    /// True when the schedule never corrupts (static, or any shape at
    /// rate/level `0`) — exactly the configurations that reproduce the
    /// static generator bitwise.
    pub fn is_static(&self) -> bool {
        match *self {
            DriftSchedule::Static => true,
            DriftSchedule::LinearFatigue { rate } | DriftSchedule::LearningCurve { rate } => rate == 0.0,
            DriftSchedule::StepChange { level, .. } => level == 0.0,
        }
    }

    /// Short display name (used in grid scenario names).
    pub fn name(&self) -> &'static str {
        match self {
            DriftSchedule::Static => "static",
            DriftSchedule::LinearFatigue { .. } => "fatigue",
            DriftSchedule::StepChange { .. } => "step",
            DriftSchedule::LearningCurve { .. } => "learning",
        }
    }

    /// Checks the parameters, returning a descriptive error for degenerate
    /// values (negative or >1 rates/levels, step fraction outside `[0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        let check = |what: &str, v: f32| {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                Err(format!("drift {what} must be a probability in [0, 1], got {v}"))
            } else {
                Ok(())
            }
        };
        match *self {
            DriftSchedule::Static => Ok(()),
            DriftSchedule::LinearFatigue { rate } | DriftSchedule::LearningCurve { rate } => check("rate", rate),
            DriftSchedule::StepChange { at, level } => {
                check("step fraction", at)?;
                check("step level", level)
            }
        }
    }
}

/// Instance-difficulty-conditioned error — the GLAD generative story
/// (Whitehill et al. 2009) on the generator side.
///
/// Each training instance draws a latent *hardness* in `[0, 1]` (the
/// `1/beta` of GLAD, normalised): `hardness = u^concentration` for uniform
/// `u`, so `concentration > 1` skews the corpus easy and `< 1` hard.  Every
/// annotator labelling the instance then suffers an extra corruption
/// probability `strength · hardness` — **all** annotators err more on the
/// same hard instances, producing correlated, non-colluding mistakes that
/// violate the conditional-independence assumption of DS-family models.
///
/// `strength == 0` is the degenerate model: no corruption is ever drawn and
/// the generated dataset is **bitwise identical** to the static one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifficultyModel {
    /// Corruption probability on the hardest instances, in `[0, 1]`
    /// (`0` disables the model).
    pub strength: f32,
    /// Hardness-distribution shape: `hardness = u^concentration`; larger
    /// values concentrate mass near `0` (mostly easy instances).  Must be
    /// positive and finite.
    pub concentration: f32,
}

impl Default for DifficultyModel {
    fn default() -> Self {
        Self { strength: 0.0, concentration: 1.0 }
    }
}

impl DifficultyModel {
    /// A moderately hard corpus: up to `strength` corruption, hardness
    /// skewed easy (`concentration = 2`).
    pub fn with_strength(strength: f32) -> Self {
        Self { strength, concentration: 2.0 }
    }

    /// True when the model never corrupts (the bitwise-identical
    /// degenerate setting).
    pub fn is_degenerate(&self) -> bool {
        self.strength == 0.0
    }

    /// Samples one instance's hardness in `[0, 1]`.
    pub fn hardness(&self, rng: &mut TensorRng) -> f32 {
        rng.uniform().powf(self.concentration)
    }

    /// Checks the parameters, returning a descriptive error for degenerate
    /// values (strength outside `[0, 1]`, non-positive concentration).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.strength) || !self.strength.is_finite() {
            return Err(format!("difficulty strength must be a probability in [0, 1], got {}", self.strength));
        }
        if self.concentration <= 0.0 || !self.concentration.is_finite() {
            return Err(format!("difficulty concentration must be positive and finite, got {}", self.concentration));
        }
        Ok(())
    }
}

/// How annotator workload propensities are distributed across the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropensityProfile {
    /// Every annotator is equally likely to pick up a task.
    Uniform,
    /// Pareto-ish long tail mirroring the Figure-4 statistics: a few
    /// prolific annotators, many occasional ones.
    LongTail,
}

impl PropensityProfile {
    /// Samples the unnormalised per-annotator propensity weights.
    pub fn weights(&self, num_annotators: usize, rng: &mut TensorRng) -> Vec<f32> {
        match self {
            PropensityProfile::Uniform => vec![1.0; num_annotators],
            PropensityProfile::LongTail => {
                (0..num_annotators).map(|_| (1.0 / rng.uniform_range(0.02, 1.0)).min(60.0)).collect()
            }
        }
    }
}

/// Concrete per-annotator behaviour, compiled from an [`Archetype`].
#[derive(Debug, Clone)]
enum Behaviour {
    /// Unit-level confusion sampling (classification always; tagging for
    /// spammers/adversaries, applied token-wise).
    Unit(ConfusionAnnotator),
    /// Structured NER error model (reliable tagging annotators and clique
    /// leaders on tagging tasks).
    Seq(NerAnnotator),
    /// Span-level entity-type pair swapping (tagging pair confusers).
    PairSwapSeq { ty_a: usize, ty_b: usize, swap_prob: f32 },
    /// Copies the leader's noisy stream (colluding clique followers).
    Copy { leader: usize },
}

/// A pool of scenario annotators: compiled behaviours plus workload
/// propensities, with the archetype of every member kept for inspection.
#[derive(Debug, Clone)]
pub struct ScenarioPool {
    behaviours: Vec<Behaviour>,
    /// Archetype each annotator was compiled from, in index order.
    pub archetypes: Vec<Archetype>,
    /// Unnormalised workload propensity per annotator.
    pub propensity: Vec<f32>,
}

impl ScenarioPool {
    /// Compiles an archetype mix into `num_annotators` concrete annotators.
    /// `mix` holds `(archetype, fraction)` entries; fractions are
    /// normalised and rounded to counts by largest remainder, so every
    /// positive-fraction archetype with enough pool share gets at least its
    /// floor.  Each [`Archetype::Colluding`] entry forms **one** clique.
    pub fn generate(
        task: TaskKind,
        num_classes: usize,
        mix: &[(Archetype, f32)],
        num_annotators: usize,
        propensity: PropensityProfile,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(num_annotators > 0, "need at least one annotator");
        assert!(!mix.is_empty(), "archetype mix must not be empty");
        assert!(mix.iter().all(|&(_, f)| f >= 0.0), "mix fractions must be non-negative");
        let counts = largest_remainder_counts(mix, num_annotators);

        let mut behaviours = Vec::with_capacity(num_annotators);
        let mut archetypes = Vec::with_capacity(num_annotators);
        for (&(archetype, _), &count) in mix.iter().zip(&counts) {
            let clique_leader = behaviours.len();
            for slot in 0..count {
                let behaviour = match archetype {
                    Archetype::Colluding if slot > 0 => Behaviour::Copy { leader: clique_leader },
                    Archetype::Colluding => leader_behaviour(task, num_classes, rng),
                    Archetype::Reliable { accuracy } => reliable_behaviour(task, num_classes, accuracy, rng),
                    Archetype::PairConfuser { class_a, class_b, swap_prob } if task == TaskKind::SequenceTagging => {
                        assert!(
                            class_a < NUM_ENTITY_TYPES && class_b < NUM_ENTITY_TYPES && class_a != class_b,
                            "pair-confuser entity types out of range"
                        );
                        Behaviour::PairSwapSeq { ty_a: class_a, ty_b: class_b, swap_prob }
                    }
                    other => Behaviour::Unit(ConfusionAnnotator::new(other.confusion(num_classes))),
                };
                behaviours.push(behaviour);
                archetypes.push(archetype);
            }
        }
        let propensity = propensity.weights(behaviours.len(), rng);
        Self { behaviours, archetypes, propensity }
    }

    /// Number of annotators.
    pub fn len(&self) -> usize {
        self.behaviours.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.behaviours.is_empty()
    }

    /// Selects `count` distinct annotators biased by propensity (uniform
    /// fallback over the remainder once positive weights run out).
    pub fn select(&self, count: usize, rng: &mut TensorRng) -> Vec<usize> {
        select_weighted_distinct(&self.propensity, count, rng)
    }

    /// Labels one instance: every selected annotator reports its noisy
    /// labels for the gold sequence.  Colluding followers reproduce their
    /// leader's stream for this instance exactly (the leader's labels are
    /// generated once per instance, whether or not the leader itself is
    /// selected).
    pub fn annotate_instance(&self, selected: &[usize], gold: &[usize], rng: &mut TensorRng) -> Vec<CrowdLabel> {
        let any_follower = selected.iter().any(|&a| matches!(self.behaviours[a], Behaviour::Copy { .. }));
        if !any_follower {
            // fast path (no colluding follower selected): no stream is read
            // twice, so nothing needs caching
            return selected
                .iter()
                .map(|&annotator| CrowdLabel { annotator, labels: self.base_labels(annotator, gold, rng) })
                .collect();
        }
        // a leader's stream may be read several times (its own selection
        // plus every selected follower); generate each stream once
        let mut cache: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        selected
            .iter()
            .map(|&annotator| {
                let source = match self.behaviours[annotator] {
                    Behaviour::Copy { leader } => leader,
                    _ => annotator,
                };
                if let std::collections::btree_map::Entry::Vacant(slot) = cache.entry(source) {
                    slot.insert(self.base_labels(source, gold, rng));
                }
                CrowdLabel { annotator, labels: cache[&source].clone() }
            })
            .collect()
    }

    fn base_labels(&self, annotator: usize, gold: &[usize], rng: &mut TensorRng) -> Vec<usize> {
        match &self.behaviours[annotator] {
            Behaviour::Unit(confusion) => confusion.annotate_sequence(gold, rng),
            Behaviour::Seq(ner) => ner.annotate(gold, rng),
            Behaviour::PairSwapSeq { ty_a, ty_b, swap_prob } => pair_swap_sequence(gold, *ty_a, *ty_b, *swap_prob, rng),
            Behaviour::Copy { .. } => unreachable!("collusion leaders are never Copy behaviours"),
        }
    }
}

fn reliable_behaviour(task: TaskKind, num_classes: usize, accuracy: f32, rng: &mut TensorRng) -> Behaviour {
    match task {
        // sampled (Dirichlet-perturbed) confusions so pools have realistic spread
        TaskKind::Classification => Behaviour::Unit(ConfusionAnnotator::sample(num_classes, accuracy, 1.0, rng)),
        TaskKind::SequenceTagging => {
            let quality = (accuracy + rng.uniform_range(-0.08, 0.08)).clamp(0.05, 0.95);
            Behaviour::Seq(NerAnnotator::new(NUM_ENTITY_TYPES, NerErrorRates::with_quality(quality)))
        }
    }
}

fn leader_behaviour(task: TaskKind, num_classes: usize, rng: &mut TensorRng) -> Behaviour {
    reliable_behaviour(task, num_classes, COLLUSION_LEADER_ACCURACY, rng)
}

/// Swaps entity types `ty_a <-> ty_b` span-wise with probability
/// `swap_prob`, preserving span boundaries and BIO structure.
fn pair_swap_sequence(gold: &[usize], ty_a: usize, ty_b: usize, swap_prob: f32, rng: &mut TensorRng) -> Vec<usize> {
    let mut out = gold.to_vec();
    for (start, end, ty) in gold_spans(gold) {
        let new_ty = if ty == ty_a {
            ty_b
        } else if ty == ty_b {
            ty_a
        } else {
            continue;
        };
        if rng.bernoulli(swap_prob) {
            out[start] = 1 + 2 * new_ty;
            for slot in out.iter_mut().take(end).skip(start + 1) {
                *slot = 2 + 2 * new_ty;
            }
        }
    }
    out
}

/// Rounds normalised mix fractions to integer counts summing to `total`
/// (largest-remainder method; ties keep mix order).
fn largest_remainder_counts(mix: &[(Archetype, f32)], total: usize) -> Vec<usize> {
    let sum: f32 = mix.iter().map(|&(_, f)| f).sum();
    assert!(sum > 0.0, "archetype mix fractions must not all be zero");
    let exact: Vec<f32> = mix.iter().map(|&(_, f)| f / sum * total as f32).collect();
    let mut counts: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let mut order: Vec<usize> = (0..mix.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    // the deficit equals the integer sum of the fractional parts, which is
    // strictly below mix.len(), so one pass over `order` always drains it
    let deficit = total - counts.iter().sum::<usize>().min(total);
    for &i in order.iter().take(deficit) {
        counts[i] += 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    counts
}

/// Full description of one simulated crowd scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Human-readable scenario name (used in sweep reports).
    pub name: String,
    /// Task kind the scenario generates data for.
    pub task: TaskKind,
    /// Number of training instances.
    pub train_size: usize,
    /// Number of development instances.
    pub dev_size: usize,
    /// Number of test instances.
    pub test_size: usize,
    /// Number of annotators in the pool.
    pub num_annotators: usize,
    /// Minimum annotators per training instance (redundancy floor).
    pub min_labels_per_instance: usize,
    /// Maximum annotators per training instance (redundancy ceiling).
    pub max_labels_per_instance: usize,
    /// Archetype mix as `(archetype, fraction)` entries.
    pub mix: Vec<(Archetype, f32)>,
    /// Workload propensity profile.
    pub propensity: PropensityProfile,
    /// Class imbalance: for classification the prior probability of class
    /// `0`; for tagging the sampling weight of entity type `0` (the
    /// remaining types share the rest uniformly).  `0.5` / `0.25` are the
    /// balanced settings.
    pub majority_share: f32,
    /// Number of neutral filler words in the sentiment vocabulary
    /// (ignored for tagging).
    pub filler_vocab: usize,
    /// Temporal drift of every annotator's error rate over their own label
    /// stream ([`DriftSchedule::Static`] reproduces the static generator
    /// bitwise).
    pub drift: DriftSchedule,
    /// Instance-difficulty-conditioned correlated error (the degenerate
    /// `strength == 0` model reproduces the static generator bitwise).
    pub difficulty: DifficultyModel,
    /// Closed-loop collection plan ([`router::RoutePlan`]): which
    /// [`router::AssignmentPolicy`] reveals the labels and under what
    /// fraction of the static label budget.  `None` (and the explicit
    /// static-redundancy plan at fraction `1.0`) is today's batch
    /// behaviour.  [`generate_scenario`] itself ignores the plan — it
    /// always produces the full static twin — but the plan is part of the
    /// scenario's identity: [`content_hash`](ScenarioConfig::content_hash)
    /// covers it so a routed scenario and its static twin never alias in a
    /// [`ScenarioCache`] or a sweep report.
    pub route: Option<RoutePlan>,
    /// RNG seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A balanced classification scenario with a clean pool (override the
    /// knobs with the `with_*` builders).
    pub fn classification(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            task: TaskKind::Classification,
            train_size: 300,
            dev_size: 100,
            test_size: 100,
            num_annotators: 20,
            min_labels_per_instance: 3,
            max_labels_per_instance: 5,
            mix: vec![(Archetype::reliable(), 1.0)],
            propensity: PropensityProfile::LongTail,
            majority_share: 0.5,
            filler_vocab: 60,
            drift: DriftSchedule::Static,
            difficulty: DifficultyModel::default(),
            route: None,
            seed: 29,
        }
    }

    /// A balanced sequence-tagging scenario with a clean pool.
    pub fn tagging(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            task: TaskKind::SequenceTagging,
            train_size: 200,
            dev_size: 60,
            test_size: 60,
            num_annotators: 15,
            min_labels_per_instance: 2,
            max_labels_per_instance: 4,
            mix: vec![(Archetype::reliable(), 1.0)],
            propensity: PropensityProfile::LongTail,
            majority_share: 0.25,
            filler_vocab: 0,
            drift: DriftSchedule::Static,
            difficulty: DifficultyModel::default(),
            route: None,
            seed: 31,
        }
    }

    /// A very small configuration for unit/integration tests.
    pub fn tiny(task: TaskKind) -> Self {
        let base = match task {
            TaskKind::Classification => Self::classification("tiny"),
            TaskKind::SequenceTagging => Self::tagging("tiny"),
        };
        Self { train_size: 60, dev_size: 20, test_size: 20, num_annotators: 8, filler_vocab: 20, ..base }
    }

    /// Replaces the scenario name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the split sizes.
    pub fn with_sizes(mut self, train: usize, dev: usize, test: usize) -> Self {
        self.train_size = train;
        self.dev_size = dev;
        self.test_size = test;
        self
    }

    /// Sets the annotator pool size.
    pub fn with_annotators(mut self, num_annotators: usize) -> Self {
        self.num_annotators = num_annotators;
        self
    }

    /// Sets the per-instance redundancy range.
    pub fn with_redundancy(mut self, min: usize, max: usize) -> Self {
        self.min_labels_per_instance = min;
        self.max_labels_per_instance = max;
        self
    }

    /// Sets the archetype mix.
    pub fn with_mix(mut self, mix: Vec<(Archetype, f32)>) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the propensity profile.
    pub fn with_propensity(mut self, propensity: PropensityProfile) -> Self {
        self.propensity = propensity;
        self
    }

    /// Sets the class-imbalance knob (see [`ScenarioConfig::majority_share`]).
    pub fn with_majority_share(mut self, share: f32) -> Self {
        self.majority_share = share;
        self
    }

    /// Sets the temporal drift schedule (see [`DriftSchedule`]).
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = drift;
        self
    }

    /// Sets the instance-difficulty model (see [`DifficultyModel`]).
    pub fn with_difficulty(mut self, difficulty: DifficultyModel) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Sets the closed-loop collection plan (see [`router::RoutePlan`]).
    pub fn with_route(mut self, route: RoutePlan) -> Self {
        self.route = Some(route);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of classes `K` of the generated dataset.
    pub fn num_classes(&self) -> usize {
        match self.task {
            TaskKind::Classification => 2,
            TaskKind::SequenceTagging => NUM_BIO_CLASSES,
        }
    }

    /// FNV-1a hash over every knob that influences [`generate_scenario`]
    /// or the closed-loop collection of the dataset (the
    /// [`router::RoutePlan`], consumed by
    /// [`router::run_route_plan`]).  The `name` is a display label and
    /// deliberately excluded, so two configurations that generate the same
    /// dataset under different names share one [`ScenarioCache`] entry — but
    /// a routed scenario never hashes like its static twin, even though
    /// both draw the same underlying corpus.
    pub fn content_hash(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix_in = |v: u64| {
            hash ^= v;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix_in(match self.task {
            TaskKind::Classification => 0,
            TaskKind::SequenceTagging => 1,
        });
        for size in [self.train_size, self.dev_size, self.test_size, self.num_annotators] {
            mix_in(size as u64);
        }
        mix_in(self.min_labels_per_instance as u64);
        mix_in(self.max_labels_per_instance as u64);
        for (archetype, fraction) in &self.mix {
            let (tag, params): (u64, [u32; 3]) = match *archetype {
                Archetype::Reliable { accuracy } => (0, [accuracy.to_bits(), 0, 0]),
                Archetype::Spammer => (1, [0, 0, 0]),
                Archetype::Adversarial { flip } => (2, [flip.to_bits(), 0, 0]),
                Archetype::PairConfuser { class_a, class_b, swap_prob } => {
                    (3, [class_a as u32, class_b as u32, swap_prob.to_bits()])
                }
                Archetype::Colluding => (4, [0, 0, 0]),
            };
            mix_in(tag);
            for p in params {
                mix_in(p as u64);
            }
            mix_in(fraction.to_bits() as u64);
        }
        mix_in(match self.propensity {
            PropensityProfile::Uniform => 0,
            PropensityProfile::LongTail => 1,
        });
        mix_in(self.majority_share.to_bits() as u64);
        mix_in(self.filler_vocab as u64);
        let (drift_tag, drift_params): (u64, [u32; 2]) = match self.drift {
            DriftSchedule::Static => (0, [0, 0]),
            DriftSchedule::LinearFatigue { rate } => (1, [rate.to_bits(), 0]),
            DriftSchedule::StepChange { at, level } => (2, [at.to_bits(), level.to_bits()]),
            DriftSchedule::LearningCurve { rate } => (3, [rate.to_bits(), 0]),
        };
        mix_in(drift_tag);
        for p in drift_params {
            mix_in(p as u64);
        }
        mix_in(self.difficulty.strength.to_bits() as u64);
        mix_in(self.difficulty.concentration.to_bits() as u64);
        match self.route {
            None => mix_in(0),
            Some(plan) => {
                mix_in(1);
                mix_in(match plan.policy {
                    router::PolicyKind::StaticRedundancy => 0,
                    router::PolicyKind::UncertaintyRouting => 1,
                    router::PolicyKind::SpamQuarantine => 2,
                });
                mix_in(plan.budget_fraction.to_bits() as u64);
            }
        }
        mix_in(self.seed);
        hash
    }
}

/// A process-wide cache of generated scenario datasets, keyed by
/// [`ScenarioConfig::content_hash`].  Sweeps that visit the same
/// configuration more than once (repeated method subsets, quality passes
/// after timing passes, sharded workers on overlapping grids) share one
/// generated corpus instead of regenerating it.  Thread-safe: workers on
/// scoped threads can share one cache by reference.
#[derive(Debug, Default)]
pub struct ScenarioCache {
    datasets: std::sync::Mutex<BTreeMap<u64, std::sync::Arc<CrowdDataset>>>,
}

impl ScenarioCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dataset for a configuration, generated on first use.
    pub fn get_or_generate(&self, config: &ScenarioConfig) -> std::sync::Arc<CrowdDataset> {
        let key = config.content_hash();
        if let Some(dataset) = self.datasets.lock().expect("scenario cache poisoned").get(&key) {
            return std::sync::Arc::clone(dataset);
        }
        // generate outside the lock so concurrent misses on *different*
        // configs do not serialise behind one expensive generation
        let dataset = std::sync::Arc::new(generate_scenario(config));
        let mut cached = self.datasets.lock().expect("scenario cache poisoned");
        std::sync::Arc::clone(cached.entry(key).or_insert(dataset))
    }

    /// Number of distinct datasets generated so far.
    pub fn len(&self) -> usize {
        self.datasets.lock().expect("scenario cache poisoned").len()
    }

    /// True when nothing has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Applies the temporal corruption layer (drift + instance difficulty) to
/// one instance's crowd labels, in label order.
///
/// Each annotator's corruption probability combines their drift schedule at
/// their *own* stream position (`stream_pos[annotator] / horizon`) with the
/// instance's difficulty-conditioned corruption; a corrupted unit is
/// replaced by a uniformly random class.  Colluding followers corrupt
/// independently of their leader — fatigue is personal even inside a
/// clique.  When no corruption can occur (static drift and degenerate
/// difficulty) the function returns without touching `rng`, which is what
/// keeps the degenerate configurations bitwise identical to the static
/// generator.
fn apply_temporal_noise(
    crowd_labels: &mut [CrowdLabel],
    drift: DriftSchedule,
    difficulty: DifficultyModel,
    stream_pos: &[usize],
    horizon: f32,
    num_classes: usize,
    rng: &mut TensorRng,
) {
    let difficulty_p = if difficulty.is_degenerate() { 0.0 } else { difficulty.strength * difficulty.hardness(rng) };
    if drift.is_static() && difficulty_p == 0.0 {
        return;
    }
    for cl in crowd_labels.iter_mut() {
        let progress = stream_pos[cl.annotator] as f32 / horizon;
        let drift_p = drift.corruption_at(progress);
        // independent corruption sources combine through their complements
        let p = 1.0 - (1.0 - drift_p) * (1.0 - difficulty_p);
        if p <= 0.0 {
            continue;
        }
        for label in cl.labels.iter_mut() {
            if rng.bernoulli(p) {
                *label = rng.usize_below(num_classes);
            }
        }
    }
}

/// Generates the dataset described by a [`ScenarioConfig`].
///
/// Four independent RNG streams are forked from the seed — gold text,
/// pool compilation, crowd assignment/annotation, and temporal corruption
/// (drift / difficulty) — so two configs sharing a seed, task, sizes and
/// imbalance draw the **same gold corpus** no matter how their pools,
/// mixes, redundancies or temporal knobs differ.  Cross-scenario
/// comparisons (the redundancy-monotonicity and spammer-dilution
/// properties, sweep rankings, static-vs-drifted ranking flips) therefore
/// vary only the crowd condition, never the underlying corpus.  Because the
/// temporal stream is separate, a config whose drift is
/// [`DriftSchedule::Static`] (or rate `0`) and whose difficulty is
/// degenerate reproduces the pre-temporal generator **bitwise**.
/// The compiled annotator pool of a configuration — the same pool, drawn
/// from the same forked RNG stream, that [`generate_scenario`] labels with.
/// Lets closed-loop tests and diagnostics inspect archetypes and
/// propensities without regenerating (or trusting) the dataset.
pub fn scenario_pool(config: &ScenarioConfig) -> ScenarioPool {
    let mut master = TensorRng::seed_from_u64(config.seed);
    let _text_rng = master.fork(); // gold-text stream, unused here
    let mut pool_rng = master.fork();
    ScenarioPool::generate(
        config.task,
        config.num_classes(),
        &config.mix,
        config.num_annotators,
        config.propensity,
        &mut pool_rng,
    )
}

/// Generates the dataset described by a [`ScenarioConfig`] in one batch by
/// draining a [`ScenarioStream`] — see the stream type for the chunked
/// (huge-tier) form and the RNG-stream discipline both share.
pub fn generate_scenario(config: &ScenarioConfig) -> CrowdDataset {
    let mut stream = ScenarioStream::new(config);
    let mut train = Vec::with_capacity(config.train_size);
    while !stream.is_drained() {
        train.append(&mut stream.next_train_chunk(config.train_size.max(1)));
    }
    stream.finish(train)
}

/// Gold-text sampler per task (shared by the batch and streaming paths).
enum TextModel {
    Sent { text: SentimentTextModel, zero_share: f32 },
    Ner(NerTextModel),
}

impl TextModel {
    fn sentence(&self, rng: &mut TensorRng) -> (Vec<usize>, Vec<usize>) {
        match self {
            TextModel::Sent { text, zero_share } => {
                let label = if rng.bernoulli(*zero_share) { 0 } else { 1 };
                (text.sentence(label, rng), vec![label])
            }
            TextModel::Ner(text) => text.sentence(rng),
        }
    }
}

/// Chunked-iterator form of [`generate_scenario`] — the huge-tier streaming
/// path.  Training instances are produced in caller-sized chunks and can be
/// dropped as soon as they are consumed (e.g. folded into a flat posterior
/// arena), so the corpus never fully resides in memory; [`finish`] then
/// emits the dev/test splits and the dataset shell.
///
/// The stream **is** the generator: [`generate_scenario`] drains one, so a
/// chunked consumer sees byte-for-byte the instances the batch call would
/// have built, regardless of chunk size — the four forked RNG streams
/// (gold text, pool, crowd, temporal) advance identically because the
/// per-instance loop body is the same code.
///
/// [`finish`]: ScenarioStream::finish
pub struct ScenarioStream {
    config: ScenarioConfig,
    text_model: TextModel,
    text_rng: TensorRng,
    crowd_rng: TensorRng,
    temporal_rng: TensorRng,
    pool: ScenarioPool,
    stream_pos: Vec<usize>,
    drift_horizon: f32,
    num_classes: usize,
    emitted: usize,
}

impl ScenarioStream {
    /// Validates the configuration and forks the RNG streams, exactly as
    /// the batch generator does.
    pub fn new(config: &ScenarioConfig) -> Self {
        assert!(
            config.num_annotators >= config.max_labels_per_instance,
            "annotator pool smaller than labels per instance"
        );
        assert!(
            config.min_labels_per_instance >= 1 && config.min_labels_per_instance <= config.max_labels_per_instance
        );
        assert!((0.0..=1.0).contains(&config.majority_share), "majority_share must be in [0, 1]");
        if let Err(message) = config.drift.validate() {
            panic!("invalid drift schedule for scenario {:?}: {message}", config.name);
        }
        if let Err(message) = config.difficulty.validate() {
            panic!("invalid difficulty model for scenario {:?}: {message}", config.name);
        }
        let num_classes = config.num_classes();
        let mut master = TensorRng::seed_from_u64(config.seed);
        let text_rng = master.fork();
        let mut pool_rng = master.fork();
        let crowd_rng = master.fork();
        // temporal corruption (drift + difficulty) draws from its own
        // stream, so configurations that never corrupt —
        // `DriftSchedule::Static` / degenerate difficulty — reproduce the
        // static generator bitwise
        let temporal_rng = master.fork();
        let pool = ScenarioPool::generate(
            config.task,
            num_classes,
            &config.mix,
            config.num_annotators,
            config.propensity,
            &mut pool_rng,
        );
        let text_model = match config.task {
            TaskKind::Classification => TextModel::Sent {
                text: SentimentTextModel::new(config.filler_vocab.max(1), 0.30, 0.10, 0.6),
                zero_share: config.majority_share,
            },
            TaskKind::SequenceTagging => {
                let w0 = config.majority_share;
                let rest = (1.0 - w0) / (NUM_ENTITY_TYPES - 1) as f32;
                let mut weights = [rest; NUM_ENTITY_TYPES];
                weights[0] = w0;
                TextModel::Ner(NerTextModel::with_type_weights(weights))
            }
        };
        // expected instances each annotator labels — the normaliser that
        // turns an annotator's absolute stream position into drift
        // "progress"
        let avg_redundancy = (config.min_labels_per_instance + config.max_labels_per_instance) as f32 / 2.0;
        let drift_horizon = (config.train_size as f32 * avg_redundancy / config.num_annotators as f32).max(1.0);
        let stream_pos = vec![0usize; config.num_annotators];
        Self {
            config: config.clone(),
            text_model,
            text_rng,
            crowd_rng,
            temporal_rng,
            pool,
            stream_pos,
            drift_horizon,
            num_classes,
            emitted: 0,
        }
    }

    /// Training instances not yet emitted.
    pub fn remaining_train(&self) -> usize {
        self.config.train_size - self.emitted
    }

    /// True once every training instance has been emitted.
    pub fn is_drained(&self) -> bool {
        self.remaining_train() == 0
    }

    /// Generates the next `min(max_chunk, remaining)` training instances.
    /// Concatenating the chunks of any chunk-size schedule reproduces the
    /// batch generator's training split exactly.
    pub fn next_train_chunk(&mut self, max_chunk: usize) -> Vec<Instance> {
        assert!(max_chunk >= 1, "next_train_chunk: chunk size must be at least 1");
        let count = max_chunk.min(self.remaining_train());
        let mut chunk = Vec::with_capacity(count);
        for _ in 0..count {
            let (tokens, gold) = self.text_model.sentence(&mut self.text_rng);
            let span = self.config.max_labels_per_instance - self.config.min_labels_per_instance + 1;
            let count = self.config.min_labels_per_instance + self.crowd_rng.usize_below(span);
            let selected = self.pool.select(count, &mut self.crowd_rng);
            let mut crowd_labels = self.pool.annotate_instance(&selected, &gold, &mut self.crowd_rng);
            apply_temporal_noise(
                &mut crowd_labels,
                self.config.drift,
                self.config.difficulty,
                &self.stream_pos,
                self.drift_horizon,
                self.num_classes,
                &mut self.temporal_rng,
            );
            for cl in &crowd_labels {
                self.stream_pos[cl.annotator] += 1;
            }
            chunk.push(Instance { tokens, gold, crowd_labels });
        }
        self.emitted += count;
        chunk
    }

    /// Generates the dev/test splits and assembles the dataset around the
    /// training split the caller retained — pass `Vec::new()` when the
    /// instances were consumed on the fly (the streaming first-E-pass
    /// path).  Panics if training instances are still pending.
    pub fn finish(mut self, train: Vec<Instance>) -> CrowdDataset {
        assert!(
            self.is_drained(),
            "ScenarioStream::finish: {} training instance(s) not yet generated",
            self.remaining_train()
        );
        let _streamed = train.is_empty() && self.config.train_size > 0;
        let mut make_eval = |size: usize| -> Vec<Instance> {
            (0..size)
                .map(|_| {
                    let (tokens, gold) = self.text_model.sentence(&mut self.text_rng);
                    Instance { tokens, gold, crowd_labels: Vec::new() }
                })
                .collect()
        };
        let dev = make_eval(self.config.dev_size);
        let test = make_eval(self.config.test_size);

        let (vocab, class_names, but_token, however_token) = match &self.text_model {
            TextModel::Sent { text, .. } => (
                text.vocab().to_vec(),
                vec!["NEG".to_string(), "POS".to_string()],
                Some(text.but_token()),
                Some(text.however_token()),
            ),
            TextModel::Ner(text) => (text.vocab().to_vec(), bio_class_names(), None, None),
        };

        let dataset = CrowdDataset {
            task: self.config.task,
            num_classes: self.num_classes,
            num_annotators: self.config.num_annotators,
            vocab,
            class_names,
            train,
            dev,
            test,
            but_token,
            however_token,
        };
        // streamed consumers hand back an empty training split, which the
        // whole-dataset invariants would reject — skip validation for them
        #[cfg(debug_assertions)]
        if !_streamed {
            if let Err(message) = dataset.validate() {
                panic!("generate_scenario({:?}) produced an invalid dataset: {message}", self.config.name);
            }
        }
        dataset
    }
}

/// The named archetype mixes the `scenario_sweep` binary and the robustness
/// suite run: from a clean pool to a fully hostile one.
pub fn standard_mixes() -> Vec<(&'static str, Vec<(Archetype, f32)>)> {
    vec![
        ("clean", vec![(Archetype::reliable(), 1.0)]),
        ("spammer-third", vec![(Archetype::Reliable { accuracy: 0.8 }, 0.65), (Archetype::Spammer, 0.35)]),
        ("adversarial-quarter", vec![(Archetype::Reliable { accuracy: 0.8 }, 0.75), (Archetype::adversarial(), 0.25)]),
        ("pair-confusers", vec![(Archetype::reliable(), 0.6), (Archetype::pair_confuser(), 0.4)]),
        ("colluding-clique", vec![(Archetype::Reliable { accuracy: 0.8 }, 0.7), (Archetype::Colluding, 0.3)]),
        (
            "anarchy",
            vec![
                (Archetype::Reliable { accuracy: 0.75 }, 0.4),
                (Archetype::Spammer, 0.2),
                (Archetype::adversarial(), 0.2),
                (Archetype::pair_confuser(), 0.2),
            ],
        ),
    ]
}

/// A cartesian sweep over scenario knobs: every combination of mix,
/// redundancy range, pool size and imbalance applied to a base
/// configuration.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Base configuration supplying the task, sizes and seed.
    pub base: ScenarioConfig,
    /// Archetype mixes to sweep (name + mix).
    pub mixes: Vec<(String, Vec<(Archetype, f32)>)>,
    /// Redundancy ranges to sweep.
    pub redundancies: Vec<(usize, usize)>,
    /// Pool sizes to sweep.
    pub annotator_counts: Vec<usize>,
    /// Imbalance settings to sweep.
    pub majority_shares: Vec<f32>,
    /// Drift schedules to sweep (name + schedule).  Scenario names only
    /// grow a `/<name>` segment when the axis departs from the static
    /// default, so pre-temporal grids keep their historical names.
    pub drifts: Vec<(String, DriftSchedule)>,
    /// Difficulty models to sweep (name + model), same naming rule.
    pub difficulties: Vec<(String, DifficultyModel)>,
}

impl ScenarioGrid {
    /// A grid holding just the base configuration's axes.
    pub fn new(base: ScenarioConfig) -> Self {
        let mixes = vec![("base".to_string(), base.mix.clone())];
        let redundancies = vec![(base.min_labels_per_instance, base.max_labels_per_instance)];
        let annotator_counts = vec![base.num_annotators];
        let majority_shares = vec![base.majority_share];
        let drifts = vec![(base.drift.name().to_string(), base.drift)];
        let difficulties = vec![("flat".to_string(), base.difficulty)];
        Self { base, mixes, redundancies, annotator_counts, majority_shares, drifts, difficulties }
    }

    /// Sweeps the standard archetype mixes (see [`standard_mixes`]).
    pub fn with_standard_mixes(mut self) -> Self {
        self.mixes = standard_mixes().into_iter().map(|(n, m)| (n.to_string(), m)).collect();
        self
    }

    /// Sweeps the given redundancy ranges.
    pub fn with_redundancies(mut self, redundancies: Vec<(usize, usize)>) -> Self {
        self.redundancies = redundancies;
        self
    }

    /// Sweeps the given pool sizes.
    pub fn with_annotator_counts(mut self, counts: Vec<usize>) -> Self {
        self.annotator_counts = counts;
        self
    }

    /// Sweeps the given imbalance settings.
    pub fn with_majority_shares(mut self, shares: Vec<f32>) -> Self {
        self.majority_shares = shares;
        self
    }

    /// Sweeps the given drift schedules.
    pub fn with_drifts(mut self, drifts: Vec<(String, DriftSchedule)>) -> Self {
        self.drifts = drifts;
        self
    }

    /// Sweeps the given difficulty models.
    pub fn with_difficulties(mut self, difficulties: Vec<(String, DifficultyModel)>) -> Self {
        self.difficulties = difficulties;
        self
    }

    /// Materialises every configuration of the grid, with descriptive
    /// names like `sent/spammer-third/r3-5/j20/b0.50` (plus `/<drift>` /
    /// `/<difficulty>` segments when those axes are actually swept).
    pub fn configs(&self) -> Vec<ScenarioConfig> {
        let task_tag = match self.base.task {
            TaskKind::Classification => "sent",
            TaskKind::SequenceTagging => "ner",
        };
        // only name the temporal segments when the axis departs from the
        // static default, so pre-temporal grids keep their historical names
        let name_drift = self.drifts.len() > 1 || self.drifts.iter().any(|(_, d)| !d.is_static());
        let name_difficulty = self.difficulties.len() > 1 || self.difficulties.iter().any(|(_, d)| !d.is_degenerate());
        let mut out = Vec::new();
        for (mix_name, mix) in &self.mixes {
            for &(min_r, max_r) in &self.redundancies {
                for &count in &self.annotator_counts {
                    for &share in &self.majority_shares {
                        for (drift_name, drift) in &self.drifts {
                            for (difficulty_name, difficulty) in &self.difficulties {
                                let mut name = format!("{task_tag}/{mix_name}/r{min_r}-{max_r}/j{count}/b{share:.2}");
                                if name_drift {
                                    name.push_str(&format!("/{drift_name}"));
                                }
                                if name_difficulty {
                                    name.push_str(&format!("/{difficulty_name}"));
                                }
                                out.push(
                                    self.base
                                        .clone()
                                        .named(name)
                                        .with_mix(mix.clone())
                                        .with_redundancy(min_r, max_r)
                                        .with_annotators(count)
                                        .with_majority_share(share)
                                        .with_drift(*drift)
                                        .with_difficulty(*difficulty),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::crowd_label_accuracy;

    fn label_accuracy_of(dataset: &CrowdDataset, annotator: usize) -> Option<f32> {
        crate::metrics::annotator_accuracy(&dataset.train, annotator)
    }

    #[test]
    fn scenario_datasets_are_valid_for_both_tasks() {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            for (name, mix) in standard_mixes() {
                let config = ScenarioConfig::tiny(task).named(name).with_mix(mix);
                let dataset = generate_scenario(&config);
                assert!(dataset.validate().is_ok(), "{task:?}/{name} invalid: {:?}", dataset.validate());
                assert_eq!(dataset.task, task);
                assert_eq!(dataset.train.len(), config.train_size);
            }
        }
    }

    #[test]
    fn chunked_stream_reproduces_the_batch_generator_exactly() {
        // any chunk-size schedule — including ragged last chunks — must
        // concatenate to the batch corpus byte for byte, with identical
        // dev/test splits; drifted + difficulty configs exercise every
        // forked RNG stream
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            let config = ScenarioConfig::tiny(task)
                .with_mix(standard_mixes()[3].1.clone())
                .with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.8 })
                .with_difficulty(DifficultyModel::with_strength(0.4))
                .with_seed(41);
            let batch = generate_scenario(&config);
            for chunk_size in [1usize, 7, 64, usize::MAX] {
                let mut stream = ScenarioStream::new(&config);
                let mut train = Vec::new();
                while !stream.is_drained() {
                    let chunk = stream.next_train_chunk(chunk_size);
                    assert!(!chunk.is_empty(), "undrained stream must emit instances");
                    train.extend(chunk);
                }
                assert_eq!(stream.remaining_train(), 0);
                let streamed = stream.finish(train);
                assert_eq!(streamed.train, batch.train, "{task:?} chunk {chunk_size}: train split diverged");
                assert_eq!(streamed.dev, batch.dev, "{task:?} chunk {chunk_size}: dev split diverged");
                assert_eq!(streamed.test, batch.test, "{task:?} chunk {chunk_size}: test split diverged");
                assert_eq!(streamed.vocab, batch.vocab);
            }
        }
    }

    #[test]
    fn streamed_finish_without_train_keeps_eval_splits() {
        let config = ScenarioConfig::tiny(TaskKind::Classification);
        let batch = generate_scenario(&config);
        let mut stream = ScenarioStream::new(&config);
        while !stream.is_drained() {
            stream.next_train_chunk(16); // consumed on the fly and dropped
        }
        let shell = stream.finish(Vec::new());
        assert!(shell.train.is_empty());
        assert_eq!(shell.dev, batch.dev);
        assert_eq!(shell.test, batch.test);
    }

    #[test]
    #[should_panic(expected = "not yet generated")]
    fn finishing_an_undrained_stream_panics() {
        let stream = ScenarioStream::new(&ScenarioConfig::tiny(TaskKind::Classification));
        let _ = stream.finish(Vec::new());
    }

    #[test]
    fn generation_is_reproducible_and_seed_sensitive() {
        let config = ScenarioConfig::tiny(TaskKind::Classification).with_mix(standard_mixes()[5].1.clone());
        let a = generate_scenario(&config);
        let b = generate_scenario(&config);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = generate_scenario(&config.clone().with_seed(999));
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn spammers_carry_no_signal_and_reliables_do() {
        let config = ScenarioConfig::classification("half-spam")
            .with_mix(vec![(Archetype::Reliable { accuracy: 0.9 }, 0.5), (Archetype::Spammer, 0.5)])
            .with_redundancy(6, 8)
            .with_annotators(12)
            .with_propensity(PropensityProfile::Uniform);
        let dataset = generate_scenario(&config);
        let pool = scenario_pool_of(&config);
        let mut spammer_acc = Vec::new();
        let mut reliable_acc = Vec::new();
        for (a, archetype) in pool.archetypes.iter().enumerate() {
            if let Some(acc) = label_accuracy_of(&dataset, a) {
                match archetype {
                    Archetype::Spammer => spammer_acc.push(acc),
                    Archetype::Reliable { .. } => reliable_acc.push(acc),
                    _ => {}
                }
            }
        }
        assert!(!spammer_acc.is_empty() && !reliable_acc.is_empty());
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!((mean(&spammer_acc) - 0.5).abs() < 0.1, "spammers at chance, got {}", mean(&spammer_acc));
        assert!(mean(&reliable_acc) > 0.8, "reliables accurate, got {}", mean(&reliable_acc));
    }

    /// Rebuilds the pool a config would generate (same RNG position).
    fn scenario_pool_of(config: &ScenarioConfig) -> ScenarioPool {
        // the public accessor replays generate_scenario's fork discipline,
        // so the archetypes seen here are exactly the dataset's
        scenario_pool(config)
    }

    #[test]
    fn adversaries_are_anti_correlated() {
        let config = ScenarioConfig::classification("adv")
            .with_mix(vec![(Archetype::Adversarial { flip: 0.9 }, 1.0)])
            .with_redundancy(4, 4)
            .with_annotators(8)
            .with_propensity(PropensityProfile::Uniform);
        let dataset = generate_scenario(&config);
        let acc = crowd_label_accuracy(&dataset);
        assert!(acc < 0.2, "adversarial crowd should be mostly wrong, got {acc}");
    }

    #[test]
    fn pair_confuser_swaps_only_the_pair_on_tagging() {
        let config = ScenarioConfig::tagging("pair")
            .with_mix(vec![(Archetype::PairConfuser { class_a: 0, class_b: 1, swap_prob: 1.0 }, 1.0)])
            .with_redundancy(2, 2)
            .with_annotators(4)
            .with_sizes(40, 5, 5);
        let dataset = generate_scenario(&config);
        for inst in &dataset.train {
            let gold = gold_spans(&inst.gold);
            for cl in &inst.crowd_labels {
                let noisy = gold_spans(&cl.labels);
                assert_eq!(gold.len(), noisy.len(), "span structure preserved");
                for ((gs, ge, gt), (ns, ne, nt)) in gold.iter().zip(&noisy) {
                    assert_eq!((gs, ge), (ns, ne), "boundaries preserved");
                    let expected = match gt {
                        0 => 1,
                        1 => 0,
                        other => *other,
                    };
                    assert_eq!(*nt, expected, "PER<->LOC swapped, others untouched");
                }
            }
        }
    }

    #[test]
    fn colluding_followers_copy_the_leader_stream() {
        let config = ScenarioConfig::classification("collusion")
            .with_mix(vec![(Archetype::Colluding, 1.0)])
            .with_redundancy(6, 6)
            .with_annotators(6)
            .with_propensity(PropensityProfile::Uniform)
            .with_sizes(50, 5, 5);
        let dataset = generate_scenario(&config);
        for inst in &dataset.train {
            // redundancy == pool size: the whole clique labels every instance
            assert_eq!(inst.crowd_labels.len(), 6);
            let first = &inst.crowd_labels[0].labels;
            for cl in &inst.crowd_labels {
                assert_eq!(&cl.labels, first, "clique members must agree exactly");
            }
        }
    }

    #[test]
    fn long_tail_propensity_is_skewed_and_uniform_is_not() {
        let mut rng = TensorRng::seed_from_u64(3);
        let uniform = PropensityProfile::Uniform.weights(50, &mut rng);
        assert!(uniform.iter().all(|&w| (w - 1.0).abs() < 1e-6));
        let tail = PropensityProfile::LongTail.weights(200, &mut rng);
        let max = tail.iter().cloned().fold(0.0f32, f32::max);
        let mean = tail.iter().sum::<f32>() / tail.len() as f32;
        assert!(max > 4.0 * mean, "long tail should have dominant annotators: max {max}, mean {mean}");
    }

    #[test]
    fn class_imbalance_shifts_the_gold_prior() {
        let config = ScenarioConfig::classification("skew").with_majority_share(0.9).with_sizes(400, 50, 50);
        let dataset = generate_scenario(&config);
        let zeros = dataset.train.iter().filter(|i| i.gold[0] == 0).count();
        let share = zeros as f32 / dataset.train.len() as f32;
        assert!(share > 0.8, "majority share 0.9 should dominate, got {share}");

        let ner = ScenarioConfig::tagging("skew-ner").with_majority_share(0.85).with_sizes(200, 20, 20);
        let dataset = generate_scenario(&ner);
        let mut per_counts = 0usize;
        let mut total = 0usize;
        for inst in &dataset.train {
            for (_, _, ty) in gold_spans(&inst.gold) {
                total += 1;
                if ty == 0 {
                    per_counts += 1;
                }
            }
        }
        assert!(per_counts as f32 / total as f32 > 0.6, "type 0 should dominate: {per_counts}/{total}");
    }

    #[test]
    fn largest_remainder_counts_sum_to_total() {
        let mix = vec![(Archetype::reliable(), 0.5), (Archetype::Spammer, 0.3), (Archetype::adversarial(), 0.2)];
        for total in [1usize, 3, 7, 10, 23] {
            let counts = largest_remainder_counts(&mix, total);
            assert_eq!(counts.iter().sum::<usize>(), total, "total {total}: {counts:?}");
        }
        // a dominant fraction gets the floor share
        let counts = largest_remainder_counts(&mix, 10);
        assert_eq!(counts[0], 5);
    }

    #[test]
    fn grid_materialises_the_cartesian_product() {
        let grid = ScenarioGrid::new(ScenarioConfig::tiny(TaskKind::Classification))
            .with_standard_mixes()
            .with_redundancies(vec![(1, 1), (3, 5)])
            .with_majority_shares(vec![0.5, 0.8]);
        let configs = grid.configs();
        assert_eq!(configs.len(), 6 * 2 * 2);
        let names: std::collections::BTreeSet<_> = configs.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), configs.len(), "grid names must be unique");
        assert!(names.iter().all(|n| n.starts_with("sent/")));
    }

    #[test]
    fn content_hash_ignores_the_name_and_tracks_every_knob() {
        let base = ScenarioConfig::tiny(TaskKind::Classification);
        assert_eq!(base.content_hash(), base.clone().named("other-label").content_hash());
        let variants = [
            base.clone().with_seed(999),
            base.clone().with_annotators(9),
            base.clone().with_redundancy(1, 1),
            base.clone().with_majority_share(0.9),
            base.clone().with_propensity(PropensityProfile::Uniform),
            base.clone().with_mix(vec![(Archetype::Spammer, 1.0)]),
            base.clone().with_mix(vec![(Archetype::Reliable { accuracy: 0.7 }, 1.0)]),
            base.clone().with_sizes(61, 20, 20),
            ScenarioConfig::tiny(TaskKind::SequenceTagging).named("tiny"),
        ];
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(base.content_hash(), variant.content_hash(), "variant {i} should hash differently");
        }
    }

    #[test]
    fn scenario_cache_shares_equal_configs() {
        let cache = ScenarioCache::new();
        assert!(cache.is_empty());
        let config = ScenarioConfig::tiny(TaskKind::Classification);
        let a = cache.get_or_generate(&config);
        let b = cache.get_or_generate(&config.clone().named("alias"));
        assert_eq!(cache.len(), 1, "same content must share one generation");
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.train, generate_scenario(&config).train, "cached dataset equals direct generation");
        let c = cache.get_or_generate(&config.with_seed(999));
        assert_eq!(cache.len(), 2);
        assert_ne!(c.train, a.train);
    }

    #[test]
    fn degenerate_configs_generate_valid_datasets() {
        // single annotator, redundancy 1, tiny vocabulary
        let config =
            ScenarioConfig::classification("degenerate").with_annotators(1).with_redundancy(1, 1).with_sizes(10, 4, 4);
        let config = ScenarioConfig { filler_vocab: 1, ..config };
        let dataset = generate_scenario(&config);
        assert!(dataset.validate().is_ok());
        assert!(dataset.train.iter().all(|i| i.num_annotations() == 1));
    }

    // -- temporal axes -----------------------------------------------------

    #[test]
    fn drift_rate_zero_is_bitwise_identical_to_static() {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            let base = ScenarioConfig::tiny(task).with_mix(standard_mixes()[1].1.clone());
            let reference = generate_scenario(&base);
            for drift in [
                DriftSchedule::Static,
                DriftSchedule::LinearFatigue { rate: 0.0 },
                DriftSchedule::StepChange { at: 0.3, level: 0.0 },
                DriftSchedule::LearningCurve { rate: 0.0 },
            ] {
                let drifted = generate_scenario(&base.clone().with_drift(drift));
                assert_eq!(reference.train, drifted.train, "{task:?}/{drift:?} must be bitwise static");
                assert_eq!(reference.dev, drifted.dev);
                assert_eq!(reference.test, drifted.test);
            }
        }
    }

    #[test]
    fn degenerate_difficulty_is_bitwise_identical_to_static() {
        for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
            let base = ScenarioConfig::tiny(task);
            let reference = generate_scenario(&base);
            for concentration in [0.25, 1.0, 8.0] {
                let config = base.clone().with_difficulty(DifficultyModel { strength: 0.0, concentration });
                let degenerate = generate_scenario(&config);
                assert_eq!(reference.train, degenerate.train, "{task:?}/c{concentration} must be bitwise static");
            }
        }
    }

    /// Crowd-label accuracy over an instance-index range of the train split.
    fn range_accuracy(dataset: &CrowdDataset, range: std::ops::Range<usize>) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for inst in &dataset.train[range] {
            for cl in &inst.crowd_labels {
                correct += cl.labels.iter().zip(&inst.gold).filter(|(a, b)| a == b).count();
                total += inst.gold.len();
            }
        }
        correct as f32 / total.max(1) as f32
    }

    #[test]
    fn fatigue_degrades_the_late_stream_and_learning_the_early_one() {
        let base = ScenarioConfig::classification("drift")
            .with_sizes(300, 10, 10)
            .with_propensity(PropensityProfile::Uniform)
            .with_redundancy(4, 4)
            .with_annotators(8);
        let half = 150;
        let fatigued = generate_scenario(&base.clone().with_drift(DriftSchedule::LinearFatigue { rate: 0.9 }));
        let early = range_accuracy(&fatigued, 0..half);
        let late = range_accuracy(&fatigued, half..300);
        assert!(early > late + 0.1, "fatigue must degrade the late stream: early {early}, late {late}");

        let learning = generate_scenario(&base.with_drift(DriftSchedule::LearningCurve { rate: 0.9 }));
        let early = range_accuracy(&learning, 0..half);
        let late = range_accuracy(&learning, half..300);
        assert!(late > early + 0.1, "a learning curve must improve the late stream: early {early}, late {late}");
    }

    #[test]
    fn step_change_switches_abruptly_at_the_breakpoint() {
        let config = ScenarioConfig::classification("step")
            .with_sizes(400, 10, 10)
            .with_propensity(PropensityProfile::Uniform)
            .with_redundancy(4, 4)
            .with_annotators(8)
            .with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.95 });
        let dataset = generate_scenario(&config);
        let before = range_accuracy(&dataset, 0..160);
        let after = range_accuracy(&dataset, 240..400);
        assert!(before > 0.8, "pre-break stream is clean: {before}");
        assert!(after < 0.65, "post-break stream is near-spam: {after}");
    }

    #[test]
    fn difficulty_conditioning_correlates_errors_across_annotators() {
        // per-instance error counts: difficulty conditioning concentrates
        // the errors of ALL annotators on the same (hard) instances, so the
        // variance of the per-instance error count is far above the
        // independent-error (static) case
        let base = ScenarioConfig::classification("difficulty")
            .with_sizes(400, 10, 10)
            .with_propensity(PropensityProfile::Uniform)
            .with_redundancy(10, 10)
            .with_annotators(10);
        let errors_per_instance = |dataset: &CrowdDataset| -> Vec<f32> {
            dataset
                .train
                .iter()
                .map(|inst| inst.crowd_labels.iter().filter(|cl| cl.labels != inst.gold).count() as f32)
                .collect()
        };
        let variance = |v: &[f32]| {
            let mean = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32
        };
        let static_errors = errors_per_instance(&generate_scenario(&base));
        let conditioned =
            generate_scenario(&base.with_difficulty(DifficultyModel { strength: 1.0, concentration: 1.0 }));
        let conditioned_errors = errors_per_instance(&conditioned);
        assert!(
            variance(&conditioned_errors) > 1.8 * variance(&static_errors),
            "difficulty conditioning must overdisperse per-instance errors: static {}, conditioned {}",
            variance(&static_errors),
            variance(&conditioned_errors)
        );
    }

    #[test]
    #[should_panic(expected = "drift rate must be a probability")]
    fn negative_drift_rate_is_rejected_with_a_real_message() {
        let config =
            ScenarioConfig::tiny(TaskKind::Classification).with_drift(DriftSchedule::LinearFatigue { rate: -0.5 });
        let _ = generate_scenario(&config);
    }

    #[test]
    #[should_panic(expected = "difficulty concentration must be positive")]
    fn zero_difficulty_concentration_is_rejected_with_a_real_message() {
        let config = ScenarioConfig::tiny(TaskKind::Classification)
            .with_difficulty(DifficultyModel { strength: 0.5, concentration: 0.0 });
        let _ = generate_scenario(&config);
    }

    #[test]
    fn content_hash_tracks_the_temporal_knobs() {
        let base = ScenarioConfig::tiny(TaskKind::Classification);
        let variants = [
            base.clone().with_drift(DriftSchedule::LinearFatigue { rate: 0.5 }),
            base.clone().with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.5 }),
            base.clone().with_drift(DriftSchedule::LearningCurve { rate: 0.5 }),
            base.clone().with_difficulty(DifficultyModel { strength: 0.5, concentration: 1.0 }),
            base.clone().with_difficulty(DifficultyModel { strength: 0.0, concentration: 2.0 }),
        ];
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(base.content_hash(), variant.content_hash(), "temporal variant {i} should hash differently");
        }
    }

    #[test]
    fn content_hash_tracks_the_route_plan() {
        use router::{PolicyKind, RoutePlan};
        let base = ScenarioConfig::tiny(TaskKind::Classification);
        let routed: Vec<ScenarioConfig> = PolicyKind::ALL
            .into_iter()
            .flat_map(|policy| {
                [0.6, 1.0].map(|budget_fraction| base.clone().with_route(RoutePlan::new(policy, budget_fraction)))
            })
            .collect();
        let mut hashes: Vec<u64> = routed.iter().map(ScenarioConfig::content_hash).collect();
        hashes.push(base.content_hash());
        let distinct = hashes.len();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            distinct,
            "every (policy, budget) route plan must hash distinctly from the static twin and each other"
        );
    }

    #[test]
    fn grid_names_temporal_segments_only_when_swept() {
        let base = ScenarioConfig::tiny(TaskKind::Classification);
        let plain = ScenarioGrid::new(base.clone()).configs();
        assert!(plain.iter().all(|c| !c.name.contains("static")), "static-only grids keep historical names");
        let swept = ScenarioGrid::new(base)
            .with_drifts(vec![
                ("static".to_string(), DriftSchedule::Static),
                ("step0.7".to_string(), DriftSchedule::StepChange { at: 0.5, level: 0.7 }),
            ])
            .with_difficulties(vec![
                ("flat".to_string(), DifficultyModel::default()),
                ("hard0.6".to_string(), DifficultyModel::with_strength(0.6)),
            ])
            .configs();
        assert_eq!(swept.len(), 4);
        let names: std::collections::BTreeSet<_> = swept.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 4, "temporal grid names must be unique: {names:?}");
        assert!(swept.iter().any(|c| c.name.ends_with("/step0.7/hard0.6")));
    }
}
