//! Propensity-weighted sampling — the selection primitives shared by
//! scenario **generation** and closed-loop **task routing**.
//!
//! The batch generator ([`crate::scenario::generate_scenario`]) and the
//! assignment policies in [`crate::scenario::router`] must provably draw
//! annotators through the same machinery: a policy that "prefers reliable
//! annotators" is only comparable to the static control if both resolve
//! their preferences with the identical weighted-without-replacement draw.
//! This module is that single implementation; [`crate::annotator`] and the
//! scenario pools re-export / delegate to it.
//!
//! Semantics: weights are unnormalised and non-negative; draws are without
//! replacement; once every remaining candidate has zero weight the
//! remaining picks fall back to a **uniform** draw over the not-yet-chosen
//! indices, so a request never produces duplicates and never comes up
//! short while candidates remain.
//!
//! ```
//! use lncl_crowd::sampling::select_weighted_distinct;
//! use lncl_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from_u64(7);
//! let picked = select_weighted_distinct(&[5.0, 0.1, 0.1, 0.1], 2, &mut rng);
//! assert_eq!(picked.len(), 2);
//! assert_ne!(picked[0], picked[1]);
//! ```

use lncl_tensor::TensorRng;

/// Selects `count` **distinct** indices from `0..weights.len()`, biased by
/// the (unnormalised, non-negative) `weights`.  Once every remaining
/// candidate has zero weight the remaining picks fall back to a uniform
/// draw over the not-yet-chosen indices, so the result always holds exactly
/// `min(count, weights.len())` distinct indices — a `count` larger than the
/// number of positive-weight candidates never produces duplicates.
///
/// This is the selection primitive behind
/// [`AnnotatorPool::select`](crate::annotator::AnnotatorPool::select), the
/// scenario pools in [`crate::scenario`], the NER generator's workload
/// sampling and the weighted assignment policies in
/// [`crate::scenario::router`].
pub fn select_weighted_distinct(weights: &[f32], count: usize, rng: &mut TensorRng) -> Vec<usize> {
    let count = count.min(weights.len());
    let mut remaining = weights.to_vec();
    let mut chosen = Vec::with_capacity(count);
    let uniform_over_open = |chosen: &[usize], rng: &mut TensorRng| {
        let open: Vec<usize> = (0..weights.len()).filter(|i| !chosen.contains(i)).collect();
        open[rng.usize_below(open.len())]
    };
    for _ in 0..count {
        let total: f32 = remaining.iter().sum();
        let idx = if total > 0.0 && total.is_finite() {
            let idx = rng.categorical(&remaining);
            // `categorical` can land on a zero-weight (already chosen) index
            // only in the measure-zero `uniform() == 0` edge case; re-draw
            // uniformly over the open indices so distinctness always holds.
            if remaining[idx] > 0.0 {
                idx
            } else {
                uniform_over_open(&chosen, rng)
            }
        } else {
            uniform_over_open(&chosen, rng)
        };
        chosen.push(idx);
        remaining[idx] = 0.0;
    }
    chosen
}

/// Draws **one** index biased by `weights` (uniform fallback when all
/// weights are zero); `None` only when `weights` is empty.  Equivalent to
/// `select_weighted_distinct(weights, 1, rng)` without the vector.
pub fn pick_weighted(weights: &[f32], rng: &mut TensorRng) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    Some(select_weighted_distinct(weights, 1, rng)[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_with_zero_propensity_tail_stays_distinct() {
        // only two annotators have positive propensity, yet five are asked
        // for: the remainder must come uniformly from the zero-weight pool
        // without duplicates.
        let mut rng = TensorRng::seed_from_u64(40);
        let weights = [3.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        for _ in 0..200 {
            let chosen = select_weighted_distinct(&weights, 5, &mut rng);
            let mut dedup = chosen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 5, "duplicates in {chosen:?}");
            assert!(chosen.contains(&0) && chosen.contains(&3), "positive-weight annotators always picked: {chosen:?}");
        }
    }

    #[test]
    fn select_all_zero_weights_is_uniform_and_distinct() {
        let mut rng = TensorRng::seed_from_u64(41);
        let mut seen = [0usize; 4];
        for _ in 0..400 {
            let chosen = select_weighted_distinct(&[0.0; 4], 2, &mut rng);
            let mut dedup = chosen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 2);
            for &c in &chosen {
                seen[c] += 1;
            }
        }
        // every index gets picked under the uniform fallback
        assert!(seen.iter().all(|&n| n > 50), "uniform fallback coverage: {seen:?}");
    }

    #[test]
    fn empty_weights_yield_empty_selection() {
        let mut rng = TensorRng::seed_from_u64(42);
        assert!(select_weighted_distinct(&[], 3, &mut rng).is_empty());
        assert_eq!(pick_weighted(&[], &mut rng), None);
    }

    #[test]
    fn single_candidate_is_always_picked_regardless_of_weight() {
        let mut rng = TensorRng::seed_from_u64(43);
        for weight in [2.5, 0.0, f32::NAN] {
            assert_eq!(select_weighted_distinct(&[weight], 1, &mut rng), vec![0]);
            assert_eq!(select_weighted_distinct(&[weight], 5, &mut rng), vec![0], "count is clamped to the candidates");
            assert_eq!(pick_weighted(&[weight], &mut rng), Some(0));
        }
    }

    #[test]
    fn nan_weight_falls_back_to_uniform_and_stays_distinct() {
        // a NaN weight poisons the total, so the guarded sum must route
        // every draw through the uniform fallback — never through
        // `categorical`, which would misbehave on a NaN mass
        let mut rng = TensorRng::seed_from_u64(44);
        let weights = [1.0, f32::NAN, 2.0, 0.0];
        let mut seen = [0usize; 4];
        for _ in 0..400 {
            let chosen = select_weighted_distinct(&weights, 3, &mut rng);
            let mut dedup = chosen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "duplicates in {chosen:?}");
            for &c in &chosen {
                seen[c] += 1;
            }
        }
        // the uniform fallback covers every index, including the NaN one
        assert!(seen.iter().all(|&n| n > 50), "uniform fallback coverage: {seen:?}");
    }

    #[test]
    fn pick_weighted_matches_single_selection() {
        let weights = [0.5, 4.0, 0.25];
        let mut a = TensorRng::seed_from_u64(17);
        let mut b = TensorRng::seed_from_u64(17);
        for _ in 0..50 {
            assert_eq!(pick_weighted(&weights, &mut a), Some(select_weighted_distinct(&weights, 1, &mut b)[0]));
        }
        assert_eq!(pick_weighted(&[], &mut a), None);
    }
}
