//! Binary wire codec for [`ScenarioConfig`] — the unit of work the
//! distributed sweep coordinator hands to workers.
//!
//! The container this workspace builds in has no crates.io access, so there
//! is no serde; this module hand-rolls a versioned, length-checked binary
//! encoding covering **every** knob that [`ScenarioConfig::content_hash`]
//! covers, plus the display `name` (the hash excludes it, but sweep reports
//! key quality rows by it, so the wire must carry it).  All floats travel
//! as IEEE-754 bit patterns, which makes `decode(encode(c)) == c` *bitwise*
//! — the property the distributed sweep's "merged report equals the serial
//! sweep" contract rests on, and the one
//! `crates/crowd/tests/wire_roundtrip.rs` asserts over seeded grids.
//!
//! Malformed input never panics: every way a frame can be wrong (truncated
//! buffer, trailing garbage, unknown enum tag, wrong version, non-UTF-8
//! name) maps to a typed [`WireError`], mirroring the typed-4xx contract of
//! `lncl_serve::http`.

use super::router::{PolicyKind, RoutePlan};
use super::{Archetype, DifficultyModel, DriftSchedule, PropensityProfile, ScenarioConfig};
use crate::data::TaskKind;

/// Version byte every encoded config starts with.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on an encoded scenario name, in bytes.
pub const MAX_NAME_BYTES: usize = 4096;

/// A buffer that could not be decoded into a [`ScenarioConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First byte is not a version this build understands.
    UnsupportedVersion(u8),
    /// Buffer ended before the named field was complete.
    Truncated {
        /// The field being read when the buffer ran out.
        field: &'static str,
    },
    /// Bytes left over after a complete config was decoded.
    Trailing(usize),
    /// An enum tag byte outside the known range.
    BadTag {
        /// The field carrying the tag.
        field: &'static str,
        /// The offending tag value.
        value: u8,
    },
    /// The scenario name was not valid UTF-8.
    BadName,
    /// A declared length exceeds its bound (name length, mix entries).
    Oversized {
        /// The field carrying the length.
        field: &'static str,
        /// The declared length.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})"),
            WireError::Truncated { field } => write!(f, "buffer truncated while reading {field}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after a complete config"),
            WireError::BadTag { field, value } => write!(f, "unknown {field} tag {value}"),
            WireError::BadName => write!(f, "scenario name is not valid UTF-8"),
            WireError::Oversized { field, len } => write!(f, "{field} length {len} exceeds its bound"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a configuration into its versioned wire form.
pub fn encode_config(config: &ScenarioConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + config.name.len());
    out.push(WIRE_VERSION);
    let name = config.name.as_bytes();
    assert!(name.len() <= MAX_NAME_BYTES, "scenario name of {} bytes exceeds {MAX_NAME_BYTES}", name.len());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.push(match config.task {
        TaskKind::Classification => 0,
        TaskKind::SequenceTagging => 1,
    });
    for size in [
        config.train_size,
        config.dev_size,
        config.test_size,
        config.num_annotators,
        config.min_labels_per_instance,
        config.max_labels_per_instance,
        config.filler_vocab,
    ] {
        out.extend_from_slice(&(size as u64).to_le_bytes());
    }
    out.extend_from_slice(&(config.mix.len() as u32).to_le_bytes());
    for (archetype, fraction) in &config.mix {
        // same (tag, three params) shape content_hash mixes in, so the two
        // stay in lockstep field-for-field
        let (tag, params): (u8, [u32; 3]) = match *archetype {
            Archetype::Reliable { accuracy } => (0, [accuracy.to_bits(), 0, 0]),
            Archetype::Spammer => (1, [0, 0, 0]),
            Archetype::Adversarial { flip } => (2, [flip.to_bits(), 0, 0]),
            Archetype::PairConfuser { class_a, class_b, swap_prob } => {
                (3, [class_a as u32, class_b as u32, swap_prob.to_bits()])
            }
            Archetype::Colluding => (4, [0, 0, 0]),
        };
        out.push(tag);
        for p in params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&fraction.to_bits().to_le_bytes());
    }
    out.push(match config.propensity {
        PropensityProfile::Uniform => 0,
        PropensityProfile::LongTail => 1,
    });
    out.extend_from_slice(&config.majority_share.to_bits().to_le_bytes());
    let (drift_tag, drift_params): (u8, [u32; 2]) = match config.drift {
        DriftSchedule::Static => (0, [0, 0]),
        DriftSchedule::LinearFatigue { rate } => (1, [rate.to_bits(), 0]),
        DriftSchedule::StepChange { at, level } => (2, [at.to_bits(), level.to_bits()]),
        DriftSchedule::LearningCurve { rate } => (3, [rate.to_bits(), 0]),
    };
    out.push(drift_tag);
    for p in drift_params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&config.difficulty.strength.to_bits().to_le_bytes());
    out.extend_from_slice(&config.difficulty.concentration.to_bits().to_le_bytes());
    match config.route {
        None => out.push(0),
        Some(plan) => {
            out.push(1);
            out.push(match plan.policy {
                PolicyKind::StaticRedundancy => 0,
                PolicyKind::UncertaintyRouting => 1,
                PolicyKind::SpamQuarantine => 2,
            });
            out.extend_from_slice(&plan.budget_fraction.to_bits().to_le_bytes());
        }
    }
    out.extend_from_slice(&config.seed.to_le_bytes());
    out
}

/// Bounded little-endian reader over the wire buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&end| end <= self.bytes.len());
        let Some(end) = end else {
            return Err(WireError::Truncated { field });
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().expect("8-byte slice")))
    }

    fn f32(&mut self, field: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32(field)?))
    }

    fn usize(&mut self, field: &'static str) -> Result<usize, WireError> {
        Ok(self.u64(field)? as usize)
    }
}

/// Decodes a wire buffer back into the configuration it was encoded from.
/// Bitwise inverse of [`encode_config`]; rejects anything else with a
/// typed [`WireError`].
pub fn decode_config(bytes: &[u8]) -> Result<ScenarioConfig, WireError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u8("version")?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let name_len = r.u32("name length")? as usize;
    if name_len > MAX_NAME_BYTES {
        return Err(WireError::Oversized { field: "name", len: name_len });
    }
    let name = String::from_utf8(r.take(name_len, "name")?.to_vec()).map_err(|_| WireError::BadName)?;
    let task = match r.u8("task")? {
        0 => TaskKind::Classification,
        1 => TaskKind::SequenceTagging,
        value => return Err(WireError::BadTag { field: "task", value }),
    };
    let train_size = r.usize("train_size")?;
    let dev_size = r.usize("dev_size")?;
    let test_size = r.usize("test_size")?;
    let num_annotators = r.usize("num_annotators")?;
    let min_labels_per_instance = r.usize("min_labels_per_instance")?;
    let max_labels_per_instance = r.usize("max_labels_per_instance")?;
    let filler_vocab = r.usize("filler_vocab")?;
    let mix_len = r.u32("mix length")? as usize;
    if mix_len > u16::MAX as usize {
        return Err(WireError::Oversized { field: "mix", len: mix_len });
    }
    let mut mix = Vec::with_capacity(mix_len);
    for _ in 0..mix_len {
        let tag = r.u8("archetype")?;
        let params = [r.u32("archetype param")?, r.u32("archetype param")?, r.u32("archetype param")?];
        let archetype = match tag {
            0 => Archetype::Reliable { accuracy: f32::from_bits(params[0]) },
            1 => Archetype::Spammer,
            2 => Archetype::Adversarial { flip: f32::from_bits(params[0]) },
            3 => Archetype::PairConfuser {
                class_a: params[0] as usize,
                class_b: params[1] as usize,
                swap_prob: f32::from_bits(params[2]),
            },
            4 => Archetype::Colluding,
            value => return Err(WireError::BadTag { field: "archetype", value }),
        };
        mix.push((archetype, r.f32("mix fraction")?));
    }
    let propensity = match r.u8("propensity")? {
        0 => PropensityProfile::Uniform,
        1 => PropensityProfile::LongTail,
        value => return Err(WireError::BadTag { field: "propensity", value }),
    };
    let majority_share = r.f32("majority_share")?;
    let drift_tag = r.u8("drift")?;
    let drift_params = [r.f32("drift param")?, r.f32("drift param")?];
    let drift = match drift_tag {
        0 => DriftSchedule::Static,
        1 => DriftSchedule::LinearFatigue { rate: drift_params[0] },
        2 => DriftSchedule::StepChange { at: drift_params[0], level: drift_params[1] },
        3 => DriftSchedule::LearningCurve { rate: drift_params[0] },
        value => return Err(WireError::BadTag { field: "drift", value }),
    };
    let difficulty =
        DifficultyModel { strength: r.f32("difficulty strength")?, concentration: r.f32("difficulty concentration")? };
    let route = match r.u8("route presence")? {
        0 => None,
        1 => {
            let policy = match r.u8("route policy")? {
                0 => PolicyKind::StaticRedundancy,
                1 => PolicyKind::UncertaintyRouting,
                2 => PolicyKind::SpamQuarantine,
                value => return Err(WireError::BadTag { field: "route policy", value }),
            };
            // bypass RoutePlan::new: the wire must round-trip whatever was
            // encoded, and validation belongs to the producer
            Some(RoutePlan { policy, budget_fraction: r.f32("route budget_fraction")? })
        }
        value => return Err(WireError::BadTag { field: "route presence", value }),
    };
    let seed = r.u64("seed")?;
    if r.pos != bytes.len() {
        return Err(WireError::Trailing(bytes.len() - r.pos));
    }
    Ok(ScenarioConfig {
        name,
        task,
        train_size,
        dev_size,
        test_size,
        num_annotators,
        min_labels_per_instance,
        max_labels_per_instance,
        mix,
        propensity,
        majority_share,
        filler_vocab,
        drift,
        difficulty,
        route,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioConfig {
        ScenarioConfig::classification("wire/sample")
            .with_mix(vec![(Archetype::reliable(), 0.7), (Archetype::Spammer, 0.3)])
            .with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.3 })
            .with_difficulty(DifficultyModel::with_strength(0.2))
            .with_route(RoutePlan::new(PolicyKind::UncertaintyRouting, 0.6))
            .with_seed(97)
    }

    #[test]
    fn round_trips_a_full_config() {
        let config = sample();
        let decoded = decode_config(&encode_config(&config)).unwrap();
        assert_eq!(decoded, config);
        assert_eq!(decoded.content_hash(), config.content_hash());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = encode_config(&sample());
        bytes[0] = WIRE_VERSION + 1;
        assert_eq!(decode_config(&bytes), Err(WireError::UnsupportedVersion(WIRE_VERSION + 1)));
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = encode_config(&sample());
        for len in 0..bytes.len() {
            match decode_config(&bytes[..len]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("truncation at {len} produced {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_config(&sample());
        bytes.extend_from_slice(&[0, 0, 0]);
        assert_eq!(decode_config(&bytes), Err(WireError::Trailing(3)));
    }

    #[test]
    fn rejects_unknown_tags() {
        let config = ScenarioConfig::tiny(crate::TaskKind::SequenceTagging);
        let clean = encode_config(&config);
        // task tag sits right after the version byte and the name block
        let task_at = 1 + 4 + config.name.len();
        let mut bytes = clean.clone();
        bytes[task_at] = 9;
        assert_eq!(decode_config(&bytes), Err(WireError::BadTag { field: "task", value: 9 }));
    }

    #[test]
    fn rejects_oversized_name_length() {
        let mut bytes = vec![WIRE_VERSION];
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_config(&bytes), Err(WireError::Oversized { field: "name", .. })));
    }
}
