//! Closed-loop adaptive task routing: assignment policies, label budgets
//! and the simulation driver that alternates routing with incremental
//! truth inference.
//!
//! The batch pipeline assumes a *fixed* label matrix: [`super::generate_scenario`]
//! decides up front who labels what, and estimators see the finished
//! dataset.  Real crowd platforms instead **choose** the next assignment
//! using what they have already learned — posterior entropy says which
//! instances are still uncertain, live annotator statistics say who is
//! worth asking.  This module closes that loop:
//!
//! * [`AssignmentPolicy`] — the routing strategy interface.  A policy
//!   plans the next batch of [`Assignment`]s from a [`RoutingView`]: the
//!   live [`StreamingTruth`] estimates plus the per-instance candidate
//!   sets.  Three built-ins:
//!   [`StaticRedundancy`] (the control: breadth-first replay of the batch
//!   generator's assignment), [`UncertaintyRouting`] (spend labels on
//!   high-entropy instances, routed to the highest-estimated-accuracy
//!   candidates, stop once an instance's posterior entropy is low) and
//!   [`SpamQuarantine`] (breadth-first coverage, but candidates whose live
//!   confusion estimate looks uniform are down-weighted in a shared
//!   [`crate::sampling`] draw).
//! * [`LabelBudget`] — explicit budget accounting; every revealed label
//!   costs exactly one unit and overspending is an error, so
//!   `labels collected == budget spent` always holds.
//! * [`run_closed_loop`] — the driver.  It treats the batch-generated
//!   dataset as the *label universe* (annotator `a`'s answer on instance
//!   `u` is fixed whether or not anyone asks) and alternates policy rounds
//!   with ingestion into [`StreamingTruth`], recording an
//!   accuracy-per-label-spent [`CurvePoint`] at each budget-fraction
//!   checkpoint.  Rounds never overshoot a pending checkpoint, and when
//!   the checkpoint thresholds land on the policies' round cadence (as in
//!   the bench sweep's families) the point at fraction `f` is bitwise the
//!   state a budget-`f` run measured at its end alone finishes in —
//!   checkpoints *between* drains would re-slice the rounds and shift what
//!   an adaptive policy sees.
//!
//! Everything is deterministic given the scenario seed: policies draw
//! randomness only from the driver's dedicated RNG stream, and two runs of
//! the same configuration produce identical assignment sequences and
//! curves.
//!
//! ```
//! use lncl_crowd::scenario::router::{run_route_plan, PolicyKind, RoutePlan};
//! use lncl_crowd::scenario::{generate_scenario, ScenarioConfig};
//! use lncl_crowd::TaskKind;
//!
//! let config = ScenarioConfig::tiny(TaskKind::Classification)
//!     .with_route(RoutePlan::new(PolicyKind::UncertaintyRouting, 0.6));
//! let dataset = generate_scenario(&config);
//! let outcome = run_route_plan(&config, &dataset, &[0.3, 0.6]);
//! assert_eq!(outcome.curve.len(), 2);
//! assert!(outcome.labels_spent() <= (0.6 * dataset.total_crowd_labels() as f32).ceil() as usize);
//! ```

use super::ScenarioConfig;
use crate::data::{CrowdDataset, CrowdLabel};
use crate::sampling::pick_weighted;
use crate::truth::streaming::{StreamingConfig, StreamingTruth};
use lncl_tensor::TensorRng;
use std::ops::Range;

/// Salt for the router's RNG stream, so closed-loop draws never collide
/// with the four generation streams forked from the same scenario seed.
const ROUTER_RNG_SALT: u64 = 0x724f_5554_4552_0001;

/// Budget fractions the driver reports curve points at when the caller has
/// no preference.
pub const DEFAULT_CHECKPOINTS: [f32; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// One assignment request: annotator `annotator` labels train instance
/// `instance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Train-split instance index.
    pub instance: usize,
    /// Annotator index in the scenario pool.
    pub annotator: usize,
}

/// Explicit label-budget accounting: `total` may never be exceeded and
/// every collected label costs exactly one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelBudget {
    total: usize,
    spent: usize,
}

impl LabelBudget {
    /// A fresh budget of `total` labels.
    pub fn new(total: usize) -> Self {
        Self { total, spent: 0 }
    }

    /// The budget ceiling.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Labels spent so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// Labels still available.
    pub fn remaining(&self) -> usize {
        self.total - self.spent
    }

    /// True once nothing is left to spend.
    pub fn is_exhausted(&self) -> bool {
        self.spent >= self.total
    }

    /// Spends `count` labels; overspending is an error and spends nothing.
    pub fn spend(&mut self, count: usize) -> Result<(), String> {
        if count > self.remaining() {
            return Err(format!("cannot spend {count} labels: {} of {} remaining", self.remaining(), self.total));
        }
        self.spent += count;
        Ok(())
    }
}

/// The live state a policy routes on: the incremental estimator plus the
/// candidate structure of the collection problem.  Built by
/// [`run_closed_loop`] from a scenario dataset, and by the serving layer
/// from its interned label stream — policies cannot tell the difference.
pub struct RoutingView<'a> {
    /// The incremental estimator (posteriors, entropies, annotator stats).
    pub truth: &'a StreamingTruth,
    /// Per instance: candidate annotators still available (not yet asked),
    /// in a stable preference order.
    pub candidates: &'a [Vec<usize>],
    /// Per instance: labels already collected.
    pub collected: &'a [usize],
    /// Per instance: the estimator unit ids the instance spans
    /// (classification: one unit; tagging: one per token).
    pub units: &'a [Range<usize>],
}

impl RoutingView<'_> {
    /// Number of instances under collection.
    pub fn num_instances(&self) -> usize {
        self.candidates.len()
    }

    /// Mean posterior entropy over the instance's units; maximal
    /// (`ln K`) while the instance has no labels at all.
    pub fn entropy(&self, instance: usize) -> f32 {
        let units = &self.units[instance];
        let k = self.truth.config().num_classes;
        let max_entropy = (k as f32).ln();
        if units.is_empty() {
            return max_entropy;
        }
        let sum: f32 = units.clone().map(|u| self.truth.consensus(u).map(|c| c.entropy).unwrap_or(max_entropy)).sum();
        sum / units.len() as f32
    }

    /// Estimated probability of a correct label from `annotator`
    /// (chance level `1/K` before any of their labels arrived).
    pub fn reliability(&self, annotator: usize) -> f32 {
        let k = self.truth.config().num_classes;
        self.truth.annotator(annotator).map(|s| s.reliability).unwrap_or(1.0 / k as f32)
    }

    /// How far `annotator`'s live confusion estimate is from the uniform
    /// (spammer) matrix, normalised to `[0, 1]`: `0` = perfectly uniform
    /// (or never seen), `1` = deterministic rows.
    pub fn spam_distance(&self, annotator: usize) -> f32 {
        let Some(stat) = self.truth.annotator(annotator) else {
            return 0.0;
        };
        let k = stat.confusion.rows();
        let uniform = 1.0 / k as f32;
        let mut deviation = 0.0f32;
        for r in 0..k {
            for &p in stat.confusion.row(r) {
                deviation += (p - uniform).abs();
            }
        }
        let mean = deviation / (k * k) as f32;
        // a deterministic row deviates by 2 (K - 1) / K in total, i.e.
        // 2 (K - 1) / K^2 on average — the normaliser to [0, 1]
        (mean * (k * k) as f32 / (2.0 * (k as f32 - 1.0))).clamp(0.0, 1.0)
    }
}

/// A routing strategy: plans the next batch of assignments from the live
/// estimates.  Implementations must be deterministic given the driver RNG
/// — no clocks, no global state.
pub trait AssignmentPolicy {
    /// Stable policy name (used as the method column of quality rows).
    fn name(&self) -> &'static str;

    /// Plans at most `limit` assignments for the next round, each naming a
    /// pair still present in `view.candidates`.  Returning an empty vector
    /// ends collection with the remaining budget unspent.
    fn next_round(&mut self, view: &RoutingView<'_>, limit: usize, rng: &mut TensorRng) -> Vec<Assignment>;
}

/// The control policy: today's batch behaviour under a budget.  Reveals
/// the batch generator's assignment breadth-first — every instance reaches
/// redundancy depth `d` before any instance starts depth `d + 1`, in
/// instance order — so the full budget reproduces the batch dataset
/// exactly and a partial budget is uniform redundancy truncation.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticRedundancy;

impl AssignmentPolicy for StaticRedundancy {
    fn name(&self) -> &'static str {
        "static-redundancy"
    }

    fn next_round(&mut self, view: &RoutingView<'_>, limit: usize, _rng: &mut TensorRng) -> Vec<Assignment> {
        let open = (0..view.num_instances()).filter(|&i| !view.candidates[i].is_empty());
        let Some(depth) = open.clone().map(|i| view.collected[i]).min() else {
            return Vec::new();
        };
        open.filter(|&i| view.collected[i] == depth)
            .take(limit)
            .map(|i| Assignment { instance: i, annotator: view.candidates[i][0] })
            .collect()
    }
}

/// Entropy-driven routing: spend the budget where the posterior is still
/// uncertain, ask the most reliable candidate available, and stop
/// collecting for an instance once its entropy falls under
/// `entropy_stop` — freeing budget for harder instances.  Greedy by
/// design: an instance whose early labels agree (for example two colluding
/// spammers) can be retired *confidently wrong*, which is exactly the
/// failure mode that shows up at generous budgets.
#[derive(Debug, Clone, Copy)]
pub struct UncertaintyRouting {
    /// Stop collecting for an instance once its mean posterior entropy
    /// (nats) is at or below this.
    pub entropy_stop: f32,
    /// Hard per-instance label cap, uncertainty notwithstanding.
    pub max_per_instance: usize,
    /// Largest round the policy plans; smaller rounds mean the estimator
    /// is drained (and the entropies re-scored) more often.
    pub round_size: usize,
}

impl Default for UncertaintyRouting {
    fn default() -> Self {
        Self { entropy_stop: 0.20, max_per_instance: 8, round_size: 32 }
    }
}

impl AssignmentPolicy for UncertaintyRouting {
    fn name(&self) -> &'static str {
        "uncertainty-routing"
    }

    fn next_round(&mut self, view: &RoutingView<'_>, limit: usize, _rng: &mut TensorRng) -> Vec<Assignment> {
        let limit = limit.min(self.round_size.max(1));
        let mut scored: Vec<(f32, usize)> = (0..view.num_instances())
            .filter(|&i| !view.candidates[i].is_empty() && view.collected[i] < self.max_per_instance)
            .map(|i| (view.entropy(i), i))
            .filter(|&(entropy, i)| view.collected[i] == 0 || entropy > self.entropy_stop)
            .collect();
        // most uncertain first; ties resolve by instance id so the order
        // (and therefore the run) is deterministic
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(limit)
            .map(|(_, i)| {
                let mut best = view.candidates[i][0];
                for &candidate in &view.candidates[i][1..] {
                    if view.reliability(candidate) > view.reliability(best) {
                        best = candidate;
                    }
                }
                Assignment { instance: i, annotator: best }
            })
            .collect()
    }
}

/// Breadth-first coverage (like [`StaticRedundancy`]) that down-weights
/// candidates whose live confusion estimate looks uniform: each slot is
/// drawn through [`crate::sampling::pick_weighted`] with weight
/// [`RoutingView::spam_distance`]² (squared to sharpen a noisy early
/// signal), floored at `floor` so quarantined annotators stay reachable,
/// and unseen annotators get the optimistic `exploration` weight so the
/// quarantine is earned, not assumed.
#[derive(Debug, Clone, Copy)]
pub struct SpamQuarantine {
    /// Minimum selection weight of a suspected spammer.
    pub floor: f32,
    /// Selection weight of an annotator with no labels yet.
    pub exploration: f32,
    /// Largest round the policy plans; smaller rounds mean the live
    /// confusion estimates are refreshed more often.
    pub round_size: usize,
}

impl Default for SpamQuarantine {
    fn default() -> Self {
        Self { floor: 0.02, exploration: 0.25, round_size: 32 }
    }
}

impl AssignmentPolicy for SpamQuarantine {
    fn name(&self) -> &'static str {
        "spam-quarantine"
    }

    fn next_round(&mut self, view: &RoutingView<'_>, limit: usize, rng: &mut TensorRng) -> Vec<Assignment> {
        let limit = limit.min(self.round_size.max(1));
        let open = (0..view.num_instances()).filter(|&i| !view.candidates[i].is_empty());
        let Some(depth) = open.clone().map(|i| view.collected[i]).min() else {
            return Vec::new();
        };
        open.filter(|&i| view.collected[i] == depth)
            .take(limit)
            .map(|i| {
                let weights: Vec<f32> = view.candidates[i]
                    .iter()
                    .map(|&a| {
                        if view.truth.annotator(a).is_none() {
                            self.exploration
                        } else {
                            let distance = view.spam_distance(a);
                            (distance * distance).max(self.floor)
                        }
                    })
                    .collect();
                let slot = pick_weighted(&weights, rng).expect("non-empty candidate set");
                Assignment { instance: i, annotator: view.candidates[i][slot] }
            })
            .collect()
    }
}

/// Built-in policy identifiers — the serializable face of the policies,
/// used by [`RoutePlan`], the serve configuration and bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`StaticRedundancy`].
    StaticRedundancy,
    /// [`UncertaintyRouting`] with default parameters.
    UncertaintyRouting,
    /// [`SpamQuarantine`] with default parameters.
    SpamQuarantine,
}

impl PolicyKind {
    /// All built-in policies, control first.
    pub const ALL: [PolicyKind; 3] =
        [PolicyKind::StaticRedundancy, PolicyKind::UncertaintyRouting, PolicyKind::SpamQuarantine];

    /// The stable name (matches the built policy's
    /// [`AssignmentPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::StaticRedundancy => "static-redundancy",
            PolicyKind::UncertaintyRouting => "uncertainty-routing",
            PolicyKind::SpamQuarantine => "spam-quarantine",
        }
    }

    /// Parses a policy name; accepts the full name and the short aliases
    /// `static` / `uncertainty` / `quarantine`.
    pub fn parse(raw: &str) -> Option<PolicyKind> {
        match raw {
            "static" | "static-redundancy" => Some(PolicyKind::StaticRedundancy),
            "uncertainty" | "uncertainty-routing" => Some(PolicyKind::UncertaintyRouting),
            "quarantine" | "spam-quarantine" => Some(PolicyKind::SpamQuarantine),
            _ => None,
        }
    }

    /// Builds the policy with default parameters.
    pub fn build(&self) -> Box<dyn AssignmentPolicy> {
        match self {
            PolicyKind::StaticRedundancy => Box::new(StaticRedundancy),
            PolicyKind::UncertaintyRouting => Box::new(UncertaintyRouting::default()),
            PolicyKind::SpamQuarantine => Box::new(SpamQuarantine::default()),
        }
    }
}

/// A closed-loop collection plan: which policy reveals labels, and how
/// large the label budget is as a fraction of the static label count.
/// Carried by [`ScenarioConfig::route`] and covered by
/// [`ScenarioConfig::content_hash`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePlan {
    /// The assignment policy.
    pub policy: PolicyKind,
    /// Budget as a fraction of the batch dataset's label count, in
    /// `(0, 1]`.
    pub budget_fraction: f32,
}

impl RoutePlan {
    /// A plan; `budget_fraction` must lie in `(0, 1]`.
    pub fn new(policy: PolicyKind, budget_fraction: f32) -> Self {
        let plan = Self { policy, budget_fraction };
        plan.validate().expect("invalid route plan");
        plan
    }

    /// Checks the budget fraction.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.budget_fraction > 0.0 && self.budget_fraction <= 1.0 && self.budget_fraction.is_finite()) {
            return Err(format!("budget_fraction must be in (0, 1], got {}", self.budget_fraction));
        }
        Ok(())
    }

    /// The concrete budget for a dataset: `ceil(fraction * labels)`.
    pub fn budget_for(&self, dataset: &CrowdDataset) -> LabelBudget {
        LabelBudget::new((self.budget_fraction * dataset.total_crowd_labels() as f32).ceil() as usize)
    }
}

/// One point of the accuracy-per-label-spent curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The nominal budget fraction of the checkpoint.
    pub budget_fraction: f32,
    /// Labels actually spent when the point was recorded (equals the
    /// fraction of the budget unless the policy stopped early).
    pub labels_spent: usize,
    /// Consensus accuracy against gold over every train unit (units the
    /// estimator never saw count as class-0 guesses).
    pub accuracy: f32,
    /// Mean posterior entropy over every train unit.
    pub mean_entropy: f32,
}

/// What a closed-loop run produced.
#[derive(Debug, Clone)]
pub struct ClosedLoopOutcome {
    /// Name of the policy that ran.
    pub policy: &'static str,
    /// Accuracy-per-label-spent curve, one point per requested checkpoint
    /// (early-stopping policies repeat their final state).
    pub curve: Vec<CurvePoint>,
    /// Final budget state; `spent()` always equals the number of labels
    /// collected.
    pub budget: LabelBudget,
    /// Final consensus accuracy (same measure as the curve).
    pub accuracy: f32,
    /// Every assignment in reveal order (the determinism witness).
    pub assignments: Vec<Assignment>,
    /// The labels revealed per train instance, in reveal order.
    pub collected: Vec<Vec<CrowdLabel>>,
}

impl ClosedLoopOutcome {
    /// Labels collected == budget spent (the accounting invariant).
    pub fn labels_spent(&self) -> usize {
        self.budget.spent()
    }
}

/// Runs the closed loop: `policy` spends `budget` revealing labels of
/// `dataset` (the label universe), each revealed label is ingested into a
/// fresh [`StreamingTruth`] built from `streaming`, and a [`CurvePoint`]
/// is recorded at every budget fraction in `checkpoints`.
///
/// The driver enforces the contract: assignments must name available
/// candidate pairs, a round never exceeds the policy's `limit`, rounds
/// never cross a pending checkpoint (so a checkpoint state equals the
/// corresponding smaller-budget run whenever the threshold falls on the
/// policy's round cadence), and the estimator's dirty backlog is drained
/// after every round so the next round routes on current estimates.
/// Deterministic given `seed`.
pub fn run_closed_loop(
    dataset: &CrowdDataset,
    policy: &mut dyn AssignmentPolicy,
    mut budget: LabelBudget,
    streaming: StreamingConfig,
    checkpoints: &[f32],
    seed: u64,
) -> ClosedLoopOutcome {
    assert_eq!(streaming.num_classes, dataset.num_classes, "estimator classes must match the dataset");
    let mut checkpoints: Vec<f32> = checkpoints.to_vec();
    checkpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite checkpoint fractions"));
    checkpoints.dedup();
    assert!(checkpoints.iter().all(|&f| f > 0.0 && f <= 1.0), "checkpoints must be budget fractions in (0, 1]");
    let thresholds: Vec<usize> =
        checkpoints.iter().map(|&f| ((f * budget.total() as f32).ceil() as usize).min(budget.total())).collect();

    // the label universe: per instance, the batch generator's labels in
    // stored order, the candidate annotators, and the flattened unit span
    let mut labels: Vec<&[CrowdLabel]> = Vec::with_capacity(dataset.train.len());
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(dataset.train.len());
    let mut units: Vec<Range<usize>> = Vec::with_capacity(dataset.train.len());
    let mut offset = 0usize;
    for instance in &dataset.train {
        labels.push(&instance.crowd_labels);
        candidates.push(instance.crowd_labels.iter().map(|cl| cl.annotator).collect());
        units.push(offset..offset + instance.gold.len());
        offset += instance.gold.len();
    }
    let total_units = offset;

    let mut truth = StreamingTruth::new(streaming);
    let mut rng = TensorRng::seed_from_u64(seed ^ ROUTER_RNG_SALT);
    let mut collected_counts = vec![0usize; dataset.train.len()];
    let mut collected: Vec<Vec<CrowdLabel>> = vec![Vec::new(); dataset.train.len()];
    let mut assignments = Vec::new();
    let mut curve = Vec::with_capacity(checkpoints.len());
    let mut next_checkpoint = 0usize;

    let measure = |truth: &StreamingTruth, fraction: f32, spent: usize| -> CurvePoint {
        let k = dataset.num_classes as f32;
        let mut correct = 0usize;
        let mut entropy_sum = 0.0f32;
        for (instance, span) in dataset.train.iter().zip(&units) {
            for (t, &gold) in instance.gold.iter().enumerate() {
                match truth.consensus(span.start + t) {
                    Some(consensus) => {
                        entropy_sum += consensus.entropy;
                        correct += usize::from(consensus.hard == gold);
                    }
                    None => {
                        entropy_sum += k.ln();
                        correct += usize::from(gold == 0);
                    }
                }
            }
        }
        CurvePoint {
            budget_fraction: fraction,
            labels_spent: spent,
            accuracy: correct as f32 / total_units.max(1) as f32,
            mean_entropy: entropy_sum / total_units.max(1) as f32,
        }
    };

    while !budget.is_exhausted() {
        // cap the round so it cannot overshoot the next checkpoint
        let mut limit = budget.remaining();
        if next_checkpoint < thresholds.len() {
            limit = limit.min(thresholds[next_checkpoint] - budget.spent());
        }
        let view = RoutingView { truth: &truth, candidates: &candidates, collected: &collected_counts, units: &units };
        let requests = policy.next_round(&view, limit, &mut rng);
        if requests.is_empty() {
            break;
        }
        assert!(
            requests.len() <= limit,
            "{} planned {} assignments over the limit {limit}",
            policy.name(),
            requests.len()
        );
        for request in requests {
            let slot = candidates[request.instance]
                .iter()
                .position(|&a| a == request.annotator)
                .unwrap_or_else(|| panic!("{} assigned unavailable pair {request:?}", policy.name()));
            candidates[request.instance].remove(slot);
            let label =
                labels[request.instance].iter().find(|cl| cl.annotator == request.annotator).expect("candidate");
            let span = &units[request.instance];
            for (t, &class) in label.labels.iter().enumerate() {
                truth.ingest(span.start + t, request.annotator, class).expect("dataset classes are in range");
            }
            collected_counts[request.instance] += 1;
            collected[request.instance].push(label.clone());
            assignments.push(request);
            budget.spend(1).expect("round limit keeps spending within budget");
        }
        truth.drain_dirty();
        while next_checkpoint < thresholds.len() && budget.spent() >= thresholds[next_checkpoint] {
            curve.push(measure(&truth, checkpoints[next_checkpoint], budget.spent()));
            next_checkpoint += 1;
        }
    }
    truth.drain_dirty();
    // an early-stopping policy still reports every requested checkpoint:
    // the remaining points repeat its final state
    while next_checkpoint < thresholds.len() {
        curve.push(measure(&truth, checkpoints[next_checkpoint], budget.spent()));
        next_checkpoint += 1;
    }
    let final_point = measure(&truth, 1.0, budget.spent());
    ClosedLoopOutcome { policy: policy.name(), curve, budget, accuracy: final_point.accuracy, assignments, collected }
}

/// Runs the scenario's own [`RoutePlan`] (static redundancy at full budget
/// when [`ScenarioConfig::route`] is unset) over `dataset` with a pooled
/// estimator, seeded from the scenario seed.
pub fn run_route_plan(config: &ScenarioConfig, dataset: &CrowdDataset, checkpoints: &[f32]) -> ClosedLoopOutcome {
    let plan = config.route.unwrap_or(RoutePlan { policy: PolicyKind::StaticRedundancy, budget_fraction: 1.0 });
    plan.validate().unwrap_or_else(|e| panic!("scenario {:?}: {e}", config.name));
    let mut policy = plan.policy.build();
    run_closed_loop(
        dataset,
        policy.as_mut(),
        plan.budget_for(dataset),
        StreamingConfig::pooled(dataset.num_classes),
        checkpoints,
        config.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate_scenario, Archetype, ScenarioConfig};
    use crate::TaskKind;

    fn tiny_spam_config() -> ScenarioConfig {
        ScenarioConfig::tiny(TaskKind::Classification)
            .with_mix(vec![(Archetype::reliable(), 0.5), (Archetype::Spammer, 0.5)])
            .with_seed(97)
    }

    #[test]
    fn label_budget_accounts_exactly_and_rejects_overspend() {
        let mut budget = LabelBudget::new(3);
        assert_eq!(budget.remaining(), 3);
        budget.spend(2).unwrap();
        assert_eq!(budget.spent(), 2);
        assert!(!budget.is_exhausted());
        assert!(budget.spend(2).is_err());
        assert_eq!(budget.spent(), 2, "failed spend must not debit");
        budget.spend(1).unwrap();
        assert!(budget.is_exhausted());
    }

    #[test]
    fn route_plan_validates_fraction() {
        assert!(RoutePlan { policy: PolicyKind::StaticRedundancy, budget_fraction: 0.0 }.validate().is_err());
        assert!(RoutePlan { policy: PolicyKind::StaticRedundancy, budget_fraction: 1.5 }.validate().is_err());
        assert!(RoutePlan::new(PolicyKind::SpamQuarantine, 1.0).validate().is_ok());
    }

    #[test]
    fn policy_kind_round_trips_names_and_aliases() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("static"), Some(PolicyKind::StaticRedundancy));
        assert_eq!(PolicyKind::parse("uncertainty"), Some(PolicyKind::UncertaintyRouting));
        assert_eq!(PolicyKind::parse("quarantine"), Some(PolicyKind::SpamQuarantine));
        assert_eq!(PolicyKind::parse("greedy"), None);
    }

    #[test]
    fn static_redundancy_is_breadth_first() {
        let config = tiny_spam_config();
        let dataset = generate_scenario(&config);
        let mut policy = StaticRedundancy;
        let outcome = run_closed_loop(
            &dataset,
            &mut policy,
            LabelBudget::new(dataset.train.len() + 3),
            StreamingConfig::pooled(dataset.num_classes),
            &[1.0],
            config.seed,
        );
        // with budget = instances + 3, every instance has its first label
        // before any instance has a third
        let counts: Vec<usize> = outcome.collected.iter().map(Vec::len).collect();
        assert!(counts.iter().all(|&c| c >= 1), "breadth first covers every instance: {counts:?}");
        assert!(counts.iter().all(|&c| c <= 2), "no instance runs ahead: {counts:?}");
    }

    #[test]
    fn checkpoints_are_recorded_even_when_the_policy_stops_early() {
        let config = tiny_spam_config();
        let dataset = generate_scenario(&config);
        // an aggressive stop threshold: the policy retires instances fast
        let mut policy = UncertaintyRouting { entropy_stop: 0.65, max_per_instance: 2, ..Default::default() };
        let outcome = run_closed_loop(
            &dataset,
            &mut policy,
            RoutePlan::new(PolicyKind::UncertaintyRouting, 1.0).budget_for(&dataset),
            StreamingConfig::pooled(dataset.num_classes),
            &DEFAULT_CHECKPOINTS,
            config.seed,
        );
        assert_eq!(outcome.curve.len(), DEFAULT_CHECKPOINTS.len());
        assert!(outcome.labels_spent() < outcome.budget.total(), "stop rule leaves budget unspent");
        let spent: usize = outcome.collected.iter().map(Vec::len).sum();
        assert_eq!(spent, outcome.labels_spent());
    }

    #[test]
    fn spam_quarantine_starves_uniform_annotators() {
        let config = tiny_spam_config()
            .with_sizes(120, 10, 10)
            .with_annotators(10)
            .with_redundancy(4, 4)
            .with_propensity(crate::scenario::PropensityProfile::Uniform);
        let dataset = generate_scenario(&config);
        let pool = crate::scenario::scenario_pool(&config);
        let mut policy = SpamQuarantine::default();
        let outcome = run_closed_loop(
            &dataset,
            &mut policy,
            RoutePlan::new(PolicyKind::SpamQuarantine, 0.5).budget_for(&dataset),
            StreamingConfig::pooled(dataset.num_classes),
            &[1.0],
            config.seed,
        );
        let mut spent_on = vec![0usize; dataset.num_annotators];
        for assignment in &outcome.assignments {
            spent_on[assignment.annotator] += 1;
        }
        let mean_of = |kind: fn(&Archetype) -> bool| {
            let (sum, n) = pool
                .archetypes
                .iter()
                .zip(&spent_on)
                .filter(|(archetype, _)| kind(archetype))
                .fold((0usize, 0usize), |(s, n), (_, &c)| (s + c, n + 1));
            sum as f32 / n.max(1) as f32
        };
        let reliable = mean_of(|a| matches!(a, Archetype::Reliable { .. }));
        let spammers = mean_of(|a| matches!(a, Archetype::Spammer));
        assert!(
            reliable > spammers,
            "quarantine should route away from uniform annotators: reliable {reliable:.1} vs spammer {spammers:.1}"
        );
    }
}
