//! End-to-end tests over real loopback sockets: the label → consensus
//! flow, the closed-loop assign → label → consensus round under a budget,
//! the HTTP robustness contract (malformed input answers 4xx and
//! never kills the accept loop, a 405 carries its `Allow` header) and
//! concurrent-ingest determinism (the same label multiset, any arrival
//! interleaving, any connection assignment → the same finalized
//! consensus).

use lncl_crowd::scenario::router::PolicyKind;
use lncl_crowd::truth::streaming::StreamingConfig;
use lncl_serve::server::{Server, ServerConfig};
use lncl_serve::state::AppState;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server() -> Server {
    let state = Arc::new(AppState::new(StreamingConfig::pooled(2)));
    Server::start(state, ServerConfig::default()).expect("bind loopback")
}

/// Sends raw bytes on a fresh connection and returns (status, headers, body).
fn raw_request_with_headers(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(raw).expect("write");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
        headers.push(line.trim_end().to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

/// Sends raw bytes on a fresh connection and returns (status, body).
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let (status, _, body) = raw_request_with_headers(addr, raw);
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_request(addr, format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len()).as_bytes(),
    )
}

#[test]
fn label_to_consensus_flow_over_sockets() {
    let server = start_server();
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    // three annotators agree on class 1 for i0, class 0 for i1
    for a in 0..3 {
        let (status, body) =
            post(addr, "/labels", &format!(r#"{{"instance": "i0", "annotator": "a{a}", "class": 1}}"#));
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            post(addr, "/labels", &format!(r#"{{"instance": "i1", "annotator": "a{a}", "class": 0}}"#));
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = post(addr, "/finalize", "");
    assert_eq!(status, 200, "{body}");

    let (status, body) = get(addr, "/consensus/i0");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"hard_class\": 1"), "{body}");
    let (status, body) = get(addr, "/consensus/i1");
    assert_eq!(status, 200);
    assert!(body.contains("\"hard_class\": 0"), "{body}");

    let (status, body) = get(addr, "/annotators/a0");
    assert_eq!(status, 200);
    assert!(body.contains("\"reliability\""), "{body}");
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"total_labels\": 6"), "{body}");
}

#[test]
fn closed_loop_assign_label_consensus_round_under_budget() {
    // a quarantine-policy server with a finite budget: seed labels, then
    // follow /assign plans until the budget runs dry, checking the
    // accounting at every step
    let state = Arc::new(AppState::with_routing(StreamingConfig::pooled(2), PolicyKind::SpamQuarantine, Some(12), 3));
    let server = Server::start(state, ServerConfig::default()).expect("bind loopback");
    let addr = server.addr();

    // seed: 4 of 12 labels introduce 4 instances and 3 annotators, leaving
    // exactly 8 open (instance, annotator) pairs for the 8 remaining labels
    for (instance, annotator, class) in [("i0", "a0", 1), ("i1", "a0", 0), ("i2", "a1", 0), ("i3", "a2", 1)] {
        let (status, body) = post(
            addr,
            "/labels",
            &format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": {class}}}"#),
        );
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = get(addr, "/budget");
    assert_eq!(status, 200);
    assert!(body.contains("\"policy\": \"spam-quarantine\""), "{body}");
    assert!(body.contains("\"spent\": 4"), "{body}");
    assert!(body.contains("\"remaining\": 8"), "{body}");

    // closed loop: answer every planned assignment with a label until the
    // planner reports exhaustion
    let mut answered = 0usize;
    loop {
        let (status, body) = post(addr, "/assign", r#"{"limit": 3}"#);
        if status == 409 {
            break;
        }
        assert_eq!(status, 200, "{body}");
        let mut planned = 0usize;
        for part in body.split("\"instance\": \"").skip(1) {
            let instance = part.split('"').next().unwrap();
            let annotator = part.split("\"annotator\": \"").nth(1).unwrap().split('"').next().unwrap();
            let (status, response) = post(
                addr,
                "/labels",
                &format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": 1}}"#),
            );
            assert_eq!(status, 200, "{response}");
            planned += 1;
            answered += 1;
        }
        if planned == 0 {
            break; // nothing left to route (full coverage before budget ran out)
        }
        assert!(answered <= 8, "planner overspent the budget");
    }
    assert_eq!(answered, 8, "the loop should spend the budget exactly");

    let (status, body) = get(addr, "/budget");
    assert_eq!(status, 200);
    assert!(body.contains("\"exhausted\": true"), "{body}");
    // the consensus for the doubly-confirmed instance is queryable
    let (status, body) = get(addr, "/consensus/i0");
    assert_eq!(status, 200);
    assert!(body.contains("\"hard_class\": 1"), "{body}");
}

#[test]
fn method_not_allowed_carries_the_allow_header() {
    let server = start_server();
    let (status, headers, body) =
        raw_request_with_headers(server.addr(), b"DELETE /labels HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 405, "{body}");
    assert!(headers.iter().any(|h| h == "Allow: POST"), "missing Allow header: {headers:?}");
    let (status, headers, _) =
        raw_request_with_headers(server.addr(), b"POST /stats HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 405);
    assert!(headers.iter().any(|h| h == "Allow: GET"), "{headers:?}");
}

#[test]
fn malformed_requests_answer_4xx_and_do_not_kill_the_server() {
    let server = start_server();
    let addr = server.addr();

    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        ("garbage request line", b"GARBAGE\r\n\r\n".to_vec(), 400),
        ("two-token request line", b"GET /healthz\r\n\r\n".to_vec(), 400),
        ("relative target", b"GET healthz HTTP/1.1\r\n\r\n".to_vec(), 400),
        ("bad content-length", b"POST /labels HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(), 400),
        (
            "conflicting duplicate content-lengths",
            b"POST /labels HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd".to_vec(),
            400,
        ),
        (
            "oversized body",
            format!("POST /labels HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 * 1024 * 1024).into_bytes(),
            413,
        ),
        (
            "oversized head",
            format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "x".repeat(9000)).into_bytes(),
            431,
        ),
        ("unknown route", b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        ("wrong method", b"DELETE /labels HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(), 405),
        (
            "invalid json",
            b"POST /labels HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json".to_vec(),
            400,
        ),
        (
            "out-of-range class",
            b"POST /labels HTTP/1.1\r\nContent-Length: 48\r\n\r\n{\"instance\": \"i\", \"annotator\": \"a\", \"class\": 7}\n".to_vec(),
            400,
        ),
    ];
    for (name, raw, expected) in cases {
        let (status, body) = raw_request(addr, &raw);
        assert_eq!(status, expected, "{name}: {body}");
        assert!(body.contains("\"error\""), "{name}: {body}");
        // the accept loop must still be alive after every abuse
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200, "server died after {name}");
    }
}

#[test]
fn concurrent_interleaved_ingest_is_deterministic() {
    // The same label multiset, pushed through 4 concurrent connections with
    // two different label-to-connection assignments: after finalize, both
    // servers report identical consensus documents.  A deterministic
    // warm-up batch pins the (first-seen-order) id interning first — the
    // determinism contract is over a fixed id assignment, which is what a
    // real deployment's stable external ids map to.
    let labels: Vec<(String, String, usize)> = (0..60)
        .flat_map(|u| {
            (0..4).map(move |a| {
                let noisy = (u + a) % 7 == 0; // deterministic disagreement
                (format!("i{u}"), format!("a{a}"), if noisy { (u + 1) % 2 } else { u % 2 })
            })
        })
        .collect();
    // one label per (instance, one annotator) in fixed order registers
    // every id before the concurrent phase
    let warmup: Vec<String> = labels
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == (i / 4) % 4)
        .map(|(_, (instance, annotator, class))| {
            format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": {class}}}"#)
        })
        .collect();
    let warmup_body = format!("{{\"labels\": [{}]}}", warmup.join(", "));

    let mut snapshots = Vec::new();
    for split in 0..2usize {
        let server = start_server();
        let addr = server.addr();
        let (status, body) = post(addr, "/labels", &warmup_body);
        assert_eq!(status, 200, "{body}");
        std::thread::scope(|scope| {
            for conn in 0..4usize {
                let labels = &labels;
                scope.spawn(move || {
                    for (i, (instance, annotator, class)) in labels.iter().enumerate() {
                        if i % 4 == (i / 4) % 4 {
                            continue; // already sent in the warm-up batch
                        }
                        // different splits shard the same labels differently
                        if (i + split * 2) % 4 != conn {
                            continue;
                        }
                        let body =
                            format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": {class}}}"#);
                        let (status, response) = post(addr, "/labels", &body);
                        assert_eq!(status, 200, "{response}");
                    }
                });
            }
        });
        let (status, body) = post(addr, "/finalize", "");
        assert_eq!(status, 200, "{body}");
        let consensus: Vec<String> = (0..60).map(|u| get(addr, &format!("/consensus/i{u}")).1).collect();
        snapshots.push(consensus);
    }
    assert_eq!(snapshots[0], snapshots[1], "arrival interleaving changed the finalized consensus");
}
