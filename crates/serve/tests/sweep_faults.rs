//! Fault-injection suite for the distributed sweep: real workers running
//! real (training-free) method sweeps against a real coordinator, with a
//! chaos proxy between them.  The claim under test is always the same —
//! whatever the fault, the merged quality-only report is **bitwise
//! identical** to the serial sweep and no work unit is lost:
//!
//! * a clean two-worker sweep,
//! * a worker killed mid-unit while holding a lease,
//! * a `Result` frame truncated mid-payload,
//! * every completion duplicated in flight,
//! * delayed coordinator responses under a short lease,
//! * a wedged straggler whose lease expires and whose late result is
//!   rejected.
//!
//! The method set is the training-free truth-inference baselines so the
//! suite runs in seconds; bitwise determinism per method is asserted by
//! the bench crate's own suites.

use lncl_bench::quality::{quality_only_report, scenario_quality_rows};
use lncl_bench::timing::QualityCase;
use lncl_bench::{run_scenario_outcome_with_epochs, Scale};
use lncl_crowd::scenario::{standard_mixes, wire, ScenarioCache, ScenarioConfig, ScenarioGrid};
use lncl_crowd::TaskKind;
use lncl_serve::sweep::proto::{recv_msg, send_msg};
use lncl_serve::sweep::{run_worker, ChaosProxy, CoordConfig, Coordinator, FaultPlan, Msg, SweepOutcome, WorkerConfig};
use logic_lncl::method::MethodRegistry;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const METHODS: &[&str] = &["mv", "dawid-skene", "ibcc"];
const EPOCHS: usize = 2;

/// A six-unit grid over both tasks and three archetype mixes — the same
/// shape the real sweep serves, small enough to run under every fault.
fn test_grid() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for task in [TaskKind::Classification, TaskKind::SequenceTagging] {
        let mut grid = ScenarioGrid::new(ScenarioConfig::tiny(task).with_seed(41));
        grid.mixes = standard_mixes()
            .into_iter()
            .filter(|(name, _)| matches!(*name, "clean" | "spammer-third" | "anarchy"))
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        configs.extend(grid.configs());
    }
    configs
}

/// The serial reference: the exact rows a `LNCL_SWEEP_QUALITY_ONLY=1`
/// scenario sweep produces for this grid, computed in-process.
fn serial_rows(configs: &[ScenarioConfig]) -> Vec<QualityCase> {
    let registry = MethodRegistry::standard();
    let cache = ScenarioCache::new();
    configs
        .iter()
        .flat_map(|config| {
            scenario_quality_rows(&run_scenario_outcome_with_epochs(
                config,
                Scale::Tiny,
                EPOCHS,
                &registry,
                Some(METHODS),
                &cache,
                1,
            ))
        })
        .collect()
}

fn coord_config() -> CoordConfig {
    let mut cfg = CoordConfig::new(Scale::Tiny, EPOCHS);
    cfg.methods = Some(METHODS.iter().map(|m| m.to_string()).collect());
    cfg.drain = Duration::from_secs(2);
    cfg
}

fn spawn_worker(
    addr: SocketAddr,
    name: &str,
    max_reconnects: usize,
) -> std::thread::JoinHandle<Result<lncl_serve::sweep::WorkerSummary, lncl_serve::sweep::WorkerError>> {
    let cfg = WorkerConfig { max_reconnects, ..WorkerConfig::new(addr.to_string(), name) };
    std::thread::spawn(move || run_worker(&cfg))
}

/// The bitwise contract: distributed rows, passed through the same
/// canonical report constructor, serialise to the identical JSON document
/// the serial sweep writes.
fn assert_bitwise_serial(outcome: &SweepOutcome, serial: &[QualityCase], what: &str) {
    let serial_json = quality_only_report("scenario_sweep", Scale::Tiny, serial.to_vec()).to_json();
    let dist_json = quality_only_report("scenario_sweep", Scale::Tiny, outcome.rows.clone()).to_json();
    assert_eq!(dist_json, serial_json, "{what}: the merged report must equal the serial one byte for byte");
}

#[test]
fn two_clean_workers_reproduce_the_serial_sweep_bitwise() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let coordinator = Coordinator::start(&configs, coord_config()).unwrap();
    let addr = coordinator.addr();
    let w0 = spawn_worker(addr, "w0", 5);
    let w1 = spawn_worker(addr, "w1", 5);
    let outcome = coordinator.wait();
    let (s0, s1) = (w0.join().unwrap().unwrap(), w1.join().unwrap().unwrap());
    assert_eq!(outcome.accounting.completions_accepted, configs.len());
    assert_eq!(s0.completed + s1.completed + outcome.accounting.duplicates_rejected, configs.len());
    assert_bitwise_serial(&outcome, &serial, "clean two-worker sweep");
}

#[test]
fn a_worker_killed_mid_unit_loses_no_work() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let coordinator = Coordinator::start(&configs, coord_config()).unwrap();
    let addr = coordinator.addr();
    // the doomed worker goes through a proxy that severs the connection
    // right after its second Pull — it dies holding a fresh lease
    let proxy =
        ChaosProxy::start(addr, vec![FaultPlan { kill_after_client_frames: Some(4), ..FaultPlan::clean() }]).unwrap();
    let doomed = spawn_worker(proxy.addr(), "doomed", 0);
    let healthy = spawn_worker(addr, "healthy", 5);
    let outcome = coordinator.wait();
    assert!(doomed.join().unwrap().is_err(), "the faulted worker must report its death");
    let survivor = healthy.join().unwrap().unwrap();
    assert_eq!(outcome.accounting.completions_accepted, configs.len(), "no unit lost");
    assert!(outcome.accounting.reissues >= 1, "the dead worker's lease must have been re-issued");
    assert!(survivor.completed >= configs.len() - 2, "the survivor picked up the slack");
    assert_bitwise_serial(&outcome, &serial, "worker killed mid-unit");
}

#[test]
fn a_truncated_result_frame_is_reissued_not_merged() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let coordinator = Coordinator::start(&configs, coord_config()).unwrap();
    let addr = coordinator.addr();
    // first connection: the first Result frame is cut in half mid-payload;
    // the worker reconnects through the proxy (second plan: clean)
    let proxy = ChaosProxy::start(
        addr,
        vec![FaultPlan { truncate_client_kind: Some(lncl_serve::sweep::proto::K_RESULT), ..FaultPlan::clean() }],
    )
    .unwrap();
    let worker = spawn_worker(proxy.addr(), "flaky", 5);
    let outcome = coordinator.wait();
    let summary = worker.join().unwrap().unwrap();
    assert!(summary.reconnects >= 1, "the truncation must have forced a reconnect");
    assert_eq!(outcome.accounting.completions_accepted, configs.len(), "no unit lost");
    assert!(outcome.accounting.reissues >= 1, "the half-written unit was re-issued");
    assert_bitwise_serial(&outcome, &serial, "truncated result frame");
}

#[test]
fn duplicated_completions_are_deduplicated_first_wins() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let coordinator = Coordinator::start(&configs, coord_config()).unwrap();
    let addr = coordinator.addr();
    // an at-least-once network: every Result frame arrives twice
    let proxy = ChaosProxy::start(
        addr,
        vec![FaultPlan { duplicate_client_kind: Some(lncl_serve::sweep::proto::K_RESULT), ..FaultPlan::clean() }],
    )
    .unwrap();
    let worker = spawn_worker(proxy.addr(), "echoed", 5);
    let outcome = coordinator.wait();
    let summary = worker.join().unwrap().unwrap();
    assert_eq!(outcome.accounting.completions_accepted, configs.len(), "each unit accepted exactly once");
    assert!(
        outcome.accounting.duplicates_rejected >= configs.len(),
        "every duplicated completion must be rejected: {:?}",
        outcome.accounting
    );
    assert_eq!(summary.completed, configs.len());
    assert_bitwise_serial(&outcome, &serial, "duplicated completions");
}

#[test]
fn delayed_responses_under_a_short_lease_stay_bitwise_identical() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let mut cfg = coord_config();
    cfg.lease = Duration::from_millis(100);
    let coordinator = Coordinator::start(&configs, cfg).unwrap();
    let addr = coordinator.addr();
    // responses to the proxied worker lag behind its lease, so units it
    // holds may expire and be re-run by the direct worker — duplicates and
    // re-issues are expected, divergence is not
    let proxy = ChaosProxy::start(addr, vec![FaultPlan { delay_server_ms: 150, ..FaultPlan::clean() }]).unwrap();
    let slow = spawn_worker(proxy.addr(), "slow", 5);
    let fast = spawn_worker(addr, "fast", 5);
    let outcome = coordinator.wait();
    let _ = slow.join().unwrap();
    let _ = fast.join().unwrap();
    assert_eq!(outcome.accounting.completions_accepted, configs.len(), "no unit lost, none double-counted");
    assert_bitwise_serial(&outcome, &serial, "delayed acks under a short lease");
}

#[test]
fn a_stragglers_lease_expires_and_its_late_result_is_rejected() {
    let configs = test_grid();
    let serial = serial_rows(&configs);
    let mut cfg = coord_config();
    cfg.lease = Duration::from_millis(300);
    cfg.drain = Duration::from_secs(5);
    let coordinator = Coordinator::start(&configs, cfg).unwrap();
    let addr = coordinator.addr();

    // a hand-rolled straggler: pulls a unit, then wedges without reporting
    let mut straggler = TcpStream::connect(addr).unwrap();
    straggler.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    send_msg(&mut straggler, &Msg::Hello { worker: "straggler".into() }).unwrap();
    assert!(matches!(recv_msg(&mut straggler).unwrap(), Some(Msg::Spec { .. })));
    send_msg(&mut straggler, &Msg::Pull).unwrap();
    let (index, hash, config) = match recv_msg(&mut straggler).unwrap().unwrap() {
        Msg::Unit { index, hash, config } => (index, hash, config),
        other => panic!("expected Unit, got {other:?}"),
    };

    // a healthy worker sweeps everything, including the straggler's unit
    // once its lease expires
    let healthy = spawn_worker(addr, "healthy", 5);
    let waiter = std::thread::spawn(move || coordinator.wait());
    let summary = healthy.join().unwrap().unwrap();
    assert_eq!(summary.completed, configs.len(), "the healthy worker completed every unit, reissue included");

    // the straggler finally reports — too late, somebody else finished it
    let name = wire::decode_config(&config).unwrap().name;
    let rows = vec![QualityCase { scenario: name, method: "mv".into(), metrics: vec![] }];
    send_msg(&mut straggler, &Msg::Result { index, hash, rows, secs: 99.0 }).unwrap();
    match recv_msg(&mut straggler).unwrap().unwrap() {
        Msg::Ack { index: acked, accepted } => {
            assert_eq!(acked, index);
            assert!(!accepted, "a late result for a finished unit must be rejected");
        }
        other => panic!("expected Ack, got {other:?}"),
    }
    drop(straggler);

    let outcome = waiter.join().unwrap();
    assert_eq!(outcome.accounting.completions_accepted, configs.len());
    assert!(outcome.accounting.reissues >= 1, "the expired lease must have been re-issued");
    assert!(outcome.accounting.duplicates_rejected >= 1, "the late result must be on the books");
    assert_bitwise_serial(&outcome, &serial, "straggler with an expired lease");
}
