//! Wire-protocol tests for the distributed sweep, against a real
//! coordinator over loopback TCP: the handshake / pull / complete
//! exchange, `Unit` round-trips over the real seeded sweep grid, the
//! malformed-frame rejection table (each bad frame drops the connection
//! and returns the dropped connection's lease to the queue), and the
//! lease-accounting invariant that every unit is completed exactly once.

use lncl_bench::timing::QualityCase;
use lncl_bench::{scenario_sweep_configs, Scale};
use lncl_crowd::scenario::{wire, ScenarioConfig};
use lncl_crowd::TaskKind;
use lncl_serve::sweep::frame::{write_frame, FRAME_VERSION, MAX_PAYLOAD};
use lncl_serve::sweep::proto::{recv_msg, send_msg, K_PULL};
use lncl_serve::sweep::{Accounting, CoordConfig, Coordinator, Msg};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// A two-unit grid; the protocol tests fabricate the rows, so tiny
/// configs are enough and nothing is ever trained.
fn two_units() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::tiny(TaskKind::Classification).named("proto/a").with_seed(7),
        ScenarioConfig::tiny(TaskKind::Classification).named("proto/b").with_seed(8),
    ]
}

fn connect(coordinator: &Coordinator) -> TcpStream {
    let stream = TcpStream::connect(coordinator.addr()).expect("connect to the coordinator");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Hello → Spec, asserting the advertised sweep parameters.
fn handshake(stream: &mut TcpStream, expect_units: usize) -> Msg {
    send_msg(stream, &Msg::Hello { worker: "test-client".into() }).unwrap();
    let spec = recv_msg(stream).unwrap().expect("a Spec reply");
    match &spec {
        Msg::Spec { units, .. } => assert_eq!(*units, expect_units),
        other => panic!("expected Spec, got {other:?}"),
    }
    spec
}

fn fake_rows(name: &str) -> Vec<QualityCase> {
    vec![QualityCase {
        scenario: name.to_string(),
        method: "mv".to_string(),
        metrics: vec![("headline".to_string(), 0.5)],
    }]
}

#[test]
fn handshake_pull_complete_and_dedupe_over_a_real_socket() {
    let configs = two_units();
    let mut cfg = CoordConfig::new(Scale::Tiny, 2);
    cfg.methods = Some(vec!["mv".into()]);
    cfg.drain = Duration::from_millis(200);
    let coordinator = Coordinator::start(&configs, cfg).unwrap();
    let mut stream = connect(&coordinator);
    match handshake(&mut stream, 2) {
        Msg::Spec { scale, epochs, methods, .. } => {
            assert_eq!(scale, Scale::Tiny);
            assert_eq!(epochs, 2);
            assert_eq!(methods, Some(vec!["mv".to_string()]));
        }
        _ => unreachable!(),
    }
    let mut first_hash = 0;
    for expected_index in 0..2usize {
        send_msg(&mut stream, &Msg::Pull).unwrap();
        let (index, hash, config) = match recv_msg(&mut stream).unwrap().unwrap() {
            Msg::Unit { index, hash, config } => (index, hash, config),
            other => panic!("expected Unit, got {other:?}"),
        };
        assert_eq!(index, expected_index, "units are issued in grid order");
        let decoded = wire::decode_config(&config).expect("unit config decodes");
        assert_eq!(decoded, configs[index], "the wire bytes reproduce the grid config");
        assert_eq!(decoded.content_hash(), hash, "the advertised hash matches the config");
        if index == 0 {
            first_hash = hash;
        }
        send_msg(&mut stream, &Msg::Result { index, hash, rows: fake_rows(&decoded.name), secs: 0.0 }).unwrap();
        match recv_msg(&mut stream).unwrap().unwrap() {
            Msg::Ack { index: acked, accepted } => {
                assert_eq!(acked, index);
                assert!(accepted, "first completion of unit {index} must be accepted");
            }
            other => panic!("expected Ack, got {other:?}"),
        }
        if index == 0 {
            // completing the same unit again must be rejected, not merged
            send_msg(&mut stream, &Msg::Result { index, hash, rows: fake_rows("dup"), secs: 0.0 }).unwrap();
            match recv_msg(&mut stream).unwrap().unwrap() {
                Msg::Ack { accepted, .. } => assert!(!accepted, "duplicate completion must be rejected"),
                other => panic!("expected Ack, got {other:?}"),
            }
        }
    }
    send_msg(&mut stream, &Msg::Pull).unwrap();
    assert_eq!(recv_msg(&mut stream).unwrap(), Some(Msg::Done), "an exhausted sweep answers Pull with Done");
    drop(stream);
    let outcome = coordinator.wait();
    assert_eq!(outcome.accounting, Accounting { completions_accepted: 2, duplicates_rejected: 1, reissues: 0 });
    assert_eq!(outcome.units, 2);
    // rows are merged in canonical order and the duplicate's rows are gone
    let scenarios: Vec<&str> = outcome.rows.iter().map(|r| r.scenario.as_str()).collect();
    assert_eq!(scenarios, vec!["proto/a", "proto/b"]);
    assert_ne!(first_hash, 0);
}

#[test]
fn unit_messages_round_trip_the_whole_seeded_sweep_grid() {
    // the real grid the sweep binaries serve, at two scales and the
    // binaries' grid seed: Unit encode → frame → decode must reproduce
    // config bytes and hash exactly
    for scale in [Scale::Tiny, Scale::Paper] {
        for (index, config) in scenario_sweep_configs(scale, 29).iter().enumerate() {
            let msg = Msg::Unit { index, hash: config.content_hash(), config: wire::encode_config(config) };
            let frame = lncl_serve::sweep::Frame { kind: msg.kind(), payload: msg.payload() };
            match Msg::decode(&frame).expect("unit frame decodes") {
                Msg::Unit { index: i, hash, config: bytes } => {
                    assert_eq!(i, index);
                    let decoded = wire::decode_config(&bytes).expect("config bytes decode");
                    assert_eq!(&decoded, config, "{} changed in transit", config.name);
                    assert_eq!(hash, decoded.content_hash());
                }
                other => panic!("expected Unit, got {other:?}"),
            }
        }
    }
}

#[test]
fn malformed_frames_drop_the_connection_and_reclaim_the_lease() {
    let configs = vec![ScenarioConfig::tiny(TaskKind::Classification).named("proto/reclaim").with_seed(9)];
    let mut cfg = CoordConfig::new(Scale::Tiny, 2);
    cfg.drain = Duration::from_millis(200);
    let coordinator = Coordinator::start(&configs, cfg).unwrap();

    let mut oversized = Vec::new();
    write_frame(&mut oversized, K_PULL, &[]).unwrap();
    oversized[4..8].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
    let mut wrong_version = Vec::new();
    write_frame(&mut wrong_version, K_PULL, &[]).unwrap();
    wrong_version[2] = FRAME_VERSION + 1;
    let mut truncated = Vec::new();
    write_frame(&mut truncated, 99, b"payload that never arrives in full").unwrap();
    truncated.truncate(12);
    let bad_frames: Vec<(&str, Vec<u8>)> = vec![
        ("bad magic", b"XX\x01\x03\x00\x00\x00\x00".to_vec()),
        ("wrong version", wrong_version),
        ("oversized declaration", oversized),
        ("truncated payload", truncated),
        ("unknown kind", {
            let mut f = Vec::new();
            write_frame(&mut f, 99, b"{}").unwrap();
            f
        }),
        ("malformed payload", {
            let mut f = Vec::new();
            write_frame(&mut f, K_PULL, b"not empty").unwrap();
            f
        }),
    ];
    let attempts = bad_frames.len();
    for (what, bytes) in bad_frames {
        let mut stream = connect(&coordinator);
        handshake(&mut stream, 1);
        send_msg(&mut stream, &Msg::Pull).unwrap();
        let (index, hash) = match recv_msg(&mut stream).unwrap().unwrap() {
            Msg::Unit { index, hash, .. } => (index, hash),
            other => panic!("expected Unit, got {other:?}"),
        };
        assert_eq!((index, hash != 0), (0, true));
        // holding the lease, violate the protocol: the coordinator must
        // drop us (EOF or reset, not a reply) and reclaim the lease
        stream.write_all(&bytes).unwrap();
        stream.flush().unwrap();
        // half-close so a frame truncated mid-payload reads as EOF rather
        // than blocking the handler until the read times out
        stream.shutdown(Shutdown::Write).unwrap();
        match recv_msg(&mut stream) {
            Ok(None) | Err(_) => {}
            Ok(Some(reply)) => panic!("{what}: coordinator replied {reply:?} instead of dropping the connection"),
        }
    }
    // a well-behaved client now completes the much-reclaimed unit
    let mut stream = connect(&coordinator);
    handshake(&mut stream, 1);
    send_msg(&mut stream, &Msg::Pull).unwrap();
    let (index, hash, config) = match recv_msg(&mut stream).unwrap().unwrap() {
        Msg::Unit { index, hash, config } => (index, hash, config),
        other => panic!("expected Unit, got {other:?}"),
    };
    let name = wire::decode_config(&config).unwrap().name;
    send_msg(&mut stream, &Msg::Result { index, hash, rows: fake_rows(&name), secs: 0.0 }).unwrap();
    assert_eq!(recv_msg(&mut stream).unwrap(), Some(Msg::Ack { index, accepted: true }));
    send_msg(&mut stream, &Msg::Pull).unwrap();
    assert_eq!(recv_msg(&mut stream).unwrap(), Some(Msg::Done));
    drop(stream);
    let outcome = coordinator.wait();
    assert_eq!(
        outcome.accounting,
        Accounting { completions_accepted: 1, duplicates_rejected: 0, reissues: attempts },
        "every violated connection must have returned its lease"
    );
}

#[test]
fn results_for_unknown_units_or_wrong_hashes_are_a_violation() {
    let configs = two_units();
    let mut cfg = CoordConfig::new(Scale::Tiny, 2);
    cfg.drain = Duration::from_millis(200);
    let coordinator = Coordinator::start(&configs, cfg).unwrap();
    // wrong hash
    let mut stream = connect(&coordinator);
    handshake(&mut stream, 2);
    send_msg(&mut stream, &Msg::Result { index: 0, hash: 0xbad, rows: vec![], secs: 0.0 }).unwrap();
    assert!(matches!(recv_msg(&mut stream), Ok(None) | Err(_)), "wrong hash must drop the connection");
    // out-of-range index
    let mut stream = connect(&coordinator);
    handshake(&mut stream, 2);
    send_msg(&mut stream, &Msg::Result { index: 99, hash: 1, rows: vec![], secs: 0.0 }).unwrap();
    assert!(matches!(recv_msg(&mut stream), Ok(None) | Err(_)), "unknown index must drop the connection");
    // clean up: complete the sweep so wait() returns
    let mut stream = connect(&coordinator);
    handshake(&mut stream, 2);
    for _ in 0..2 {
        send_msg(&mut stream, &Msg::Pull).unwrap();
        let (index, hash, config) = match recv_msg(&mut stream).unwrap().unwrap() {
            Msg::Unit { index, hash, config } => (index, hash, config),
            other => panic!("expected Unit, got {other:?}"),
        };
        let name = wire::decode_config(&config).unwrap().name;
        send_msg(&mut stream, &Msg::Result { index, hash, rows: fake_rows(&name), secs: 0.0 }).unwrap();
        recv_msg(&mut stream).unwrap().unwrap();
    }
    drop(stream);
    let outcome = coordinator.wait();
    assert_eq!(outcome.accounting.completions_accepted, 2, "every unit completed exactly once");
    assert_eq!(outcome.accounting.duplicates_rejected, 0, "forged results never entered the ledger");
}
