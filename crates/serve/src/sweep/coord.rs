//! The sweep coordinator: a lease ledger behind a TCP accept loop.
//!
//! Work distribution is pull-based (work stealing): the coordinator never
//! pushes, it answers `Pull` requests with the next leasable unit.  Each
//! lease carries a deadline; expired leases are reclaimed lazily on the
//! next `Pull` and a disconnect reclaims everything its connection held —
//! a crashed, killed or wedged worker can therefore delay a unit but never
//! lose it.  Completions are deduplicated first-wins by unit index: the
//! run is seed-deterministic, so any completion of a unit carries the same
//! rows and dropping duplicates cannot change the merged table (the
//! duplicate is still counted in [`Accounting::duplicates_rejected`]).
//!
//! [`Coordinator::wait`] blocks until every unit is done, drains
//! connected workers (each gets a `Done` answer to its final `Pull`),
//! force-closes whatever is left, joins all handler threads and only then
//! snapshots rows and accounting — so the returned [`SweepOutcome`] is
//! race-free even with chaos-proxy duplicated completions in flight.

use super::proto::{recv_msg, send_msg, Msg};
use lncl_bench::merge::merge_quality_rows;
use lncl_bench::timing::QualityCase;
use lncl_bench::Scale;
use lncl_crowd::scenario::{wire, ScenarioConfig};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Listen address; port `0` picks a free port (see [`Coordinator::addr`]).
    pub addr: String,
    /// Lease duration: how long a pulled unit may stay unreported before
    /// it becomes leasable again.
    pub lease: Duration,
    /// Scale every worker runs units at.
    pub scale: Scale,
    /// Training epochs every worker uses.
    pub epochs: usize,
    /// Optional registry-name filter forwarded to workers.
    pub methods: Option<Vec<String>>,
    /// Back-off answered to `Pull` when nothing is leasable yet.
    pub idle_retry: Duration,
    /// How long [`Coordinator::wait`] lets connected workers pull their
    /// `Done` before force-closing them.
    pub drain: Duration,
}

impl CoordConfig {
    /// A loopback configuration with the defaults the `sweep_coord`
    /// binary also uses (30 s leases, 50 ms idle retry, 1 s drain).
    pub fn new(scale: Scale, epochs: usize) -> Self {
        CoordConfig {
            addr: "127.0.0.1:0".to_string(),
            lease: Duration::from_millis(30_000),
            scale,
            epochs,
            methods: None,
            idle_retry: Duration::from_millis(50),
            drain: Duration::from_secs(1),
        }
    }
}

/// Completion bookkeeping, exposed for the fault-injection tests and the
/// `sweep_coord` log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Results accepted (exactly one per unit).
    pub completions_accepted: usize,
    /// Results rejected because the unit was already done.
    pub duplicates_rejected: usize,
    /// Leases reclaimed — via expiry or a holder's disconnect — and made
    /// leasable again.
    pub reissues: usize,
}

/// What a finished sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// All quality rows, sorted by `(scenario, method)` — identical to the
    /// serial sweep's table.
    pub rows: Vec<QualityCase>,
    /// Completion bookkeeping.
    pub accounting: Accounting,
    /// Number of grid units served.
    pub units: usize,
}

enum UnitState {
    Pending,
    Leased { conn: u64, deadline: Instant },
    Done,
}

/// The unit ledger: every state transition happens under one mutex, so
/// the invariant "each unit is accepted exactly once" is local to this
/// struct (see the unit tests).
struct Ledger {
    states: Vec<UnitState>,
    queue: VecDeque<usize>,
    rows: Vec<Option<Vec<QualityCase>>>,
    completed: usize,
    acct: Accounting,
}

impl Ledger {
    fn new(units: usize) -> Self {
        Ledger {
            states: (0..units).map(|_| UnitState::Pending).collect(),
            queue: (0..units).collect(),
            rows: (0..units).map(|_| None).collect(),
            completed: 0,
            acct: Accounting::default(),
        }
    }

    fn done(&self) -> bool {
        self.completed == self.states.len()
    }

    /// Returns expired leases to the queue.
    fn reclaim_expired(&mut self, now: Instant) {
        for index in 0..self.states.len() {
            if let UnitState::Leased { deadline, .. } = self.states[index] {
                if deadline <= now {
                    self.states[index] = UnitState::Pending;
                    self.queue.push_back(index);
                    self.acct.reissues += 1;
                }
            }
        }
    }

    /// Returns a disconnected worker's leases to the queue.
    fn disconnect(&mut self, conn: u64) {
        for index in 0..self.states.len() {
            if matches!(self.states[index], UnitState::Leased { conn: holder, .. } if holder == conn) {
                self.states[index] = UnitState::Pending;
                self.queue.push_back(index);
                self.acct.reissues += 1;
            }
        }
    }

    /// Leases the next pending unit to `conn`, if any.
    fn lease_next(&mut self, conn: u64, deadline: Instant) -> Option<usize> {
        let index = self.queue.pop_front()?;
        self.states[index] = UnitState::Leased { conn, deadline };
        Some(index)
    }

    /// Records a completion; `false` means the unit was already done and
    /// the rows were discarded.  The first completion wins no matter who
    /// currently holds the lease — the unit may have been reclaimed and
    /// re-leased while the original holder was still computing.
    fn complete(&mut self, index: usize, rows: Vec<QualityCase>) -> bool {
        if matches!(self.states[index], UnitState::Done) {
            self.acct.duplicates_rejected += 1;
            return false;
        }
        // a reclaimed-but-not-yet-releases unit sits in the queue; keep the
        // queue and the state table consistent
        if matches!(self.states[index], UnitState::Pending) {
            self.queue.retain(|&i| i != index);
        }
        self.states[index] = UnitState::Done;
        self.rows[index] = Some(rows);
        self.completed += 1;
        self.acct.completions_accepted += 1;
        true
    }
}

struct UnitPayload {
    hash: u64,
    bytes: Vec<u8>,
}

struct Shared {
    ledger: Mutex<Ledger>,
    cv: Condvar,
    shutdown: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    units: Vec<UnitPayload>,
    spec: Msg,
    lease: Duration,
    idle_retry_ms: u64,
}

/// A running coordinator; see the module docs.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: JoinHandle<Vec<JoinHandle<()>>>,
    drain: Duration,
}

impl Coordinator {
    /// Serves `configs` as work units on `cfg.addr`.
    pub fn start(configs: &[ScenarioConfig], cfg: CoordConfig) -> io::Result<Coordinator> {
        let units: Vec<UnitPayload> =
            configs.iter().map(|c| UnitPayload { hash: c.content_hash(), bytes: wire::encode_config(c) }).collect();
        let spec = Msg::Spec { scale: cfg.scale, epochs: cfg.epochs, methods: cfg.methods.clone(), units: units.len() };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            ledger: Mutex::new(Ledger::new(units.len())),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            units,
            spec,
            lease: cfg.lease,
            idle_retry_ms: cfg.idle_retry.as_millis() as u64,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Coordinator { shared, addr, accept, drain: cfg.drain })
    }

    /// The bound listen address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every unit is complete, drains and joins all worker
    /// connections, and returns the merged outcome.
    pub fn wait(self) -> SweepOutcome {
        {
            let mut ledger = self.shared.ledger.lock().expect("sweep ledger poisoned");
            while !ledger.done() {
                ledger = self.shared.cv.wait(ledger).expect("sweep ledger poisoned");
            }
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock the accept loop
        let handlers = self.accept.join().expect("sweep accept thread panicked");
        // drain: every healthy worker's next Pull is answered with Done and
        // its handler exits; give that a moment before force-closing the
        // rest (wedged stragglers, chaos-proxied leftovers)
        let deadline = Instant::now() + self.drain;
        while Instant::now() < deadline {
            if self.shared.conns.lock().expect("sweep conns poisoned").is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (_, stream) in self.shared.conns.lock().expect("sweep conns poisoned").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in handlers {
            let _ = handle.join();
        }
        // only now — after every handler finished — snapshot the ledger
        let mut ledger = self.shared.ledger.lock().expect("sweep ledger poisoned");
        let shards: Vec<Vec<QualityCase>> = ledger.rows.iter_mut().map(|r| r.take().unwrap_or_default()).collect();
        let rows = merge_quality_rows(&shards).expect("grid scenarios are distinct, completions are deduplicated");
        SweepOutcome { rows, accounting: ledger.acct, units: self.shared.units.len() }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handlers = Vec::new();
    let mut next_conn: u64 = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return handlers;
        }
        let conn = next_conn;
        next_conn += 1;
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("sweep conns poisoned").insert(conn, clone);
        }
        let shared = Arc::clone(&shared);
        handlers.push(std::thread::spawn(move || handle_conn(stream, conn, shared)));
    }
}

fn handle_conn(mut stream: TcpStream, conn: u64, shared: Arc<Shared>) {
    // the loop ends on clean hang-up (Ok(None)), truncation, frame or
    // protocol fault alike: either way the connection is gone and its
    // leases go back
    while let Ok(Some(msg)) = recv_msg(&mut stream) {
        let reply = match msg {
            Msg::Hello { .. } => shared.spec.clone(),
            Msg::Pull => {
                let now = Instant::now();
                let mut ledger = shared.ledger.lock().expect("sweep ledger poisoned");
                ledger.reclaim_expired(now);
                if let Some(index) = ledger.lease_next(conn, now + shared.lease) {
                    let unit = &shared.units[index];
                    Msg::Unit { index, hash: unit.hash, config: unit.bytes.clone() }
                } else if ledger.done() {
                    drop(ledger);
                    let _ = send_msg(&mut stream, &Msg::Done);
                    break;
                } else {
                    Msg::Idle { retry_ms: shared.idle_retry_ms }
                }
            }
            Msg::Result { index, hash, rows, .. } => {
                if index >= shared.units.len() || shared.units[index].hash != hash {
                    // a result for a unit this sweep never issued: protocol
                    // violation, drop the connection
                    break;
                }
                let accepted = {
                    let mut ledger = shared.ledger.lock().expect("sweep ledger poisoned");
                    let accepted = ledger.complete(index, rows);
                    if ledger.done() {
                        shared.cv.notify_all();
                    }
                    accepted
                };
                Msg::Ack { index, accepted }
            }
            // coordinator-to-worker kinds arriving here are a violation
            _ => break,
        };
        if send_msg(&mut stream, &reply).is_err() {
            break;
        }
    }
    shared.ledger.lock().expect("sweep ledger poisoned").disconnect(conn);
    shared.conns.lock().expect("sweep conns poisoned").remove(&conn);
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        // a fixed origin keeps the arithmetic readable
        static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        *ORIGIN.get_or_init(Instant::now) + Duration::from_millis(ms)
    }

    fn rows(tag: &str) -> Vec<QualityCase> {
        vec![QualityCase { scenario: tag.to_string(), method: "mv".to_string(), metrics: vec![] }]
    }

    #[test]
    fn units_are_leased_in_order_and_completed_exactly_once() {
        let mut ledger = Ledger::new(3);
        assert_eq!(ledger.lease_next(0, t(100)), Some(0));
        assert_eq!(ledger.lease_next(1, t(100)), Some(1));
        assert!(ledger.complete(0, rows("a")));
        assert!(ledger.complete(1, rows("b")));
        assert_eq!(ledger.lease_next(0, t(100)), Some(2));
        assert!(ledger.complete(2, rows("c")));
        assert!(ledger.done());
        assert_eq!(ledger.lease_next(0, t(100)), None);
        assert_eq!(ledger.acct, Accounting { completions_accepted: 3, duplicates_rejected: 0, reissues: 0 });
    }

    #[test]
    fn expired_leases_are_reissued() {
        let mut ledger = Ledger::new(1);
        assert_eq!(ledger.lease_next(0, t(100)), Some(0));
        ledger.reclaim_expired(t(50));
        assert_eq!(ledger.lease_next(1, t(200)), None, "not expired yet");
        ledger.reclaim_expired(t(100));
        assert_eq!(ledger.lease_next(1, t(300)), Some(0), "expired lease is leasable again");
        assert_eq!(ledger.acct.reissues, 1);
    }

    #[test]
    fn disconnect_reclaims_only_the_holders_leases() {
        let mut ledger = Ledger::new(2);
        ledger.lease_next(0, t(100));
        ledger.lease_next(1, t(100));
        ledger.disconnect(0);
        assert_eq!(ledger.acct.reissues, 1);
        assert_eq!(ledger.lease_next(2, t(200)), Some(0), "conn 0's unit came back");
        assert_eq!(ledger.lease_next(2, t(200)), None, "conn 1's lease is untouched");
    }

    #[test]
    fn duplicate_completions_are_rejected_first_wins() {
        let mut ledger = Ledger::new(1);
        ledger.lease_next(0, t(100));
        ledger.reclaim_expired(t(100));
        ledger.lease_next(1, t(200));
        // the original holder finishes first despite losing the lease
        assert!(ledger.complete(0, rows("first")));
        assert!(!ledger.complete(0, rows("second")));
        assert_eq!(ledger.rows[0].as_ref().unwrap()[0].scenario, "first");
        assert_eq!(ledger.acct, Accounting { completions_accepted: 1, duplicates_rejected: 1, reissues: 1 });
        assert!(ledger.done());
    }

    #[test]
    fn completing_a_reclaimed_unit_removes_it_from_the_queue() {
        let mut ledger = Ledger::new(1);
        ledger.lease_next(0, t(100));
        ledger.reclaim_expired(t(100)); // back in the queue
        assert!(ledger.complete(0, rows("late but first")));
        assert_eq!(ledger.lease_next(1, t(300)), None, "a completed unit must never be re-leased");
        assert!(ledger.done());
    }

    #[test]
    fn interleaved_faults_still_complete_every_unit_exactly_once() {
        // two workers, one straggling and one dying, over 4 units
        let mut ledger = Ledger::new(4);
        let a = ledger.lease_next(0, t(100)).unwrap();
        let b = ledger.lease_next(1, t(100)).unwrap();
        ledger.disconnect(1); // worker 1 dies holding `b`
        ledger.reclaim_expired(t(100)); // worker 0 straggles: `a` expires
        let c = ledger.lease_next(2, t(300)).unwrap();
        let d = ledger.lease_next(2, t(300)).unwrap();
        assert_eq!((c, d), (2, 3));
        assert!(ledger.complete(c, rows("c")));
        assert!(ledger.complete(d, rows("d")));
        let b2 = ledger.lease_next(2, t(300)).unwrap();
        assert_eq!(b2, b);
        assert!(ledger.complete(b2, rows("b")));
        assert!(ledger.complete(a, rows("a")), "the straggler's completion still counts");
        assert!(ledger.done());
        assert_eq!(ledger.acct, Accounting { completions_accepted: 4, duplicates_rejected: 0, reissues: 2 });
        assert!(ledger.rows.iter().all(|r| r.is_some()), "no unit lost");
    }
}
