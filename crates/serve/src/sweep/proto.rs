//! The sweep protocol messages and their JSON payload codec.
//!
//! One frame kind per message; request/response pairing is strict:
//!
//! ```text
//! worker                         coordinator
//! Hello {worker}          ->
//!                         <-     Spec {scale, epochs, methods, units}
//! Pull                    ->
//!                         <-     Unit {index, hash, config}   (work)
//!                         <-     Idle {retry_ms}              (nothing leasable yet)
//!                         <-     Done                         (sweep complete)
//! Result {index, hash,    ->
//!         rows, secs}
//!                         <-     Ack {index, accepted}
//! ```
//!
//! Payload fidelity: scenario configurations travel as
//! [`lncl_crowd::scenario::wire`] bytes (hex), the 64-bit content hash as a
//! 16-digit hex string (JSON numbers are `f64` and cannot carry a full
//! `u64`), and quality metrics as plain JSON numbers — the report JSON uses
//! shortest-roundtrip formatting, so a serialise → parse cycle reproduces
//! every `f64` bit-for-bit and the distributed sweep's merged table can be
//! compared to the serial one byte by byte.

use super::frame::{read_frame, write_frame, Frame};
use super::SweepError;
use lncl_bench::json::Json;
use lncl_bench::timing::QualityCase;
use lncl_bench::Scale;
use std::io::{Read, Write};

/// `Hello` — a worker introduces itself.
pub const K_HELLO: u8 = 1;
/// `Spec` — the coordinator pins the sweep parameters.
pub const K_SPEC: u8 = 2;
/// `Pull` — a worker asks for work.
pub const K_PULL: u8 = 3;
/// `Unit` — one leased work unit.
pub const K_UNIT: u8 = 4;
/// `Idle` — nothing leasable right now; retry later.
pub const K_IDLE: u8 = 5;
/// `Done` — every unit is complete; the worker may exit.
pub const K_DONE: u8 = 6;
/// `Result` — a completed unit's quality rows.
pub const K_RESULT: u8 = 7;
/// `Ack` — whether a `Result` was accepted (first completion) or
/// rejected (duplicate).
pub const K_ACK: u8 = 8;

/// A protocol message (see the module docs for the exchange).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker's opening message.
    Hello {
        /// Self-chosen worker name, for the coordinator's log.
        worker: String,
    },
    /// The coordinator's sweep parameters; workers obey these and never
    /// their own environment.
    Spec {
        /// Scale every unit runs at.
        scale: Scale,
        /// Training epochs per method run.
        epochs: usize,
        /// Optional registry-name filter (`None` = all supporting methods).
        methods: Option<Vec<String>>,
        /// Total number of units in the sweep, for logging.
        units: usize,
    },
    /// Work request.
    Pull,
    /// One work unit.
    Unit {
        /// Grid index of the unit (stable across re-issues).
        index: usize,
        /// [`lncl_crowd::scenario::ScenarioConfig::content_hash`] of the config.
        hash: u64,
        /// [`lncl_crowd::scenario::wire`]-encoded configuration.
        config: Vec<u8>,
    },
    /// Nothing leasable; ask again after `retry_ms`.
    Idle {
        /// Suggested back-off in milliseconds.
        retry_ms: u64,
    },
    /// Sweep complete.
    Done,
    /// A completed unit.
    Result {
        /// Grid index the rows belong to.
        index: usize,
        /// Content hash of the config the worker actually ran.
        hash: u64,
        /// The unit's quality rows ([`lncl_bench::quality::scenario_quality_rows`]).
        rows: Vec<QualityCase>,
        /// Worker-side wall clock for the unit, seconds.
        secs: f64,
    },
    /// Completion receipt.
    Ack {
        /// Grid index being acknowledged.
        index: usize,
        /// `false` means the unit was already done (duplicate) — the rows
        /// were discarded.
        accepted: bool,
    },
}

/// Why a frame is not a valid message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The kind byte names no message.
    UnknownKind(u8),
    /// The payload does not decode as the kind's schema.
    BadPayload {
        /// Kind of the offending frame.
        kind: u8,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::UnknownKind(kind) => write!(f, "unknown message kind {kind}"),
            ProtoError::BadPayload { kind, reason } => write!(f, "bad payload for kind {kind}: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl Msg {
    /// The frame kind of this message.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => K_HELLO,
            Msg::Spec { .. } => K_SPEC,
            Msg::Pull => K_PULL,
            Msg::Unit { .. } => K_UNIT,
            Msg::Idle { .. } => K_IDLE,
            Msg::Done => K_DONE,
            Msg::Result { .. } => K_RESULT,
            Msg::Ack { .. } => K_ACK,
        }
    }

    /// The JSON payload bytes (empty for `Pull` / `Done`).
    pub fn payload(&self) -> Vec<u8> {
        let json = match self {
            Msg::Pull | Msg::Done => return Vec::new(),
            Msg::Hello { worker } => Json::Obj(vec![("worker".into(), Json::Str(worker.clone()))]),
            Msg::Spec { scale, epochs, methods, units } => Json::Obj(vec![
                ("scale".into(), Json::Str(scale.name().to_string())),
                ("epochs".into(), Json::Num(*epochs as f64)),
                (
                    "methods".into(),
                    match methods {
                        None => Json::Null,
                        Some(names) => Json::Arr(names.iter().map(|n| Json::Str(n.clone())).collect()),
                    },
                ),
                ("units".into(), Json::Num(*units as f64)),
            ]),
            Msg::Unit { index, hash, config } => Json::Obj(vec![
                ("index".into(), Json::Num(*index as f64)),
                ("hash".into(), Json::Str(format!("{hash:016x}"))),
                ("config".into(), Json::Str(hex_encode(config))),
            ]),
            Msg::Idle { retry_ms } => Json::Obj(vec![("retry_ms".into(), Json::Num(*retry_ms as f64))]),
            Msg::Result { index, hash, rows, secs } => Json::Obj(vec![
                ("index".into(), Json::Num(*index as f64)),
                ("hash".into(), Json::Str(format!("{hash:016x}"))),
                ("rows".into(), Json::Arr(rows.iter().map(row_to_json).collect())),
                ("secs".into(), Json::Num(*secs)),
            ]),
            Msg::Ack { index, accepted } => {
                Json::Obj(vec![("index".into(), Json::Num(*index as f64)), ("accepted".into(), Json::Bool(*accepted))])
            }
        };
        json.render().into_bytes()
    }

    /// Decodes a frame into a message.
    pub fn decode(frame: &Frame) -> Result<Msg, ProtoError> {
        let bad = |reason: &str| ProtoError::BadPayload { kind: frame.kind, reason: reason.to_string() };
        if !(K_HELLO..=K_ACK).contains(&frame.kind) {
            return Err(ProtoError::UnknownKind(frame.kind));
        }
        if matches!(frame.kind, K_PULL | K_DONE) {
            if !frame.payload.is_empty() {
                return Err(bad("expected an empty payload"));
            }
            return Ok(if frame.kind == K_PULL { Msg::Pull } else { Msg::Done });
        }
        let text = std::str::from_utf8(&frame.payload).map_err(|_| bad("payload is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(&e))?;
        match frame.kind {
            K_HELLO => Ok(Msg::Hello { worker: str_field(&json, "worker").map_err(|e| bad(&e))?.to_string() }),
            K_SPEC => {
                let raw_scale = str_field(&json, "scale").map_err(|e| bad(&e))?;
                let scale = Scale::parse(raw_scale).ok_or_else(|| bad(&format!("unknown scale {raw_scale:?}")))?;
                let methods = match json.get("methods") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(items)) => Some(
                        items
                            .iter()
                            .map(|v| v.as_str().map(str::to_string).ok_or("non-string method name"))
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(bad)?,
                    ),
                    Some(_) => return Err(bad("methods must be null or an array of strings")),
                };
                Ok(Msg::Spec {
                    scale,
                    epochs: usize_field(&json, "epochs").map_err(|e| bad(&e))?,
                    methods,
                    units: usize_field(&json, "units").map_err(|e| bad(&e))?,
                })
            }
            K_UNIT => Ok(Msg::Unit {
                index: usize_field(&json, "index").map_err(|e| bad(&e))?,
                hash: hash_field(&json).map_err(|e| bad(&e))?,
                config: hex_decode(str_field(&json, "config").map_err(|e| bad(&e))?).map_err(|e| bad(&e))?,
            }),
            K_IDLE => Ok(Msg::Idle { retry_ms: usize_field(&json, "retry_ms").map_err(|e| bad(&e))? as u64 }),
            K_RESULT => {
                let rows = match json.get("rows") {
                    Some(Json::Arr(items)) => {
                        items.iter().map(row_from_json).collect::<Result<Vec<_>, _>>().map_err(|e| bad(&e))?
                    }
                    _ => return Err(bad("missing rows array")),
                };
                let secs = json.get("secs").and_then(Json::as_f64).ok_or_else(|| bad("missing secs"))?;
                Ok(Msg::Result {
                    index: usize_field(&json, "index").map_err(|e| bad(&e))?,
                    hash: hash_field(&json).map_err(|e| bad(&e))?,
                    rows,
                    secs,
                })
            }
            K_ACK => {
                let accepted = match json.get("accepted") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(bad("missing accepted flag")),
                };
                Ok(Msg::Ack { index: usize_field(&json, "index").map_err(|e| bad(&e))?, accepted })
            }
            kind => unreachable!("kind {kind} was validated above"),
        }
    }
}

/// Writes one message as a frame.
pub fn send_msg(w: &mut impl Write, msg: &Msg) -> std::io::Result<()> {
    write_frame(w, msg.kind(), &msg.payload())
}

/// Reads one message; `Ok(None)` on clean EOF.
pub fn recv_msg(r: &mut impl Read) -> Result<Option<Msg>, SweepError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(frame) => Ok(Some(Msg::decode(&frame)?)),
    }
}

fn row_to_json(row: &QualityCase) -> Json {
    Json::Obj(vec![
        ("scenario".into(), Json::Str(row.scenario.clone())),
        ("method".into(), Json::Str(row.method.clone())),
        (
            "metrics".into(),
            Json::Arr(row.metrics.iter().map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v)])).collect()),
        ),
    ])
}

fn row_from_json(json: &Json) -> Result<QualityCase, String> {
    let metrics = match json.get("metrics") {
        Some(Json::Arr(pairs)) => pairs
            .iter()
            .map(|pair| match pair.as_array() {
                Some([Json::Str(k), Json::Num(v)]) => Ok((k.clone(), *v)),
                _ => Err("metric entries must be [name, value] pairs".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("row is missing its metrics array".into()),
    };
    Ok(QualityCase {
        scenario: str_field(json, "scenario")?.to_string(),
        method: str_field(json, "method")?.to_string(),
        metrics,
    })
}

fn str_field<'j>(json: &'j Json, key: &str) -> Result<&'j str, String> {
    json.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string field {key:?}"))
}

fn usize_field(json: &Json, key: &str) -> Result<usize, String> {
    let n = json.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 {
        Ok(n as usize)
    } else {
        Err(format!("field {key:?} is not a non-negative integer: {n}"))
    }
}

fn hash_field(json: &Json) -> Result<u64, String> {
    let raw = str_field(json, "hash")?;
    u64::from_str_radix(raw, 16).map_err(|_| format!("hash {raw:?} is not 64-bit hex"))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("hex string has odd length".into());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(text.get(i..i + 2).ok_or("hex string split a character")?, 16)
                .map_err(|_| format!("invalid hex at byte {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let frame = Frame { kind: msg.kind(), payload: msg.payload() };
        assert_eq!(Msg::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip(Msg::Hello { worker: "w0".into() });
        round_trip(Msg::Spec { scale: Scale::Tiny, epochs: 3, methods: None, units: 26 });
        round_trip(Msg::Spec {
            scale: Scale::Paper,
            epochs: 30,
            methods: Some(vec!["mv".into(), "dawid-skene".into()]),
            units: 1,
        });
        round_trip(Msg::Pull);
        round_trip(Msg::Unit { index: 3, hash: u64::MAX, config: vec![0, 1, 255, 16] });
        round_trip(Msg::Idle { retry_ms: 50 });
        round_trip(Msg::Done);
        round_trip(Msg::Result {
            index: 7,
            hash: 0xdead_beef_0123_4567,
            rows: vec![QualityCase {
                scenario: "sent/clean".into(),
                method: "mv".into(),
                metrics: vec![("headline".into(), 0.1 + 0.2), ("f1".into(), f64::MIN_POSITIVE)],
            }],
            secs: 1.25,
        });
        round_trip(Msg::Ack { index: 7, accepted: false });
    }

    #[test]
    fn metric_values_survive_bit_for_bit() {
        let awkward = [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 2.0f64.powi(60)];
        let msg = Msg::Result {
            index: 0,
            hash: 1,
            rows: vec![QualityCase {
                scenario: "s".into(),
                method: "m".into(),
                metrics: awkward.iter().enumerate().map(|(i, v)| (format!("k{i}"), *v)).collect(),
            }],
            secs: 0.0,
        };
        let frame = Frame { kind: msg.kind(), payload: msg.payload() };
        match Msg::decode(&frame).unwrap() {
            Msg::Result { rows, .. } => {
                for (got, want) in rows[0].metrics.iter().zip(&awkward) {
                    assert_eq!(got.1.to_bits(), want.to_bits(), "{want} changed bits in transit");
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let cases: &[(u8, &[u8])] = &[
            (K_HELLO, b"{}"),
            (K_HELLO, b"not json"),
            (K_HELLO, &[0xff, 0xfe]),
            (K_SPEC, br#"{"scale": "galactic", "epochs": 1, "units": 1}"#),
            (K_SPEC, br#"{"scale": "tiny", "epochs": -1, "units": 1}"#),
            (K_SPEC, br#"{"scale": "tiny", "epochs": 1.5, "units": 1}"#),
            (K_SPEC, br#"{"scale": "tiny", "epochs": 1, "methods": "mv", "units": 1}"#),
            (K_UNIT, br#"{"index": 0, "hash": "xyz", "config": ""}"#),
            (K_UNIT, br#"{"index": 0, "hash": "0f", "config": "abc"}"#),
            (K_RESULT, br#"{"index": 0, "hash": "0f", "secs": 1.0}"#),
            (K_RESULT, br#"{"index": 0, "hash": "0f", "rows": [{"scenario": "s"}], "secs": 1.0}"#),
            (K_ACK, br#"{"index": 0}"#),
            (K_PULL, b"{}"),
            (K_DONE, b" "),
        ];
        for (kind, payload) in cases {
            let frame = Frame { kind: *kind, payload: payload.to_vec() };
            assert!(
                matches!(Msg::decode(&frame), Err(ProtoError::BadPayload { .. })),
                "kind {kind} payload {payload:?} should be rejected"
            );
        }
        let frame = Frame { kind: 99, payload: Vec::new() };
        assert_eq!(Msg::decode(&frame), Err(ProtoError::UnknownKind(99)));
    }

    #[test]
    fn hex_helpers_round_trip_and_reject() {
        assert_eq!(hex_encode(&[0, 15, 255]), "000fff");
        assert_eq!(hex_decode("000fff").unwrap(), vec![0, 15, 255]);
        assert!(hex_decode("f").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
