//! The sweep worker: connect, learn the sweep spec, pull → run → report
//! until the coordinator says `Done`.
//!
//! Two decisions keep a heterogeneous or flaky fleet from forking the
//! result:
//!
//! * **The spec wins.**  Scale, epoch count and the method filter come
//!   from the coordinator's `Spec`, never from the worker's own
//!   environment — a worker started with a stray `LNCL_SCALE` produces
//!   the same rows as everyone else.  Each unit's config is decoded from
//!   wire bytes and its [`ScenarioConfig::content_hash`] is checked
//!   against the advertised hash before running.
//! * **Reconnect, don't abort.**  A lost connection (the coordinator's
//!   lease fence, a chaos proxy, a network blip) triggers a bounded
//!   reconnect with a fresh `Hello`/`Spec` exchange; the coordinator's
//!   ledger makes re-pulled work safe.  Stray `Ack` frames — the visible
//!   residue of a duplicated `Result` — are skipped while awaiting a
//!   `Pull` response.

use super::frame::FrameError;
use super::proto::{recv_msg, send_msg, Msg, K_ACK};
use super::SweepError;
use lncl_bench::quality::scenario_quality_rows;
use lncl_bench::run_scenario_outcome_with_epochs;
use lncl_crowd::scenario::{wire, ScenarioCache, ScenarioConfig};
use logic_lncl::method::MethodRegistry;
use std::io::ErrorKind;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Name sent in `Hello`, for the coordinator's log.
    pub name: String,
    /// Threads used *within* one unit (method parallelism).
    pub method_parallelism: usize,
    /// Connection attempts (100 ms apart) before giving up — workers may
    /// be started before the coordinator.
    pub connect_attempts: usize,
    /// How many mid-sweep connection losses to survive before erroring.
    pub max_reconnects: usize,
}

impl WorkerConfig {
    /// Defaults: single-threaded methods, 50 connect attempts (5 s),
    /// 5 reconnects.
    pub fn new(addr: impl Into<String>, name: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            name: name.into(),
            method_parallelism: 1,
            connect_attempts: 50,
            max_reconnects: 5,
        }
    }
}

/// What a worker did before the coordinator dismissed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The `Hello` name.
    pub name: String,
    /// Units whose `Result` was accepted.
    pub completed: usize,
    /// Units whose `Result` was rejected as a duplicate (somebody else
    /// finished first, typically after a lease reissue).
    pub duplicates: usize,
    /// Mid-sweep reconnects survived.
    pub reconnects: usize,
}

/// Why a worker gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The coordinator never answered the door.
    Connect {
        /// Address dialled.
        addr: String,
        /// Attempts made.
        attempts: usize,
    },
    /// Connection losses exceeded [`WorkerConfig::max_reconnects`].
    Disconnected {
        /// Reconnects already burned.
        reconnects: usize,
    },
    /// The coordinator broke the protocol (bad frame kind, malformed
    /// payload, a reply out of sequence).
    Protocol(String),
    /// A unit's config bytes did not decode, or decoded to a different
    /// content hash than advertised.
    BadUnit {
        /// Unit index.
        index: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Connect { addr, attempts } => {
                write!(f, "could not connect to the coordinator at {addr} after {attempts} attempt(s)")
            }
            WorkerError::Disconnected { reconnects } => {
                write!(f, "connection lost and {reconnects} reconnect(s) exhausted")
            }
            WorkerError::Protocol(reason) => write!(f, "coordinator protocol violation: {reason}"),
            WorkerError::BadUnit { index, reason } => write!(f, "unit {index} is invalid: {reason}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Runs the pull loop until `Done`; see the module docs.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, WorkerError> {
    let registry = MethodRegistry::standard();
    let cache = ScenarioCache::new();
    let mut summary = WorkerSummary { name: cfg.name.clone(), completed: 0, duplicates: 0, reconnects: 0 };
    loop {
        let mut stream = connect(cfg)?;
        match session(cfg, &mut stream, &registry, &cache, &mut summary) {
            Ok(()) => return Ok(summary),
            Err(SessionFault::Fatal(err)) => return Err(err),
            Err(SessionFault::Lost) => {
                summary.reconnects += 1;
                if summary.reconnects > cfg.max_reconnects {
                    return Err(WorkerError::Disconnected { reconnects: summary.reconnects - 1 });
                }
            }
        }
    }
}

enum SessionFault {
    /// The connection died; reconnect and resume.
    Lost,
    /// Unrecoverable — stop the worker.
    Fatal(WorkerError),
}

impl From<SweepError> for SessionFault {
    fn from(err: SweepError) -> Self {
        match err {
            // a truncated or interrupted stream is a connection fault;
            // framing/protocol *content* errors are the coordinator's bug
            SweepError::Frame(FrameError::Truncated { .. }) | SweepError::Frame(FrameError::Io(_)) => {
                SessionFault::Lost
            }
            other => SessionFault::Fatal(WorkerError::Protocol(other.to_string())),
        }
    }
}

fn connect(cfg: &WorkerConfig) -> Result<TcpStream, WorkerError> {
    for attempt in 0..cfg.connect_attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        if let Ok(stream) = TcpStream::connect(&cfg.addr) {
            let _ = stream.set_nodelay(true);
            return Ok(stream);
        }
    }
    Err(WorkerError::Connect { addr: cfg.addr.clone(), attempts: cfg.connect_attempts })
}

fn session(
    cfg: &WorkerConfig,
    stream: &mut TcpStream,
    registry: &MethodRegistry,
    cache: &ScenarioCache,
    summary: &mut WorkerSummary,
) -> Result<(), SessionFault> {
    send(stream, &Msg::Hello { worker: cfg.name.clone() })?;
    let (scale, epochs, methods) = match recv(stream)? {
        Msg::Spec { scale, epochs, methods, .. } => (scale, epochs, methods),
        other => return Err(SessionFault::Fatal(WorkerError::Protocol(format!("expected Spec, got {other:?}")))),
    };
    let method_refs: Option<Vec<&str>> = methods.as_ref().map(|m| m.iter().map(String::as_str).collect());
    loop {
        send(stream, &Msg::Pull)?;
        match recv_skipping_acks(stream)? {
            Msg::Unit { index, hash, config } => {
                let config = wire::decode_config(&config)
                    .map_err(|e| SessionFault::Fatal(WorkerError::BadUnit { index, reason: e.to_string() }))?;
                if config.content_hash() != hash {
                    return Err(SessionFault::Fatal(WorkerError::BadUnit {
                        index,
                        reason: format!("content hash {:016x} != advertised {hash:016x}", config.content_hash()),
                    }));
                }
                let started = Instant::now();
                let rows = run_unit(&config, scale, epochs, registry, method_refs.as_deref(), cache, cfg);
                send(stream, &Msg::Result { index, hash, rows, secs: started.elapsed().as_secs_f64() })?;
                match recv(stream)? {
                    Msg::Ack { accepted: true, .. } => summary.completed += 1,
                    Msg::Ack { accepted: false, .. } => summary.duplicates += 1,
                    other => {
                        return Err(SessionFault::Fatal(WorkerError::Protocol(format!("expected Ack, got {other:?}"))))
                    }
                }
            }
            Msg::Idle { retry_ms } => std::thread::sleep(Duration::from_millis(retry_ms)),
            Msg::Done => return Ok(()),
            other => {
                return Err(SessionFault::Fatal(WorkerError::Protocol(format!(
                    "expected Unit/Idle/Done, got {other:?}"
                ))))
            }
        }
    }
}

fn run_unit(
    config: &ScenarioConfig,
    scale: lncl_bench::Scale,
    epochs: usize,
    registry: &MethodRegistry,
    methods: Option<&[&str]>,
    cache: &ScenarioCache,
    cfg: &WorkerConfig,
) -> Vec<lncl_bench::timing::QualityCase> {
    let outcome =
        run_scenario_outcome_with_epochs(config, scale, epochs, registry, methods, cache, cfg.method_parallelism);
    scenario_quality_rows(&outcome)
}

fn send(stream: &mut TcpStream, msg: &Msg) -> Result<(), SessionFault> {
    send_msg(stream, msg).map_err(|e| match e.kind() {
        ErrorKind::InvalidInput => SessionFault::Fatal(WorkerError::Protocol(e.to_string())),
        _ => SessionFault::Lost,
    })
}

fn recv(stream: &mut TcpStream) -> Result<Msg, SessionFault> {
    match recv_msg(stream) {
        Ok(Some(msg)) => Ok(msg),
        Ok(None) => Err(SessionFault::Lost),
        Err(err) => Err(err.into()),
    }
}

/// Receives the response to a `Pull`, skipping stray `Ack` frames — the
/// residue a fault (or chaos proxy) duplicating a `Result` leaves behind.
fn recv_skipping_acks(stream: &mut TcpStream) -> Result<Msg, SessionFault> {
    loop {
        let msg = recv(stream)?;
        if msg.kind() != K_ACK {
            return Ok(msg);
        }
    }
}
