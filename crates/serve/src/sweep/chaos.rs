//! A fault-injecting loopback TCP proxy for the sweep's integration
//! tests.
//!
//! Workers connect to the proxy instead of the coordinator; the proxy
//! forwards bytes in both directions and applies one [`FaultPlan`] per
//! accepted connection (plans are consumed in accept order, then
//! everything is clean).  The client→coordinator direction is parsed at
//! the frame layer so faults can target specific message kinds:
//!
//! * kill the connection after N client frames (a worker dying mid-unit,
//!   lease held);
//! * truncate a frame of a given kind mid-payload and sever (a crash
//!   mid-write — the coordinator must treat the partial frame as a fault,
//!   not a completion);
//! * duplicate every frame of a given kind (an at-least-once network
//!   retrying a `Result` — the coordinator must dedupe);
//! * delay every coordinator→worker read by a fixed amount (slow acks —
//!   leases may expire and units get re-issued even though everyone is
//!   alive).

use super::frame::{read_frame, write_frame};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What to do to one proxied connection.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sever both directions after forwarding this many client frames.
    pub kill_after_client_frames: Option<usize>,
    /// Forward only half the payload of the first client frame of this
    /// kind, then sever.
    pub truncate_client_kind: Option<u8>,
    /// Forward every client frame of this kind twice.
    pub duplicate_client_kind: Option<u8>,
    /// Sleep this long before forwarding each coordinator→worker read.
    pub delay_server_ms: u64,
}

impl FaultPlan {
    /// A faithful pass-through.
    pub fn clean() -> Self {
        FaultPlan::default()
    }
}

/// A running proxy; connections accepted on [`ChaosProxy::addr`] are
/// forwarded to the upstream coordinator.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on a free loopback port forwarding to `upstream`;
    /// the `n`-th accepted connection gets `plans[n]` (clean once
    /// exhausted).
    pub fn start(upstream: SocketAddr, plans: Vec<FaultPlan>) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let plans = Arc::new(Mutex::new(plans.into_iter()));
            std::thread::spawn(move || {
                while let Ok((client, _)) = listener.accept() {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let plan = plans.lock().expect("chaos plans poisoned").next().unwrap_or_default();
                    let server = match TcpStream::connect(upstream) {
                        Ok(server) => server,
                        Err(_) => continue, // upstream gone: drop the client
                    };
                    spawn_pipes(client, server, plan);
                }
            })
        };
        Ok(ChaosProxy { addr, shutdown, accept: Some(accept) })
    }

    /// The proxy's listen address — point workers here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn spawn_pipes(client: TcpStream, server: TcpStream, plan: FaultPlan) {
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        sever(&client, &server);
        return;
    };
    // client → server: frame-parsed, faults applied
    {
        let plan = plan.clone();
        let (mut from, mut to) = (client_r, server);
        std::thread::spawn(move || {
            let mut forwarded = 0usize;
            while let Ok(Some(frame)) = read_frame(&mut from) {
                if plan.truncate_client_kind == Some(frame.kind) {
                    let mut partial = Vec::new();
                    let _ = write_frame(&mut partial, frame.kind, &frame.payload);
                    // an empty payload is cut mid-header so the stub is
                    // never mistaken for a complete frame
                    let cut = if frame.payload.is_empty() { 4 } else { 8 + frame.payload.len() / 2 };
                    let _ = to.write_all(&partial[..cut]);
                    let _ = to.flush();
                    break;
                }
                if write_frame(&mut to, frame.kind, &frame.payload).is_err() {
                    break;
                }
                if plan.duplicate_client_kind == Some(frame.kind)
                    && write_frame(&mut to, frame.kind, &frame.payload).is_err()
                {
                    break;
                }
                forwarded += 1;
                if plan.kill_after_client_frames == Some(forwarded) {
                    break;
                }
            }
            sever(&from, &to);
        });
    }
    // server → client: plain byte pipe, optionally delayed
    {
        let (mut from, mut to) = (server_r, client);
        std::thread::spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                let n = match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                if plan.delay_server_ms > 0 {
                    std::thread::sleep(Duration::from_millis(plan.delay_server_ms));
                }
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    break;
                }
            }
            sever(&from, &to);
        });
    }
}
