//! Length-prefixed binary framing for the sweep protocol.
//!
//! Every frame is an 8-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic `b"LS"`
//! 2       1     protocol version ([`FRAME_VERSION`])
//! 3       1     message kind (interpreted by [`super::proto`])
//! 4       4     payload length, big-endian u32 (<= [`MAX_PAYLOAD`])
//! 8       len   payload bytes
//! ```
//!
//! [`read_frame`] distinguishes a *clean* end of stream (EOF exactly at a
//! frame boundary, `Ok(None)`) from a *truncated* one (EOF inside a header
//! or payload, [`FrameError::Truncated`]) — the coordinator treats the
//! former as a worker hanging up and the latter as a fault, but reclaims
//! outstanding leases either way.

use std::io::{self, Read, Write};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"LS";

/// Wire version; a bump invalidates all older peers.
pub const FRAME_VERSION: u8 = 1;

/// Hard cap on payload size — far above any real message (the largest is
/// a `Result` with one scenario's quality rows) but small enough that a
/// corrupted length field cannot trigger a giant allocation.
pub const MAX_PAYLOAD: usize = 8 << 20;

/// One decoded frame: the kind byte and the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (see the `K_*` constants in [`super::proto`]).
    pub kind: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Why a byte stream is not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte did not match [`FRAME_VERSION`].
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// EOF inside a header or payload.
    Truncated {
        /// Bytes the section needed.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The underlying reader failed.
    Io(io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v} (expected {FRAME_VERSION})"),
            FrameError::Oversized(len) => write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} byte(s), got {got}")
            }
            FrameError::Io(kind) => write!(f, "read failed: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame and flushes the writer.
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — the protocol layer never
/// builds such a message.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_PAYLOAD, "write_frame: payload of {} bytes exceeds the cap", payload.len());
    let mut header = [0u8; 8];
    header[..2].copy_from_slice(&MAGIC);
    header[2] = FRAME_VERSION;
    header[3] = kind;
    header[4..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; 8];
    match read_up_to(r, &mut header)? {
        0 => return Ok(None),
        8 => {}
        got => return Err(FrameError::Truncated { expected: 8, got }),
    }
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    if header[2] != FRAME_VERSION {
        return Err(FrameError::BadVersion(header[2]));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len as usize > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_up_to(r, &mut payload)?;
    if got != payload.len() {
        return Err(FrameError::Truncated { expected: payload.len(), got });
    }
    Ok(Some(Frame { kind: header[3], payload }))
}

/// Fills `buf` as far as the stream allows; the count stops short of
/// `buf.len()` only at EOF.
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 1024][..]] {
            let bytes = encode(7, payload);
            let mut r = &bytes[..];
            let frame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(frame, Frame { kind: 7, payload: payload.to_vec() });
            assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the frame");
        }
    }

    #[test]
    fn consecutive_frames_parse_in_order() {
        let mut bytes = encode(1, b"a");
        bytes.extend(encode(2, b"bb"));
        let mut r = &bytes[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap().kind, 1);
        assert_eq!(read_frame(&mut r).unwrap().unwrap().payload, b"bb");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
    }

    #[test]
    fn rejection_table() {
        let good = encode(3, b"payload");
        // wrong magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(read_frame(&mut &bad[..]), Err(FrameError::BadMagic([b'X', b'S'])));
        // wrong version
        let mut bad = good.clone();
        bad[2] = FRAME_VERSION + 1;
        assert_eq!(read_frame(&mut &bad[..]), Err(FrameError::BadVersion(FRAME_VERSION + 1)));
        // over-length declaration
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        assert_eq!(read_frame(&mut &bad[..]), Err(FrameError::Oversized(MAX_PAYLOAD as u32 + 1)));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let good = encode(3, b"payload");
        for cut in 1..good.len() {
            let err = read_frame(&mut &good[..cut]).expect_err("truncated at byte {cut}");
            assert!(matches!(err, FrameError::Truncated { .. }), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn truncation_reports_header_vs_payload() {
        let good = encode(3, b"payload");
        assert_eq!(read_frame(&mut &good[..4]), Err(FrameError::Truncated { expected: 8, got: 4 }));
        assert_eq!(read_frame(&mut &good[..10]), Err(FrameError::Truncated { expected: 7, got: 2 }));
    }
}
