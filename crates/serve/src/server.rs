//! The TCP front end: accept loop, worker pool, connection lifecycle.
//!
//! [`Server::start`] binds a `TcpListener`, spawns one supervisor thread
//! and hands accepted connections to a fixed pool of workers over an mpsc
//! channel (`std::thread` only — the workspace ships no async runtime).
//! Workers speak keep-alive HTTP/1.1 via [`crate::http`] and dispatch into
//! the shared [`AppState`]; a panicking request handler answers `500` and
//! the worker lives on, so one bad request can never kill the accept loop.

use crate::http::{parse_request, reason_phrase, write_response};
use crate::state::AppState;
use lncl_bench::json::Json;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How a [`Server`] is started.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (reported by
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection read timeout; an idle keep-alive connection is
    /// dropped after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".to_string(), workers: 4, read_timeout: Duration::from_secs(5) }
    }
}

/// A running service; dropping it (or calling [`Server::stop`]) shuts the
/// listener and workers down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and returns immediately.
    pub fn start(state: Arc<AppState>, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "server needs at least one worker thread");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || supervise(listener, state, shutdown, &config))
        };
        Ok(Server { addr, state, shutdown, supervisor: Some(supervisor) })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state the workers dispatch into.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Signals shutdown and joins the supervisor (and thereby every
    /// worker).  Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the accept loop with one throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accept loop plus scoped worker pool; returns once shutdown is signalled.
fn supervise(listener: TcpListener, state: Arc<AppState>, shutdown: Arc<AtomicBool>, config: &ServerConfig) {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            let rx = &rx;
            let state = &state;
            let timeout = config.read_timeout;
            scope.spawn(move || {
                loop {
                    // hold the lock only while receiving, not while serving
                    let received = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
                    match received {
                        Ok(stream) => serve_connection(stream, state, timeout),
                        Err(_) => break, // sender dropped: shutdown
                    }
                }
            });
        }
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx); // workers drain the queue, then exit
    });
}

/// Serves one keep-alive connection until close, error or idle timeout.
fn serve_connection(stream: TcpStream, state: &AppState, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match parse_request(&mut reader) {
            Ok(None) => return,
            Err(error) => {
                let (status, reason) = error.status();
                let body = Json::Obj(vec![("error".to_string(), Json::Str(error.message().to_string()))]).render();
                let _ = write_response(&mut writer, status, reason, &[], &body, true);
                return;
            }
            Ok(Some(request)) => {
                // a handler panic answers 500 and keeps the worker alive
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    state.handle(&request.method, &request.path, &request.body)
                }));
                let (status, body, allow) = match outcome {
                    Ok(response) => (response.status, response.body.render(), response.allow),
                    Err(_) => (
                        500,
                        Json::Obj(vec![("error".to_string(), Json::Str("internal error".to_string()))]).render(),
                        None,
                    ),
                };
                let headers: Vec<(&str, &str)> = allow.map(|v| ("Allow", v)).into_iter().collect();
                let close = request.close;
                if write_response(&mut writer, status, reason_phrase(status), &headers, &body, close).is_err() || close
                {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::truth::streaming::StreamingConfig;
    use std::io::{Read, Write};

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn server_answers_healthz_and_shuts_down() {
        let state = Arc::new(AppState::new(StreamingConfig::pooled(2)));
        let mut server = Server::start(state, ServerConfig::default()).unwrap();
        let response = request(server.addr(), "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"ok\": true"), "{response}");
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let state = Arc::new(AppState::new(StreamingConfig::pooled(2)));
        let server = Server::start(state, ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            stream.write_all(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
            // read exactly one framed response: status line, headers,
            // Content-Length body (TCP reads may be short)
            let mut status_line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut status_line).unwrap();
            assert!(status_line.starts_with("HTTP/1.1 200 OK"), "{status_line}");
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("\"mode\""));
        }
    }
}
