//! Distributed scenario-sweep orchestration: one coordinator serving the
//! sweep grid as content-hashed work units over TCP, any number of
//! work-stealing workers pulling units, and a merged quality table that is
//! **bitwise identical** to the serial `scenario_sweep` run regardless of
//! worker count, interleaving, crashes or duplicated completions.
//!
//! The layering mirrors the HTTP side of this crate — everything above the
//! socket is unit-testable:
//!
//! * [`frame`] — length-prefixed binary frames (magic, version, kind,
//!   big-endian payload length) with a hard payload cap and typed
//!   rejection of malformed input.
//! * [`proto`] — the eight message kinds (`Hello`/`Spec`/`Pull`/`Unit`/
//!   `Idle`/`Done`/`Result`/`Ack`) with JSON payloads.  Scenario
//!   configurations travel as [`lncl_crowd::scenario::wire`] bytes plus
//!   their content hash; quality metrics survive the JSON round trip
//!   bit-for-bit (shortest-roundtrip `f64` formatting).
//! * [`coord`] — the coordinator: a lease ledger (pending / leased /
//!   done), expiry- and disconnect-triggered re-issue, first-completion-
//!   wins deduplication and collision-checked merging.
//! * [`worker`] — the pull loop: connect (with retry), receive the sweep
//!   [`proto::Msg::Spec`], then pull → run → report until `Done`.
//!   Workers take scale / epochs / method filter from the spec, never
//!   from their own environment, so a heterogeneous fleet cannot fork
//!   the result.
//! * [`chaos`] — a fault-injecting loopback proxy for the integration
//!   tests: kill connections mid-unit, truncate frames, duplicate
//!   completions, delay the coordinator's responses.
//!
//! Why the merge is sound: every unit is a [`lncl_crowd::scenario::ScenarioConfig`]
//! whose method runs are bitwise seed-deterministic, so *any* successful
//! completion of a unit produces the same quality rows — accepting the
//! first and rejecting duplicates cannot change the table.  The
//! coordinator's merged report is built by the same
//! [`lncl_bench::quality::quality_only_report`] constructor the serial
//! sweep uses (`LNCL_SWEEP_QUALITY_ONLY=1`), making "distributed equals
//! serial" a literal file comparison.
//!
//! The `sweep_coord` / `sweep_worker` binaries wire this up from
//! `LNCL_COORD_ADDR` / `LNCL_LEASE_MS` / `LNCL_SCALE` / `LNCL_EPOCHS` /
//! `LNCL_SWEEP_METHODS`; see the crate README and `ARCHITECTURE.md`.

pub mod chaos;
pub mod coord;
pub mod frame;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosProxy, FaultPlan};
pub use coord::{Accounting, CoordConfig, Coordinator, SweepOutcome};
pub use frame::{Frame, FrameError};
pub use proto::{Msg, ProtoError};
pub use worker::{run_worker, WorkerConfig, WorkerError, WorkerSummary};

/// Anything that can go wrong receiving a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The byte stream violated the framing layer.
    Frame(FrameError),
    /// The frame carried an unknown kind or a malformed payload.
    Proto(ProtoError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Frame(e) => write!(f, "frame error: {e}"),
            SweepError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<FrameError> for SweepError {
    fn from(e: FrameError) -> Self {
        SweepError::Frame(e)
    }
}

impl From<ProtoError> for SweepError {
    fn from(e: ProtoError) -> Self {
        SweepError::Proto(e)
    }
}
