//! The typed route table: every URL the service answers, as data.
//!
//! [`Route::parse`] is the single place request lines become API
//! operations — the dispatch in [`crate::state`] matches exhaustively on
//! [`Route`], so adding a variant here forces every layer (handler,
//! docs, tests) to acknowledge it at compile time instead of silently
//! falling through a stringly `match (method, path)`.
//!
//! Parse failures are typed too: [`RouteError::NotFound`] for paths the
//! service has never heard of, [`RouteError::MethodNotAllowed`] for known
//! paths hit with the wrong verb — carrying the exact `Allow` header
//! value the HTTP layer must emit with the `405`.

/// One parsed API operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /labels` — ingest one label or a `{"labels": [...]}` batch.
    PostLabels,
    /// `POST /finalize` — full batch EM over everything ingested.
    PostFinalize,
    /// `POST /assign` — plan the next routed assignments from live
    /// estimates (see [`crate::state::AppState`]).
    PostAssign,
    /// `GET /budget` — label-budget accounting and the active policy.
    GetBudget,
    /// `GET /healthz` — liveness.
    GetHealthz,
    /// `GET /stats` — counters and estimator mode.
    GetStats,
    /// `GET /consensus/<instance>` — posterior for one instance.
    GetConsensus {
        /// External instance id (non-empty).
        instance: String,
    },
    /// `GET /annotators/<id>` — live statistics for one annotator.
    GetAnnotator {
        /// External annotator id (non-empty).
        annotator: String,
    },
}

/// A request line that maps to no operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The path exists in no method's table → `404`.
    NotFound,
    /// The path exists, the method does not → `405` with this exact
    /// `Allow` header value.
    MethodNotAllowed {
        /// Comma-separated methods the path supports.
        allow: &'static str,
    },
}

impl Route {
    /// Parses an upper-cased method plus a query-stripped path into a
    /// [`Route`].  Empty parameter segments (`/consensus/`) are
    /// [`RouteError::NotFound`] — there is no instance named `""` to have
    /// an opinion about methods on.
    pub fn parse(method: &str, path: &str) -> Result<Route, RouteError> {
        let fixed: &[(&str, &str, Route)] = &[
            ("POST", "/labels", Route::PostLabels),
            ("POST", "/finalize", Route::PostFinalize),
            ("POST", "/assign", Route::PostAssign),
            ("GET", "/budget", Route::GetBudget),
            ("GET", "/healthz", Route::GetHealthz),
            ("GET", "/stats", Route::GetStats),
        ];
        if let Some((allow, _, route)) = fixed.iter().find(|(_, p, _)| *p == path) {
            return if *allow == method { Ok(route.clone()) } else { Err(RouteError::MethodNotAllowed { allow }) };
        }
        for (prefix, make) in [
            ("/consensus/", (|id| Route::GetConsensus { instance: id }) as fn(String) -> Route),
            ("/annotators/", |id| Route::GetAnnotator { annotator: id }),
        ] {
            if let Some(id) = path.strip_prefix(prefix) {
                if id.is_empty() {
                    return Err(RouteError::NotFound);
                }
                return if method == "GET" {
                    Ok(make(id.to_string()))
                } else {
                    Err(RouteError::MethodNotAllowed { allow: "GET" })
                };
            }
        }
        Err(RouteError::NotFound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every route in the table, with a representative path.
    const TABLE: &[(&str, &str)] = &[
        ("POST", "/labels"),
        ("POST", "/finalize"),
        ("POST", "/assign"),
        ("GET", "/budget"),
        ("GET", "/healthz"),
        ("GET", "/stats"),
        ("GET", "/consensus/i0"),
        ("GET", "/annotators/a0"),
    ];

    #[test]
    fn every_route_parses_under_its_own_method() {
        for &(method, path) in TABLE {
            let route = Route::parse(method, path).unwrap_or_else(|e| panic!("{method} {path}: {e:?}"));
            match path {
                "/consensus/i0" => assert_eq!(route, Route::GetConsensus { instance: "i0".to_string() }),
                "/annotators/a0" => assert_eq!(route, Route::GetAnnotator { annotator: "a0".to_string() }),
                _ => {}
            }
        }
    }

    #[test]
    fn every_route_rejects_every_wrong_method_with_the_right_allow() {
        for &(method, path) in TABLE {
            for wrong in ["GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"] {
                if wrong == method {
                    continue;
                }
                match Route::parse(wrong, path) {
                    Err(RouteError::MethodNotAllowed { allow }) => {
                        assert_eq!(allow, method, "{wrong} {path} should advertise Allow: {method}")
                    }
                    other => panic!("{wrong} {path}: expected 405, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn malformed_parameters_and_unknown_paths_are_not_found() {
        for (method, path) in [
            ("GET", "/consensus/"),  // empty instance id
            ("POST", "/consensus/"), // still 404: no resource to 405 about
            ("GET", "/annotators/"), // empty annotator id
            ("GET", "/consensus"),   // missing trailing segment entirely
            ("GET", "/"),
            ("GET", "/nope"),
            ("POST", "/labels/extra"),
            ("GET", "/budget/extra"),
        ] {
            assert_eq!(Route::parse(method, path), Err(RouteError::NotFound), "{method} {path}");
        }
    }

    #[test]
    fn parameters_are_captured_verbatim() {
        assert_eq!(
            Route::parse("GET", "/consensus/weird%20id"),
            Ok(Route::GetConsensus { instance: "weird%20id".to_string() })
        );
        assert_eq!(Route::parse("GET", "/annotators/a/b"), Ok(Route::GetAnnotator { annotator: "a/b".to_string() }));
    }
}
