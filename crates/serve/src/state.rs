//! Shared service state and route dispatch.
//!
//! [`AppState`] owns the incremental estimator
//! ([`StreamingTruth`]) behind one
//! mutex, plus the interners mapping external string ids (instance and
//! annotator names) to the dense indices the estimator works in.  Route
//! handling is transport-free — [`AppState::handle`] parses the request
//! line into a typed [`Route`] and returns a status + JSON document — so
//! the whole API surface is unit-testable without sockets.
//!
//! The state also closes the routing loop over HTTP: an
//! [`AssignmentPolicy`](lncl_crowd::scenario::router::AssignmentPolicy)
//! (picked by [`AppState::with_routing`]) plans `POST /assign` responses
//! from the live estimates, and an optional [`LabelBudget`] caps ingestion
//! — a `POST /labels` batch that would overspend is refused whole with
//! `409`, mirroring the all-or-nothing validation contract.

use crate::routes::{Route, RouteError};
use lncl_bench::json::Json;
use lncl_crowd::scenario::router::{LabelBudget, PolicyKind, RoutingView};
use lncl_crowd::truth::streaming::{StreamingConfig, StreamingTruth};
use lncl_tensor::TensorRng;
use std::collections::HashMap;
use std::sync::Mutex;

/// Default `POST /assign` round size when the request names no `limit`.
pub const DEFAULT_ASSIGN_LIMIT: usize = 16;

/// Salt for the service's assignment RNG stream (mirrors the router
/// driver's salt discipline so serve draws are their own stream).
const SERVE_RNG_SALT: u64 = 0x5345_5256_4501;

/// A status code plus a JSON body — one API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response document.
    pub body: Json,
    /// `Allow` header value accompanying a `405`.
    pub allow: Option<&'static str>,
}

impl ApiResponse {
    fn ok(body: Json) -> Self {
        Self { status: 200, body, allow: None }
    }

    fn error(status: u16, message: impl Into<String>) -> Self {
        Self { status, body: Json::Obj(vec![("error".to_string(), Json::Str(message.into()))]), allow: None }
    }

    fn method_not_allowed(allow: &'static str, method: &str, path: &str) -> Self {
        Self {
            allow: Some(allow),
            ..Self::error(405, format!("{method} is not supported on {path}; allowed: {allow}"))
        }
    }
}

/// Dense interner for external string ids; ids are assigned in first-seen
/// order, so a replayed label stream always produces the same mapping.
#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, usize>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.ids.get(name).copied()
    }
}

struct Inner {
    stream: StreamingTruth,
    instances: Interner,
    annotators: Interner,
    /// Per instance id: annotators who already labelled it, arrival order.
    labeled: Vec<Vec<usize>>,
    policy: PolicyKind,
    budget: Option<LabelBudget>,
    rng: TensorRng,
}

/// The shared state of a running service.
pub struct AppState {
    inner: Mutex<Inner>,
}

/// One validated label from a `POST /labels` body.
struct LabelEntry {
    instance: String,
    annotator: String,
    class: usize,
}

impl AppState {
    /// Creates an empty service over the given estimator configuration,
    /// with the static-redundancy policy and no label budget.
    pub fn new(config: StreamingConfig) -> Self {
        Self::with_routing(config, PolicyKind::StaticRedundancy, None, 0)
    }

    /// Creates an empty service with an explicit assignment policy,
    /// optional label budget (in labels) and assignment-RNG seed.
    pub fn with_routing(config: StreamingConfig, policy: PolicyKind, budget: Option<usize>, seed: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                stream: StreamingTruth::new(config),
                instances: Interner::default(),
                annotators: Interner::default(),
                labeled: Vec::new(),
                policy,
                budget: budget.map(LabelBudget::new),
                rng: TensorRng::seed_from_u64(seed ^ SERVE_RNG_SALT),
            }),
        }
    }

    /// Dispatches one request.  Unknown paths get `404`, known paths with
    /// the wrong method `405` (with the `Allow` value in
    /// [`ApiResponse::allow`]); handler-level validation failures are
    /// `400` with an `error` message, over-budget ingestion `409`.
    pub fn handle(&self, method: &str, path: &str, body: &[u8]) -> ApiResponse {
        match Route::parse(method, path) {
            Ok(Route::PostLabels) => self.post_labels(body),
            Ok(Route::PostFinalize) => self.post_finalize(),
            Ok(Route::PostAssign) => self.post_assign(body),
            Ok(Route::GetBudget) => self.get_budget(),
            Ok(Route::GetHealthz) => ApiResponse::ok(Json::Obj(vec![("ok".to_string(), Json::Bool(true))])),
            Ok(Route::GetStats) => self.get_stats(),
            Ok(Route::GetConsensus { instance }) => self.get_consensus(&instance),
            Ok(Route::GetAnnotator { annotator }) => self.get_annotator(&annotator),
            Err(RouteError::NotFound) => ApiResponse::error(404, format!("no route for {path}")),
            Err(RouteError::MethodNotAllowed { allow }) => ApiResponse::method_not_allowed(allow, method, path),
        }
    }

    /// `POST /labels`: one label object or `{"labels": [...]}`.  The batch
    /// is validated in full before anything is ingested (all-or-nothing).
    fn post_labels(&self, body: &[u8]) -> ApiResponse {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return ApiResponse::error(400, "body is not UTF-8"),
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return ApiResponse::error(400, format!("invalid JSON body: {e}")),
        };
        let raw_entries: Vec<&Json> = match doc.get("labels") {
            Some(Json::Arr(items)) => items.iter().collect(),
            Some(_) => return ApiResponse::error(400, "\"labels\" must be an array"),
            None => vec![&doc],
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, raw) in raw_entries.iter().enumerate() {
            match parse_label(raw) {
                Ok(entry) => entries.push(entry),
                Err(reason) => return ApiResponse::error(400, format!("label {i}: {reason}")),
            }
        }
        if entries.is_empty() {
            return ApiResponse::error(400, "empty label batch");
        }

        let mut inner = self.lock();
        let num_classes = inner.stream.config().num_classes;
        if let Some(bad) = entries.iter().find(|e| e.class >= num_classes) {
            return ApiResponse::error(400, format!("class {} out of range for {num_classes} classes", bad.class));
        }
        // budget is all-or-nothing like validation: refuse the whole batch
        // rather than ingest a prefix
        if let Some(budget) = inner.budget.as_mut() {
            if budget.spend(entries.len()).is_err() {
                let remaining = budget.remaining();
                return ApiResponse::error(
                    409,
                    format!("label budget exhausted: batch of {} exceeds the {remaining} remaining", entries.len()),
                );
            }
        }
        for entry in &entries {
            let instance = inner.instances.intern(&entry.instance);
            let annotator = inner.annotators.intern(&entry.annotator);
            inner.stream.ingest(instance, annotator, entry.class).expect("class range checked above");
            if inner.labeled.len() <= instance {
                inner.labeled.resize(instance + 1, Vec::new());
            }
            if !inner.labeled[instance].contains(&annotator) {
                inner.labeled[instance].push(annotator);
            }
        }
        ApiResponse::ok(Json::Obj(vec![
            ("accepted".to_string(), Json::Num(entries.len() as f64)),
            ("total_labels".to_string(), Json::Num(inner.stream.total_labels() as f64)),
            ("dirty_backlog".to_string(), Json::Num(inner.stream.dirty_backlog() as f64)),
        ]))
    }

    /// `POST /assign`: plans the next routed assignments from the live
    /// estimates.  Body is optional JSON `{"limit": N}` (default
    /// [`DEFAULT_ASSIGN_LIMIT`]); the plan never exceeds the remaining
    /// label budget.  Candidates for an instance are every annotator the
    /// service has seen that has not labelled it yet.
    fn post_assign(&self, body: &[u8]) -> ApiResponse {
        let mut limit = DEFAULT_ASSIGN_LIMIT;
        if !body.is_empty() {
            let Ok(text) = std::str::from_utf8(body) else {
                return ApiResponse::error(400, "body is not UTF-8");
            };
            let doc = match Json::parse(text) {
                Ok(doc) => doc,
                Err(e) => return ApiResponse::error(400, format!("invalid JSON body: {e}")),
            };
            if let Some(raw) = doc.get("limit") {
                match raw.as_f64() {
                    Some(n) if n >= 1.0 && n.fract() == 0.0 => limit = n as usize,
                    _ => return ApiResponse::error(400, "\"limit\" must be a positive integer"),
                }
            }
        }
        let mut inner = self.lock();
        if let Some(budget) = &inner.budget {
            if budget.is_exhausted() {
                return ApiResponse::error(409, format!("label budget of {} is exhausted", budget.total()));
            }
            limit = limit.min(budget.remaining());
        }
        // drain pending re-estimates so the policy routes on fresh state
        inner.stream.drain_dirty();
        let num_instances = inner.instances.names.len();
        let num_annotators = inner.annotators.names.len();
        let candidates: Vec<Vec<usize>> = (0..num_instances)
            .map(|i| {
                let seen = inner.labeled.get(i).map(Vec::as_slice).unwrap_or(&[]);
                (0..num_annotators).filter(|a| !seen.contains(a)).collect()
            })
            .collect();
        let collected: Vec<usize> = (0..num_instances).map(|i| inner.labeled.get(i).map_or(0, Vec::len)).collect();
        let units: Vec<std::ops::Range<usize>> = (0..num_instances).map(|i| i..i + 1).collect();
        let view = RoutingView { truth: &inner.stream, candidates: &candidates, collected: &collected, units: &units };
        let mut rng = inner.rng.clone();
        let mut policy = inner.policy.build();
        let planned = policy.next_round(&view, limit, &mut rng);
        inner.rng = rng;
        let assignments: Vec<Json> = planned
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("instance".to_string(), Json::Str(inner.instances.names[a.instance].clone())),
                    ("annotator".to_string(), Json::Str(inner.annotators.names[a.annotator].clone())),
                ])
            })
            .collect();
        ApiResponse::ok(Json::Obj(vec![
            ("policy".to_string(), Json::Str(inner.policy.name().to_string())),
            ("planned".to_string(), Json::Num(assignments.len() as f64)),
            ("assignments".to_string(), Json::Arr(assignments)),
        ]))
    }

    /// `GET /budget`: the active policy plus label-budget accounting
    /// (`total`/`remaining` are `null` when the service is unbudgeted;
    /// `spent` always equals the ingested label count).
    fn get_budget(&self) -> ApiResponse {
        let inner = self.lock();
        let num = |n: usize| Json::Num(n as f64);
        let (total, remaining, exhausted) = match &inner.budget {
            Some(b) => (num(b.total()), num(b.remaining()), b.is_exhausted()),
            None => (Json::Null, Json::Null, false),
        };
        ApiResponse::ok(Json::Obj(vec![
            ("policy".to_string(), Json::Str(inner.policy.name().to_string())),
            ("total".to_string(), total),
            ("spent".to_string(), Json::Num(inner.stream.total_labels() as f64)),
            ("remaining".to_string(), remaining),
            ("exhausted".to_string(), Json::Bool(exhausted)),
        ]))
    }

    /// `POST /finalize`: full batch EM over everything ingested so far.
    fn post_finalize(&self) -> ApiResponse {
        let mut inner = self.lock();
        let iterations = inner.stream.finalize();
        ApiResponse::ok(Json::Obj(vec![
            ("iterations".to_string(), Json::Num(iterations as f64)),
            ("instances".to_string(), Json::Num(inner.stream.num_instances() as f64)),
        ]))
    }

    /// `GET /consensus/<instance>`.
    fn get_consensus(&self, id: &str) -> ApiResponse {
        let inner = self.lock();
        let Some(consensus) = inner.instances.lookup(id).and_then(|u| inner.stream.consensus(u)) else {
            return ApiResponse::error(404, format!("unknown instance {id:?}"));
        };
        ApiResponse::ok(Json::Obj(vec![
            ("instance".to_string(), Json::Str(id.to_string())),
            ("posterior".to_string(), Json::Arr(consensus.posterior.iter().map(|&p| Json::Num(p as f64)).collect())),
            ("hard_class".to_string(), Json::Num(consensus.hard as f64)),
            ("entropy".to_string(), Json::Num(consensus.entropy as f64)),
            ("labels".to_string(), Json::Num(consensus.labels as f64)),
        ]))
    }

    /// `GET /annotators/<id>`.
    fn get_annotator(&self, id: &str) -> ApiResponse {
        let inner = self.lock();
        let Some(stat) = inner.annotators.lookup(id).and_then(|a| inner.stream.annotator(a)) else {
            return ApiResponse::error(404, format!("unknown annotator {id:?}"));
        };
        let confusion = Json::Arr(
            (0..stat.confusion.rows())
                .map(|r| Json::Arr(stat.confusion.row(r).iter().map(|&v| Json::Num(v as f64)).collect()))
                .collect(),
        );
        ApiResponse::ok(Json::Obj(vec![
            ("annotator".to_string(), Json::Str(id.to_string())),
            ("reliability".to_string(), Json::Num(stat.reliability as f64)),
            ("labels".to_string(), Json::Num(stat.labels as f64)),
            ("confusion".to_string(), confusion),
        ]))
    }

    /// `GET /stats`.
    fn get_stats(&self) -> ApiResponse {
        let inner = self.lock();
        let config = inner.stream.config();
        let mode = if config.window.is_some() { "windowed" } else { "pooled" };
        ApiResponse::ok(Json::Obj(vec![
            ("instances".to_string(), Json::Num(inner.stream.num_instances() as f64)),
            ("annotators".to_string(), Json::Num(inner.stream.num_annotators() as f64)),
            ("total_labels".to_string(), Json::Num(inner.stream.total_labels() as f64)),
            ("dirty_backlog".to_string(), Json::Num(inner.stream.dirty_backlog() as f64)),
            ("refreshed_instances".to_string(), Json::Num(inner.stream.refreshed_instances() as f64)),
            ("num_classes".to_string(), Json::Num(config.num_classes as f64)),
            ("mode".to_string(), Json::Str(mode.to_string())),
        ]))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // a worker that panicked mid-request must not take the service
        // down with it: the estimator mutates through &mut self only after
        // validation, so the state is still usable
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn parse_label(raw: &Json) -> Result<LabelEntry, String> {
    let field = |key: &str| raw.get(key).ok_or_else(|| format!("missing {key:?}"));
    let text = |key: &str| field(key)?.as_str().map(str::to_string).ok_or_else(|| format!("{key:?} must be a string"));
    let instance = text("instance")?;
    let annotator = text("annotator")?;
    if instance.is_empty() || annotator.is_empty() {
        return Err("instance and annotator ids must be non-empty".to_string());
    }
    let class = field("class")?.as_f64().ok_or("\"class\" must be a number")?;
    if class < 0.0 || class.fract() != 0.0 {
        return Err(format!("\"class\" must be a non-negative integer, got {class}"));
    }
    Ok(LabelEntry { instance, annotator, class: class as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(state: &AppState, path: &str, body: &str) -> ApiResponse {
        state.handle("POST", path, body.as_bytes())
    }

    #[test]
    fn healthz_and_stats_respond() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/healthz", b"").status, 200);
        let stats = state.handle("GET", "/stats", b"");
        assert_eq!(stats.status, 200);
        assert_eq!(stats.body.get("mode").and_then(Json::as_str), Some("pooled"));
        assert_eq!(stats.body.get("total_labels").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn single_and_batch_labels_are_ingested() {
        let state = AppState::new(StreamingConfig::pooled(2));
        let single = post(&state, "/labels", r#"{"instance": "i0", "annotator": "ann", "class": 1}"#);
        assert_eq!(single.status, 200, "{:?}", single.body);
        assert_eq!(single.body.get("accepted").and_then(Json::as_f64), Some(1.0));
        let batch = post(
            &state,
            "/labels",
            r#"{"labels": [
                {"instance": "i0", "annotator": "b", "class": 1},
                {"instance": "i1", "annotator": "b", "class": 0}
            ]}"#,
        );
        assert_eq!(batch.status, 200);
        assert_eq!(batch.body.get("total_labels").and_then(Json::as_f64), Some(3.0));
        let consensus = state.handle("GET", "/consensus/i0", b"");
        assert_eq!(consensus.status, 200);
        assert_eq!(consensus.body.get("labels").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn invalid_label_bodies_are_rejected_without_partial_ingest() {
        let state = AppState::new(StreamingConfig::pooled(2));
        for (body, fragment) in [
            ("not json", "invalid JSON"),
            (r#"{"labels": 3}"#, "must be an array"),
            (r#"{"labels": []}"#, "empty label batch"),
            (r#"{"instance": "i", "annotator": "a"}"#, "missing \"class\""),
            (r#"{"instance": "i", "annotator": "a", "class": 1.5}"#, "non-negative integer"),
            (r#"{"instance": "i", "annotator": "a", "class": 9}"#, "out of range"),
            (r#"{"instance": "", "annotator": "a", "class": 0}"#, "non-empty"),
            (
                r#"{"labels": [
                    {"instance": "i", "annotator": "a", "class": 0},
                    {"instance": "i", "annotator": "b", "class": 7}
                ]}"#,
                "out of range",
            ),
        ] {
            let response = post(&state, "/labels", body);
            assert_eq!(response.status, 400, "{body}");
            let message = response.body.get("error").and_then(Json::as_str).unwrap();
            assert!(message.contains(fragment), "{body}: {message}");
        }
        let stats = state.handle("GET", "/stats", b"");
        assert_eq!(stats.body.get("total_labels").and_then(Json::as_f64), Some(0.0), "all-or-nothing");
    }

    #[test]
    fn unknown_ids_are_404() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/consensus/ghost", b"").status, 404);
        assert_eq!(state.handle("GET", "/annotators/ghost", b"").status, 404);
    }

    #[test]
    fn unknown_routes_and_wrong_methods() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/nope", b"").status, 404);
        assert_eq!(state.handle("GET", "/consensus/", b"").status, 404);
        let delete = state.handle("DELETE", "/labels", b"");
        assert_eq!((delete.status, delete.allow), (405, Some("POST")));
        let post = state.handle("POST", "/consensus/i0", b"");
        assert_eq!((post.status, post.allow), (405, Some("GET")));
        let health = state.handle("POST", "/healthz", b"");
        assert_eq!((health.status, health.allow), (405, Some("GET")));
        assert_eq!(state.handle("GET", "/healthz", b"").allow, None, "2xx carries no Allow");
    }

    #[test]
    fn budget_reports_and_enforces_the_label_ceiling() {
        use lncl_crowd::scenario::router::PolicyKind;
        let state = AppState::with_routing(StreamingConfig::pooled(2), PolicyKind::StaticRedundancy, Some(2), 7);
        let budget = state.handle("GET", "/budget", b"");
        assert_eq!(budget.status, 200);
        assert_eq!(budget.body.get("policy").and_then(Json::as_str), Some("static-redundancy"));
        assert_eq!(budget.body.get("total").and_then(Json::as_f64), Some(2.0));
        assert_eq!(budget.body.get("spent").and_then(Json::as_f64), Some(0.0));

        // a batch of 3 overspends a 2-label budget: refused whole
        let over = post(
            &state,
            "/labels",
            r#"{"labels": [
                {"instance": "i0", "annotator": "a", "class": 0},
                {"instance": "i1", "annotator": "a", "class": 1},
                {"instance": "i2", "annotator": "a", "class": 0}
            ]}"#,
        );
        assert_eq!(over.status, 409, "{:?}", over.body);
        let stats = state.handle("GET", "/stats", b"");
        assert_eq!(stats.body.get("total_labels").and_then(Json::as_f64), Some(0.0), "all-or-nothing");

        assert_eq!(post(&state, "/labels", r#"{"instance": "i0", "annotator": "a", "class": 0}"#).status, 200);
        assert_eq!(post(&state, "/labels", r#"{"instance": "i0", "annotator": "b", "class": 0}"#).status, 200);
        let exhausted = state.handle("GET", "/budget", b"");
        assert_eq!(exhausted.body.get("remaining").and_then(Json::as_f64), Some(0.0));
        assert_eq!(exhausted.body.get("exhausted"), Some(&Json::Bool(true)));
        assert_eq!(post(&state, "/labels", r#"{"instance": "i1", "annotator": "a", "class": 1}"#).status, 409);
        assert_eq!(post(&state, "/assign", "{}").status, 409, "assign refuses once exhausted");
    }

    #[test]
    fn unbudgeted_budget_is_null_and_never_exhausted() {
        let state = AppState::new(StreamingConfig::pooled(2));
        let budget = state.handle("GET", "/budget", b"");
        assert_eq!(budget.body.get("total"), Some(&Json::Null));
        assert_eq!(budget.body.get("remaining"), Some(&Json::Null));
        assert_eq!(budget.body.get("exhausted"), Some(&Json::Bool(false)));
    }

    #[test]
    fn assign_plans_only_unlabeled_pairs_and_honours_limit() {
        let state = AppState::new(StreamingConfig::pooled(2));
        for (instance, annotator) in [("i0", "a0"), ("i0", "a1"), ("i1", "a0")] {
            let body = format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": 0}}"#);
            assert_eq!(post(&state, "/labels", &body).status, 200);
        }
        let assign = post(&state, "/assign", r#"{"limit": 8}"#);
        assert_eq!(assign.status, 200, "{:?}", assign.body);
        assert_eq!(assign.body.get("policy").and_then(Json::as_str), Some("static-redundancy"));
        let assignments = assign.body.get("assignments").and_then(Json::as_array).unwrap();
        assert_eq!(assign.body.get("planned").and_then(Json::as_f64), Some(assignments.len() as f64));
        // the only instance at the shallowest depth is i1 (1 label vs 2);
        // its sole open candidate is a1
        assert_eq!(assignments.len(), 1, "{assignments:?}");
        assert_eq!(assignments[0].get("instance").and_then(Json::as_str), Some("i1"));
        assert_eq!(assignments[0].get("annotator").and_then(Json::as_str), Some("a1"));

        let capped = post(&state, "/assign", r#"{"limit": 1}"#);
        assert_eq!(capped.body.get("planned").and_then(Json::as_f64), Some(1.0));
        assert_eq!(post(&state, "/assign", r#"{"limit": 0}"#).status, 400);
        assert_eq!(post(&state, "/assign", r#"{"limit": 1.5}"#).status, 400);
        assert_eq!(post(&state, "/assign", "not json").status, 400);
        assert_eq!(post(&state, "/assign", "").status, 200, "empty body uses the default limit");
    }

    #[test]
    fn assign_round_trips_into_labels_until_coverage() {
        use lncl_crowd::scenario::router::PolicyKind;
        let state = AppState::with_routing(StreamingConfig::pooled(2), PolicyKind::UncertaintyRouting, None, 11);
        for (instance, annotator, class) in [("i0", "a0", 0), ("i1", "a1", 1)] {
            let body = format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": {class}}}"#);
            assert_eq!(post(&state, "/labels", &body).status, 200);
        }
        // follow the planner for a few rounds, answering every assignment
        for _ in 0..4 {
            let assign = post(&state, "/assign", "");
            assert_eq!(assign.status, 200);
            for planned in assign.body.get("assignments").and_then(Json::as_array).unwrap() {
                let instance = planned.get("instance").and_then(Json::as_str).unwrap();
                let annotator = planned.get("annotator").and_then(Json::as_str).unwrap();
                let body = format!(r#"{{"instance": "{instance}", "annotator": "{annotator}", "class": 0}}"#);
                assert_eq!(post(&state, "/labels", &body).status, 200);
            }
        }
        // every (instance, annotator) pair is covered at most once: 2
        // instances x 2 annotators bounds the label count
        let stats = state.handle("GET", "/stats", b"");
        assert!(stats.body.get("total_labels").and_then(Json::as_f64).unwrap() <= 4.0);
    }

    #[test]
    fn finalize_reports_iterations_and_sharpens_consensus() {
        let state = AppState::new(StreamingConfig::pooled(2));
        for u in 0..20 {
            for a in 0..3 {
                let body = format!(r#"{{"instance": "i{u}", "annotator": "a{a}", "class": {}}}"#, u % 2);
                assert_eq!(post(&state, "/labels", &body).status, 200);
            }
        }
        let finalize = post(&state, "/finalize", "");
        assert_eq!(finalize.status, 200);
        assert!(finalize.body.get("iterations").and_then(Json::as_f64).unwrap() >= 1.0);
        let consensus = state.handle("GET", "/consensus/i1", b"");
        let posterior = consensus.body.get("posterior").and_then(Json::as_array).unwrap();
        assert!(posterior[1].as_f64().unwrap() > 0.9, "unanimous labels should dominate: {posterior:?}");
        let annotator = state.handle("GET", "/annotators/a0", b"");
        assert_eq!(annotator.status, 200);
        assert!(annotator.body.get("reliability").and_then(Json::as_f64).unwrap() > 0.5);
    }
}
