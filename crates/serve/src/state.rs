//! Shared service state and route dispatch.
//!
//! [`AppState`] owns the incremental estimator
//! ([`StreamingTruth`]) behind one
//! mutex, plus the interners mapping external string ids (instance and
//! annotator names) to the dense indices the estimator works in.  Route
//! handling is transport-free — [`AppState::handle`] consumes a parsed
//! method/path/body and returns a status + JSON document — so the whole
//! API surface is unit-testable without sockets.

use lncl_bench::json::Json;
use lncl_crowd::truth::streaming::{StreamingConfig, StreamingTruth};
use std::collections::HashMap;
use std::sync::Mutex;

/// A status code plus a JSON body — one API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response document.
    pub body: Json,
}

impl ApiResponse {
    fn ok(body: Json) -> Self {
        Self { status: 200, body }
    }

    fn error(status: u16, message: impl Into<String>) -> Self {
        Self { status, body: Json::Obj(vec![("error".to_string(), Json::Str(message.into()))]) }
    }
}

/// Dense interner for external string ids; ids are assigned in first-seen
/// order, so a replayed label stream always produces the same mapping.
#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, usize>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.ids.get(name).copied()
    }
}

struct Inner {
    stream: StreamingTruth,
    instances: Interner,
    annotators: Interner,
}

/// The shared state of a running service.
pub struct AppState {
    inner: Mutex<Inner>,
}

/// One validated label from a `POST /labels` body.
struct LabelEntry {
    instance: String,
    annotator: String,
    class: usize,
}

impl AppState {
    /// Creates an empty service over the given estimator configuration.
    pub fn new(config: StreamingConfig) -> Self {
        Self {
            inner: Mutex::new(Inner {
                stream: StreamingTruth::new(config),
                instances: Interner::default(),
                annotators: Interner::default(),
            }),
        }
    }

    /// Dispatches one request.  Unknown paths get `404`, known paths with
    /// the wrong method `405`; handler-level validation failures are `400`
    /// with an `error` message.
    pub fn handle(&self, method: &str, path: &str, body: &[u8]) -> ApiResponse {
        let wrong_method = || ApiResponse::error(405, format!("{method} is not supported on {path}"));
        if let Some(id) = path.strip_prefix("/consensus/").filter(|id| !id.is_empty()) {
            return if method == "GET" { self.get_consensus(id) } else { wrong_method() };
        }
        if let Some(id) = path.strip_prefix("/annotators/").filter(|id| !id.is_empty()) {
            return if method == "GET" { self.get_annotator(id) } else { wrong_method() };
        }
        match (method, path) {
            ("POST", "/labels") => self.post_labels(body),
            ("POST", "/finalize") => self.post_finalize(),
            ("GET", "/healthz") => ApiResponse::ok(Json::Obj(vec![("ok".to_string(), Json::Bool(true))])),
            ("GET", "/stats") => self.get_stats(),
            (_, "/labels") | (_, "/finalize") | (_, "/healthz") | (_, "/stats") => wrong_method(),
            _ => ApiResponse::error(404, format!("no route for {path}")),
        }
    }

    /// `POST /labels`: one label object or `{"labels": [...]}`.  The batch
    /// is validated in full before anything is ingested (all-or-nothing).
    fn post_labels(&self, body: &[u8]) -> ApiResponse {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return ApiResponse::error(400, "body is not UTF-8"),
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return ApiResponse::error(400, format!("invalid JSON body: {e}")),
        };
        let raw_entries: Vec<&Json> = match doc.get("labels") {
            Some(Json::Arr(items)) => items.iter().collect(),
            Some(_) => return ApiResponse::error(400, "\"labels\" must be an array"),
            None => vec![&doc],
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, raw) in raw_entries.iter().enumerate() {
            match parse_label(raw) {
                Ok(entry) => entries.push(entry),
                Err(reason) => return ApiResponse::error(400, format!("label {i}: {reason}")),
            }
        }
        if entries.is_empty() {
            return ApiResponse::error(400, "empty label batch");
        }

        let mut inner = self.lock();
        let num_classes = inner.stream.config().num_classes;
        if let Some(bad) = entries.iter().find(|e| e.class >= num_classes) {
            return ApiResponse::error(400, format!("class {} out of range for {num_classes} classes", bad.class));
        }
        for entry in &entries {
            let instance = inner.instances.intern(&entry.instance);
            let annotator = inner.annotators.intern(&entry.annotator);
            inner.stream.ingest(instance, annotator, entry.class).expect("class range checked above");
        }
        ApiResponse::ok(Json::Obj(vec![
            ("accepted".to_string(), Json::Num(entries.len() as f64)),
            ("total_labels".to_string(), Json::Num(inner.stream.total_labels() as f64)),
            ("dirty_backlog".to_string(), Json::Num(inner.stream.dirty_backlog() as f64)),
        ]))
    }

    /// `POST /finalize`: full batch EM over everything ingested so far.
    fn post_finalize(&self) -> ApiResponse {
        let mut inner = self.lock();
        let iterations = inner.stream.finalize();
        ApiResponse::ok(Json::Obj(vec![
            ("iterations".to_string(), Json::Num(iterations as f64)),
            ("instances".to_string(), Json::Num(inner.stream.num_instances() as f64)),
        ]))
    }

    /// `GET /consensus/<instance>`.
    fn get_consensus(&self, id: &str) -> ApiResponse {
        let inner = self.lock();
        let Some(consensus) = inner.instances.lookup(id).and_then(|u| inner.stream.consensus(u)) else {
            return ApiResponse::error(404, format!("unknown instance {id:?}"));
        };
        ApiResponse::ok(Json::Obj(vec![
            ("instance".to_string(), Json::Str(id.to_string())),
            ("posterior".to_string(), Json::Arr(consensus.posterior.iter().map(|&p| Json::Num(p as f64)).collect())),
            ("hard_class".to_string(), Json::Num(consensus.hard as f64)),
            ("entropy".to_string(), Json::Num(consensus.entropy as f64)),
            ("labels".to_string(), Json::Num(consensus.labels as f64)),
        ]))
    }

    /// `GET /annotators/<id>`.
    fn get_annotator(&self, id: &str) -> ApiResponse {
        let inner = self.lock();
        let Some(stat) = inner.annotators.lookup(id).and_then(|a| inner.stream.annotator(a)) else {
            return ApiResponse::error(404, format!("unknown annotator {id:?}"));
        };
        let confusion = Json::Arr(
            (0..stat.confusion.rows())
                .map(|r| Json::Arr(stat.confusion.row(r).iter().map(|&v| Json::Num(v as f64)).collect()))
                .collect(),
        );
        ApiResponse::ok(Json::Obj(vec![
            ("annotator".to_string(), Json::Str(id.to_string())),
            ("reliability".to_string(), Json::Num(stat.reliability as f64)),
            ("labels".to_string(), Json::Num(stat.labels as f64)),
            ("confusion".to_string(), confusion),
        ]))
    }

    /// `GET /stats`.
    fn get_stats(&self) -> ApiResponse {
        let inner = self.lock();
        let config = inner.stream.config();
        let mode = if config.window.is_some() { "windowed" } else { "pooled" };
        ApiResponse::ok(Json::Obj(vec![
            ("instances".to_string(), Json::Num(inner.stream.num_instances() as f64)),
            ("annotators".to_string(), Json::Num(inner.stream.num_annotators() as f64)),
            ("total_labels".to_string(), Json::Num(inner.stream.total_labels() as f64)),
            ("dirty_backlog".to_string(), Json::Num(inner.stream.dirty_backlog() as f64)),
            ("refreshed_instances".to_string(), Json::Num(inner.stream.refreshed_instances() as f64)),
            ("num_classes".to_string(), Json::Num(config.num_classes as f64)),
            ("mode".to_string(), Json::Str(mode.to_string())),
        ]))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // a worker that panicked mid-request must not take the service
        // down with it: the estimator mutates through &mut self only after
        // validation, so the state is still usable
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn parse_label(raw: &Json) -> Result<LabelEntry, String> {
    let field = |key: &str| raw.get(key).ok_or_else(|| format!("missing {key:?}"));
    let text = |key: &str| field(key)?.as_str().map(str::to_string).ok_or_else(|| format!("{key:?} must be a string"));
    let instance = text("instance")?;
    let annotator = text("annotator")?;
    if instance.is_empty() || annotator.is_empty() {
        return Err("instance and annotator ids must be non-empty".to_string());
    }
    let class = field("class")?.as_f64().ok_or("\"class\" must be a number")?;
    if class < 0.0 || class.fract() != 0.0 {
        return Err(format!("\"class\" must be a non-negative integer, got {class}"));
    }
    Ok(LabelEntry { instance, annotator, class: class as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(state: &AppState, path: &str, body: &str) -> ApiResponse {
        state.handle("POST", path, body.as_bytes())
    }

    #[test]
    fn healthz_and_stats_respond() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/healthz", b"").status, 200);
        let stats = state.handle("GET", "/stats", b"");
        assert_eq!(stats.status, 200);
        assert_eq!(stats.body.get("mode").and_then(Json::as_str), Some("pooled"));
        assert_eq!(stats.body.get("total_labels").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn single_and_batch_labels_are_ingested() {
        let state = AppState::new(StreamingConfig::pooled(2));
        let single = post(&state, "/labels", r#"{"instance": "i0", "annotator": "ann", "class": 1}"#);
        assert_eq!(single.status, 200, "{:?}", single.body);
        assert_eq!(single.body.get("accepted").and_then(Json::as_f64), Some(1.0));
        let batch = post(
            &state,
            "/labels",
            r#"{"labels": [
                {"instance": "i0", "annotator": "b", "class": 1},
                {"instance": "i1", "annotator": "b", "class": 0}
            ]}"#,
        );
        assert_eq!(batch.status, 200);
        assert_eq!(batch.body.get("total_labels").and_then(Json::as_f64), Some(3.0));
        let consensus = state.handle("GET", "/consensus/i0", b"");
        assert_eq!(consensus.status, 200);
        assert_eq!(consensus.body.get("labels").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn invalid_label_bodies_are_rejected_without_partial_ingest() {
        let state = AppState::new(StreamingConfig::pooled(2));
        for (body, fragment) in [
            ("not json", "invalid JSON"),
            (r#"{"labels": 3}"#, "must be an array"),
            (r#"{"labels": []}"#, "empty label batch"),
            (r#"{"instance": "i", "annotator": "a"}"#, "missing \"class\""),
            (r#"{"instance": "i", "annotator": "a", "class": 1.5}"#, "non-negative integer"),
            (r#"{"instance": "i", "annotator": "a", "class": 9}"#, "out of range"),
            (r#"{"instance": "", "annotator": "a", "class": 0}"#, "non-empty"),
            (
                r#"{"labels": [
                    {"instance": "i", "annotator": "a", "class": 0},
                    {"instance": "i", "annotator": "b", "class": 7}
                ]}"#,
                "out of range",
            ),
        ] {
            let response = post(&state, "/labels", body);
            assert_eq!(response.status, 400, "{body}");
            let message = response.body.get("error").and_then(Json::as_str).unwrap();
            assert!(message.contains(fragment), "{body}: {message}");
        }
        let stats = state.handle("GET", "/stats", b"");
        assert_eq!(stats.body.get("total_labels").and_then(Json::as_f64), Some(0.0), "all-or-nothing");
    }

    #[test]
    fn unknown_ids_are_404() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/consensus/ghost", b"").status, 404);
        assert_eq!(state.handle("GET", "/annotators/ghost", b"").status, 404);
    }

    #[test]
    fn unknown_routes_and_wrong_methods() {
        let state = AppState::new(StreamingConfig::pooled(2));
        assert_eq!(state.handle("GET", "/nope", b"").status, 404);
        assert_eq!(state.handle("GET", "/consensus/", b"").status, 404);
        assert_eq!(state.handle("DELETE", "/labels", b"").status, 405);
        assert_eq!(state.handle("POST", "/consensus/i0", b"").status, 405);
        assert_eq!(state.handle("POST", "/healthz", b"").status, 405);
    }

    #[test]
    fn finalize_reports_iterations_and_sharpens_consensus() {
        let state = AppState::new(StreamingConfig::pooled(2));
        for u in 0..20 {
            for a in 0..3 {
                let body = format!(r#"{{"instance": "i{u}", "annotator": "a{a}", "class": {}}}"#, u % 2);
                assert_eq!(post(&state, "/labels", &body).status, 200);
            }
        }
        let finalize = post(&state, "/finalize", "");
        assert_eq!(finalize.status, 200);
        assert!(finalize.body.get("iterations").and_then(Json::as_f64).unwrap() >= 1.0);
        let consensus = state.handle("GET", "/consensus/i1", b"");
        let posterior = consensus.body.get("posterior").and_then(Json::as_array).unwrap();
        assert!(posterior[1].as_f64().unwrap() > 0.9, "unanimous labels should dominate: {posterior:?}");
        let annotator = state.handle("GET", "/annotators/a0", b"");
        assert_eq!(annotator.status, 200);
        assert!(annotator.body.get("reliability").and_then(Json::as_f64).unwrap() > 0.5);
    }
}
