//! Environment-variable configuration shared by the `serve` and
//! `serve_bench` binaries.
//!
//! Every variable follows the workspace convention (see
//! [`lncl_tensor::env`]): unset means default, set-but-invalid means a
//! warning on stderr and the default — never a panic.
//!
//! | variable             | meaning                               | default       |
//! |----------------------|---------------------------------------|---------------|
//! | `LNCL_SERVE_PORT`    | listen port (`0` = pick a free port)  | `7878`        |
//! | `LNCL_SERVE_THREADS` | worker threads (>= 1)                 | `4`           |
//! | `LNCL_SERVE_CLASSES` | number of label classes (>= 2)        | `2`           |
//! | `LNCL_SERVE_WINDOW`  | stream window size; unset = pooled    | unset         |
//! | `LNCL_SERVE_DECAY`   | window decay in `(0, 1]`              | DS-W default  |
//! | `LNCL_SERVE_CONNS`   | load-generator client connections     | `4`           |
//! | `LNCL_SERVE_POLICY`  | `/assign` policy (`static`, `uncertainty`, `quarantine` or full names) | `static` |
//! | `LNCL_SERVE_BUDGET`  | label budget; unset = unlimited       | unset         |
//! | `LNCL_SERVE_SEED`    | assignment-RNG seed                   | `0`           |

use crate::server::ServerConfig;
use lncl_crowd::scenario::router::PolicyKind;
use lncl_crowd::truth::ds_windowed::DsWindowed;
use lncl_crowd::truth::streaming::StreamingConfig;
use lncl_tensor::env::{env_parsed, env_usize_at_least_one};

/// Default listen port of the `serve` binary.
pub const DEFAULT_PORT: u16 = 7878;

/// The listener configuration from `LNCL_SERVE_PORT` / `LNCL_SERVE_THREADS`.
pub fn server_config_from_env() -> ServerConfig {
    let port = env_parsed::<u16>("LNCL_SERVE_PORT", "a port number", |_| true).unwrap_or(DEFAULT_PORT);
    ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        workers: env_usize_at_least_one("LNCL_SERVE_THREADS").unwrap_or(4),
        ..ServerConfig::default()
    }
}

/// The estimator configuration from `LNCL_SERVE_CLASSES` /
/// `LNCL_SERVE_WINDOW` / `LNCL_SERVE_DECAY`.
pub fn streaming_config_from_env() -> StreamingConfig {
    let classes = env_parsed::<usize>("LNCL_SERVE_CLASSES", "an integer >= 2", |&k| k >= 2).unwrap_or(2);
    match env_usize_at_least_one("LNCL_SERVE_WINDOW") {
        None => StreamingConfig::pooled(classes),
        Some(window) => {
            let decay =
                env_parsed::<f32>("LNCL_SERVE_DECAY", "a decay in (0, 1]", |&d| d > 0.0 && d <= 1.0 && d.is_finite())
                    .unwrap_or(DsWindowed::DEFAULT_DECAY);
            StreamingConfig::windowed(classes, window, decay)
        }
    }
}

/// Load-generator client connections (`LNCL_SERVE_CONNS`, default 4).
pub fn bench_connections_from_env() -> usize {
    env_usize_at_least_one("LNCL_SERVE_CONNS").unwrap_or(4)
}

/// The closed-loop routing configuration from `LNCL_SERVE_POLICY` /
/// `LNCL_SERVE_BUDGET` / `LNCL_SERVE_SEED`: the `/assign` policy, the
/// optional label budget and the assignment-RNG seed.
pub fn routing_config_from_env() -> (PolicyKind, Option<usize>, u64) {
    let policy = match std::env::var("LNCL_SERVE_POLICY") {
        Err(_) => PolicyKind::StaticRedundancy,
        Ok(raw) => PolicyKind::parse(&raw).unwrap_or_else(|| {
            eprintln!("warning: LNCL_SERVE_POLICY={raw:?} is not a policy name; using static-redundancy");
            PolicyKind::StaticRedundancy
        }),
    };
    let budget = env_usize_at_least_one("LNCL_SERVE_BUDGET");
    let seed = env_parsed::<u64>("LNCL_SERVE_SEED", "an integer seed", |_| true).unwrap_or(0);
    (policy, budget, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process env is global: each test uses its own variable set and the
    // defaults are asserted with everything unset.

    #[test]
    fn defaults_apply_when_unset() {
        let server = server_config_from_env();
        assert_eq!(server.addr, format!("127.0.0.1:{DEFAULT_PORT}"));
        assert!(server.workers >= 1);
        let streaming = streaming_config_from_env();
        assert_eq!(streaming.num_classes, 2);
        assert!(streaming.window.is_none());
        assert!(bench_connections_from_env() >= 1);
        let (policy, budget, seed) = routing_config_from_env();
        assert_eq!(policy, PolicyKind::StaticRedundancy);
        assert!(budget.is_none());
        assert_eq!(seed, 0);
    }
}
