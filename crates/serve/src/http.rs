//! A minimal HTTP/1.1 request parser and response writer.
//!
//! The container this workspace builds in has no crates.io access, so the
//! serving layer cannot use hyper/axum.  This module implements exactly the
//! subset the truth-inference API needs: request line + headers +
//! `Content-Length` bodies, keep-alive connections, and plain
//! `Content-Type: application/json` responses.  Everything a client can
//! get wrong maps to a typed [`HttpError`] with the right 4xx status —
//! workers answer and drop the connection instead of panicking (the
//! robustness contract tested in `tests/http_service.rs`).

use std::io::{BufRead, Write};

/// Upper bound on the request line plus headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after the
    /// response (`Connection: close`).
    pub close: bool,
}

/// A request that could not be parsed; maps to one 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / headers / `Content-Length` → `400`.
    BadRequest(String),
    /// Declared body larger than [`MAX_BODY_BYTES`] → `413`.
    PayloadTooLarge(String),
    /// Request line + headers larger than [`MAX_HEAD_BYTES`] → `431`.
    HeadersTooLarge(String),
}

impl HttpError {
    /// The status line pair for the error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::PayloadTooLarge(_) => (413, "Payload Too Large"),
            HttpError::HeadersTooLarge(_) => (431, "Request Header Fields Too Large"),
        }
    }

    /// The human-readable reason carried by the error.
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m) | HttpError::PayloadTooLarge(m) | HttpError::HeadersTooLarge(m) => m,
        }
    }
}

/// Reads one line terminated by `\n` (CR stripped), bounding the total
/// head size.  `Ok(None)` means the peer closed before sending anything.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("connection closed mid-line".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::HeadersTooLarge(format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::BadRequest(format!("read error: {e}"))),
        }
    }
}

/// Parses one request from the stream.  `Ok(None)` = clean connection
/// close before a request started; `Err` = answer with the error's status
/// and close.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("request target {target:?} is not an absolute path")));
    }

    let mut content_length: Option<usize> = None;
    let mut close = false;
    loop {
        let Some(line) = read_line(reader, &mut budget)? else {
            return Err(HttpError::BadRequest("connection closed inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize =
                value.parse().map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {value:?}")))?;
            // duplicate Content-Length headers are a request-smuggling
            // vector (RFC 9110 §8.6): identical repeats are tolerated,
            // conflicting ones must never silently last-win
            match content_length {
                Some(previous) if previous != parsed => {
                    return Err(HttpError::BadRequest(format!(
                        "conflicting Content-Length headers ({previous} then {parsed})"
                    )));
                }
                _ => content_length = Some(parsed),
            }
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::BadRequest(format!("short body ({content_length} bytes declared): {e}")))?;

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Some(Request { method: method.to_ascii_uppercase(), path, body, close }))
}

/// Writes one `application/json` response with `Content-Length`, plus any
/// `extra_headers` (e.g. the `Allow` header a `405` must carry).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(stream, "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n")?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}", body.len())?;
    stream.flush()
}

/// The standard reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        parse_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn parses_post_with_body_and_strips_query() {
        let req =
            parse("POST /labels?x=1 HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd").unwrap().unwrap();
        assert_eq!(req.path, "/labels");
        assert_eq!(req.body, b"abcd");
        assert!(req.close);
    }

    #[test]
    fn clean_close_before_request_is_none() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in ["GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "GET /x SPDY/3\r\n\r\n", "GET x HTTP/1.1\r\n\r\n"] {
            assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))), "{raw:?}");
        }
    }

    #[test]
    fn invalid_content_length_is_a_bad_request() {
        let err = parse("POST /labels HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
        assert!(err.message().contains("Content-Length"));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let err = parse("POST /labels HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd").unwrap_err();
        assert_eq!(err.status().0, 400);
        assert!(err.message().contains("conflicting Content-Length"), "{}", err.message());
    }

    #[test]
    fn identical_duplicate_content_lengths_are_tolerated() {
        let req =
            parse("POST /labels HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd").unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn oversized_body_is_payload_too_large() {
        let raw = format!("POST /labels HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse("POST /labels HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
    }

    #[test]
    fn response_writer_frames_the_body() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", &[], "{\"ok\": true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));
    }

    #[test]
    fn response_writer_emits_extra_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 405, "Method Not Allowed", &[("Allow", "GET")], "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Allow: GET\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
    }
}
