//! Distributed scenario-sweep worker: pulls leased work units from a
//! `sweep_coord`, runs them and reports quality rows until the
//! coordinator says `Done`.
//!
//! Environment:
//!
//! | variable           | meaning                          | default          |
//! |--------------------|----------------------------------|------------------|
//! | `LNCL_COORD_ADDR`  | coordinator address              | `127.0.0.1:7878` |
//! | `LNCL_WORKER_NAME` | name shown in the coordinator log | `worker-<pid>`  |
//! | `LNCL_THREADS`     | per-unit method parallelism      | all cores        |
//!
//! Scale, epochs and the method filter come from the coordinator's `Spec`
//! message — this binary deliberately ignores `LNCL_SCALE` and
//! `LNCL_EPOCHS` so a heterogeneous fleet cannot fork the merged report.
//! Exits non-zero if the coordinator is unreachable or the connection is
//! lost beyond the bounded reconnect budget.

use lncl_serve::sweep::{run_worker, WorkerConfig};

fn main() {
    let addr = std::env::var("LNCL_COORD_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let name = std::env::var("LNCL_WORKER_NAME").unwrap_or_else(|_| format!("worker-{}", std::process::id()));
    let cfg = WorkerConfig { method_parallelism: lncl_tensor::par::max_threads(), ..WorkerConfig::new(addr, name) };
    println!("sweep worker {} — pulling from {}", cfg.name, cfg.addr);
    match run_worker(&cfg) {
        Ok(summary) => println!(
            "worker {} done: {} unit(s) completed, {} duplicate(s), {} reconnect(s)",
            summary.name, summary.completed, summary.duplicates, summary.reconnects
        ),
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            std::process::exit(1);
        }
    }
}
