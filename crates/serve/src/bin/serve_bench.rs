//! Loopback load generator for the streaming truth-inference service.
//!
//! Starts an in-process [`Server`] on a free port, drives it with
//! `LNCL_SERVE_CONNS` persistent client connections (each its own thread),
//! and records per-route latency percentiles plus throughput into
//! `BENCH_serve.json`:
//!
//! * timed cases `"<route>/p50"`, `"<route>/p99"` and `"<route>/mean"`
//!   (seconds per request — lower is better, so the CI
//!   `bench_diff compare --gate` direction is meaningful), and
//! * quality rows `serve/<route>` with a `requests_per_sec` metric.
//!
//! `LNCL_BENCH_ITERS` scales the request volume (default 20; the CI smoke
//! job runs 3).  The label workload is seeded and connection-local, so a
//! run exercises contended ingest without being racy about *what* is
//! ingested.

use lncl_bench::timing::{bench_iters, BenchReport, SCENARIO_CASE};
use lncl_serve::config::bench_connections_from_env;
use lncl_serve::server::{Server, ServerConfig};
use lncl_serve::state::AppState;
use lncl_tensor::env::env_usize_at_least_one;
use lncl_tensor::TensorRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use lncl_crowd::truth::streaming::StreamingConfig;

/// One route's collected request latencies (seconds each).
struct RouteSamples {
    route: &'static str,
    latencies: Vec<f64>,
    elapsed_s: f64,
}

/// Sends `raw`, reads exactly one HTTP response and returns its status.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, raw: &[u8]) -> u16 {
    stream.write_all(raw).expect("request write");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = value.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    status
}

fn http_get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\n\r\n").into_bytes()
}

fn http_post(path: &str, body: &str) -> Vec<u8> {
    format!("POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()).into_bytes()
}

/// Drives one phase over `requests` pre-built raw requests, timing each
/// round trip.
fn run_phase(addr: SocketAddr, route: &'static str, requests: &[Vec<u8>]) -> RouteSamples {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut latencies = Vec::with_capacity(requests.len());
    let phase_start = Instant::now();
    for raw in requests {
        let start = Instant::now();
        let status = roundtrip(&mut stream, &mut reader, raw);
        latencies.push(start.elapsed().as_secs_f64());
        assert!(status < 500, "{route}: server answered {status}");
    }
    RouteSamples { route, latencies, elapsed_s: phase_start.elapsed().as_secs_f64() }
}

/// Nearest-rank percentile of an unsorted latency set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The per-connection workload: seeded label posts over a connection-local
/// instance pool and a shared annotator pool, then consensus / annotator /
/// stats reads.
fn build_workload(conn: usize, posts: usize, reads: usize) -> Vec<(&'static str, Vec<Vec<u8>>)> {
    let mut rng = TensorRng::seed_from_u64(0x5e27e + conn as u64);
    let instance_pool = 64;
    let post_requests: Vec<Vec<u8>> = (0..posts)
        .map(|n| {
            let body = format!(
                r#"{{"instance": "c{conn}-i{}", "annotator": "a{}", "class": {}}}"#,
                n % instance_pool,
                rng.usize_below(8),
                rng.usize_below(2),
            );
            http_post("/labels", &body)
        })
        .collect();
    let consensus_requests: Vec<Vec<u8>> =
        (0..reads).map(|n| http_get(&format!("/consensus/c{conn}-i{}", n % instance_pool))).collect();
    let annotator_requests: Vec<Vec<u8>> = (0..reads).map(|n| http_get(&format!("/annotators/a{}", n % 8))).collect();
    let stats_requests: Vec<Vec<u8>> = (0..reads.div_ceil(4)).map(|_| http_get("/stats")).collect();
    vec![
        ("post_labels", post_requests),
        ("get_consensus", consensus_requests),
        ("get_annotators", annotator_requests),
        ("get_stats", stats_requests),
    ]
}

fn main() {
    let iters = bench_iters();
    let conns = bench_connections_from_env();
    let workers = env_usize_at_least_one("LNCL_SERVE_THREADS").unwrap_or(4);
    let posts_per_conn = iters * 25;
    let reads_per_conn = iters * 15;

    let state = Arc::new(AppState::new(StreamingConfig::pooled(2)));
    let server = Server::start(state, ServerConfig { workers, ..ServerConfig::default() }).expect("bind loopback");
    let addr = server.addr();
    println!(
        "serve_bench: {conns} connection(s) x ({posts_per_conn} posts + {} reads) against {addr} ({workers} workers)",
        reads_per_conn * 2 + reads_per_conn.div_ceil(4)
    );

    // Each connection runs the same phase sequence; phases are merged per
    // route across connections afterwards.
    let per_conn: Vec<Vec<RouteSamples>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    build_workload(conn, posts_per_conn, reads_per_conn)
                        .into_iter()
                        .map(|(route, requests)| run_phase(addr, route, &requests))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut report = BenchReport::new("serve");
    report.environment.push(("serve_workers".to_string(), workers.to_string()));
    report.environment.push(("serve_conns".to_string(), conns.to_string()));

    let routes = ["post_labels", "get_consensus", "get_annotators", "get_stats"];
    let mut total_requests = 0usize;
    let mut total_elapsed = 0.0f64;
    for route in routes {
        let mut latencies = Vec::new();
        let mut elapsed = 0.0f64;
        for conn in &per_conn {
            for samples in conn.iter().filter(|s| s.route == route) {
                latencies.extend_from_slice(&samples.latencies);
                // connections run concurrently: the route's effective wall
                // time is the slowest connection's phase
                elapsed = elapsed.max(samples.elapsed_s);
            }
        }
        latencies.sort_by(f64::total_cmp);
        let count = latencies.len();
        let mean = latencies.iter().sum::<f64>() / count as f64;
        report.record(&format!("{route}/p50"), count, &[percentile(&latencies, 0.50)]);
        report.record(&format!("{route}/p99"), count, &[percentile(&latencies, 0.99)]);
        report.record(&format!("{route}/mean"), count, &[mean]);
        let rps = count as f64 / elapsed.max(1e-9);
        report.record_quality(
            &format!("serve/{route}"),
            SCENARIO_CASE,
            vec![("requests_per_sec".to_string(), rps), ("requests".to_string(), count as f64)],
        );
        total_requests += count;
        total_elapsed += elapsed;
    }
    report.record_quality(
        "serve/all",
        SCENARIO_CASE,
        vec![("requests_per_sec".to_string(), total_requests as f64 / total_elapsed.max(1e-9))],
    );

    match report.write() {
        Ok(path) => println!("serve_bench: wrote {}", path.display()),
        Err(e) => {
            eprintln!("serve_bench: cannot write report: {e}");
            std::process::exit(1);
        }
    }
}
