//! The streaming truth-inference server binary.
//!
//! Configuration is environment-only (see [`lncl_serve::config`]):
//!
//! ```text
//! LNCL_SERVE_PORT=7878 LNCL_SERVE_CLASSES=2 cargo run --release -p lncl-serve --bin serve
//! ```
//!
//! The process serves until killed.  `LNCL_SERVE_WINDOW` (plus optional
//! `LNCL_SERVE_DECAY`) switches the estimator from pooled Dawid–Skene to
//! the stream-windowed DS-W statistics; `LNCL_SERVE_POLICY` /
//! `LNCL_SERVE_BUDGET` / `LNCL_SERVE_SEED` configure the closed-loop
//! `/assign` planner and the label budget.

use lncl_serve::config::{routing_config_from_env, server_config_from_env, streaming_config_from_env};
use lncl_serve::server::{Server, ServerConfig};
use lncl_serve::state::AppState;
use std::sync::Arc;

fn main() {
    let streaming = streaming_config_from_env();
    let config = server_config_from_env();
    let (policy, budget, seed) = routing_config_from_env();
    let mode = match streaming.window {
        None => "pooled".to_string(),
        Some(w) => format!("windowed (size {}, decay {})", w.size, w.decay),
    };
    let budget_label = budget.map_or("unlimited".to_string(), |b| format!("{b} labels"));
    let state = Arc::new(AppState::with_routing(streaming, policy, budget, seed));
    let server = match Server::start(state, ServerConfig { ..config }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve: listening on http://{} ({} classes, {mode} estimator, {} policy, {budget_label} budget)",
        server.addr(),
        streaming.num_classes,
        policy.name()
    );
    // Serve forever: the supervisor thread owns the accept loop; parking
    // the main thread keeps the process (and the Server guard) alive.
    loop {
        std::thread::park();
    }
}
