//! The streaming truth-inference server binary.
//!
//! Configuration is environment-only (see [`lncl_serve::config`]):
//!
//! ```text
//! LNCL_SERVE_PORT=7878 LNCL_SERVE_CLASSES=2 cargo run --release -p lncl-serve --bin serve
//! ```
//!
//! The process serves until killed.  `LNCL_SERVE_WINDOW` (plus optional
//! `LNCL_SERVE_DECAY`) switches the estimator from pooled Dawid–Skene to
//! the stream-windowed DS-W statistics.

use lncl_serve::config::{server_config_from_env, streaming_config_from_env};
use lncl_serve::server::{Server, ServerConfig};
use lncl_serve::state::AppState;
use std::sync::Arc;

fn main() {
    let streaming = streaming_config_from_env();
    let config = server_config_from_env();
    let mode = match streaming.window {
        None => "pooled".to_string(),
        Some(w) => format!("windowed (size {}, decay {})", w.size, w.decay),
    };
    let state = Arc::new(AppState::new(streaming));
    let server = match Server::start(state, ServerConfig { ..config }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!("serve: listening on http://{} ({} classes, {mode} estimator)", server.addr(), streaming.num_classes);
    // Serve forever: the supervisor thread owns the accept loop; parking
    // the main thread keeps the process (and the Server guard) alive.
    loop {
        std::thread::park();
    }
}
