//! Distributed scenario-sweep coordinator: serves the standard sweep grid
//! ([`lncl_bench::scenario_sweep_configs`], seed 29 — the same grid the
//! serial `scenario_sweep` binary runs) as leased work units, merges the
//! workers' quality rows and writes the canonical quality-only
//! `BENCH_scenario_sweep.json` — bitwise identical to a serial
//! `LNCL_SWEEP_QUALITY_ONLY=1 scenario_sweep` run at the same scale,
//! epochs and method filter.
//!
//! Environment:
//!
//! | variable             | meaning                                   | default          |
//! |----------------------|-------------------------------------------|------------------|
//! | `LNCL_COORD_ADDR`    | listen address                            | `127.0.0.1:7878` |
//! | `LNCL_LEASE_MS`      | work-unit lease in milliseconds           | `30000`          |
//! | `LNCL_SCALE`         | sweep scale (resolved here, sent to workers) | `small`       |
//! | `LNCL_EPOCHS`        | training epochs (resolved here, sent to workers) | per-scale |
//! | `LNCL_SWEEP_METHODS` | comma-separated method filter             | all supporting   |
//! | `LNCL_BENCH_DIR`     | report output directory                   | cwd              |
//!
//! Workers never read `LNCL_SCALE` / `LNCL_EPOCHS` / `LNCL_SWEEP_METHODS`
//! themselves — those travel in the `Spec` message, so a mixed-environment
//! fleet cannot fork the result.

use lncl_bench::quality::quality_only_report;
use lncl_bench::{scenario_sweep_configs, Scale};
use lncl_serve::sweep::{CoordConfig, Coordinator};
use lncl_tensor::env::env_parsed;
use std::time::Duration;

fn env_sweep_methods() -> Option<Vec<String>> {
    let raw = std::env::var("LNCL_SWEEP_METHODS").ok()?;
    let names: Vec<String> = raw.split(',').map(str::trim).filter(|n| !n.is_empty()).map(String::from).collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

fn main() {
    let scale = Scale::from_env();
    let epochs = scale.epochs();
    let addr = std::env::var("LNCL_COORD_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let lease_ms = env_parsed::<u64>("LNCL_LEASE_MS", "milliseconds >= 1", |&ms| ms >= 1).unwrap_or(30_000);
    let methods = env_sweep_methods();
    let configs = scenario_sweep_configs(scale, 29);
    let cfg = CoordConfig {
        addr,
        lease: Duration::from_millis(lease_ms),
        methods: methods.clone(),
        ..CoordConfig::new(scale, epochs)
    };
    println!(
        "sweep coordinator — {} unit(s), scale {}, {} epochs, lease {} ms, listening on {}",
        configs.len(),
        scale.name(),
        epochs,
        lease_ms,
        cfg.addr
    );
    if let Some(names) = &methods {
        println!("method filter (LNCL_SWEEP_METHODS): {}", names.join(", "));
    }
    let coordinator = match Coordinator::start(&configs, cfg) {
        Ok(coordinator) => coordinator,
        Err(e) => {
            eprintln!("sweep_coord: cannot listen: {e}");
            std::process::exit(1);
        }
    };
    let outcome = coordinator.wait();
    println!(
        "sweep complete: {} unit(s), {} completion(s) accepted, {} duplicate(s) rejected, {} reissue(s)",
        outcome.units,
        outcome.accounting.completions_accepted,
        outcome.accounting.duplicates_rejected,
        outcome.accounting.reissues
    );
    let report = quality_only_report("scenario_sweep", scale, outcome.rows);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("sweep_coord: cannot write the report: {e}");
            std::process::exit(1);
        }
    }
}
