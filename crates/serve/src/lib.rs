//! # lncl-serve
//!
//! A streaming truth-inference service over the incremental Dawid–Skene
//! estimator ([`lncl_crowd::truth::streaming`]).  Crowd labels are POSTed
//! one at a time (or in batches) and consensus posteriors / annotator
//! reliabilities can be queried between arrivals — the serving-layer
//! complement to the batch experiment harness, turning the reproduction's
//! truth-inference stack into a long-lived process.
//!
//! The crate is deliberately layered so everything above the socket is
//! unit-testable:
//!
//! * [`http`] — hand-rolled HTTP/1.1 parsing and response framing (the
//!   container has no crates.io access, so no hyper), with hard limits on
//!   head and body size and typed 4xx errors.
//! * [`routes`] — the typed route table: [`Route::parse`] turns a request
//!   line into a [`Route`] variant or a typed 404/405 (the `405` carries
//!   the exact `Allow` header value), and dispatch matches exhaustively.
//! * [`state`] — [`AppState`]: the estimator plus string
//!   id interners behind one mutex, and the transport-free route dispatch
//!   — including the closed-loop `/assign` planner driven by a
//!   [`lncl_crowd::scenario::router`] policy under an optional label
//!   budget.
//! * [`server`] — `TcpListener` accept loop feeding a fixed worker pool
//!   over an mpsc channel; keep-alive connections, panic-isolated request
//!   handling.
//! * [`config`] — `LNCL_SERVE_*` environment-variable parsing, following
//!   the workspace's warn-and-default convention.
//!
//! ## Routes
//!
//! | route                   | method | purpose                                     |
//! |-------------------------|--------|---------------------------------------------|
//! | `/labels`               | POST   | ingest one label or `{"labels": [...]}` (`409` once over budget) |
//! | `/assign`               | POST   | plan the next routed assignments from live estimates |
//! | `/budget`               | GET    | active policy and label-budget accounting   |
//! | `/consensus/<instance>` | GET    | posterior, hard class, entropy, label count |
//! | `/annotators/<id>`      | GET    | confusion matrix, reliability, label count  |
//! | `/finalize`             | POST   | full batch EM over everything ingested      |
//! | `/stats`                | GET    | counters and estimator mode                 |
//! | `/healthz`              | GET    | liveness                                    |
//!
//! The `serve` binary wires this up from environment variables; the
//! `serve_bench` binary starts an in-process server and drives it over
//! loopback with persistent client connections, writing the
//! `BENCH_serve.json` latency/throughput report the CI smoke job gates on.
//!
//! A second subsystem, [`sweep`], turns the benchmark harness's scenario
//! sweep into a distributed coordinator/worker pipeline (the
//! `sweep_coord` / `sweep_worker` binaries): work units are leased over a
//! small framed TCP protocol, stragglers and crashed workers are
//! re-issued, duplicate completions are deduplicated, and the merged
//! report is bitwise identical to the serial sweep.
//!
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root; the crate README has the quickstart with curl examples and the
//! `LNCL_SERVE_*` variable reference.)
//!
//! ```no_run
//! use lncl_serve::{server::{Server, ServerConfig}, state::AppState};
//! use lncl_crowd::truth::streaming::StreamingConfig;
//! use std::sync::Arc;
//!
//! let state = Arc::new(AppState::new(StreamingConfig::pooled(2)));
//! let server = Server::start(state, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! ```

pub mod config;
pub mod http;
pub mod routes;
pub mod server;
pub mod state;
pub mod sweep;

pub use routes::{Route, RouteError};
pub use server::{Server, ServerConfig};
pub use state::{ApiResponse, AppState};
