//! Property-style equivalence tests: the blocked / sharded / fused kernels
//! must match naive reference implementations to 1e-6 across odd shapes
//! (1×N, N×1, primes, non-multiples of the tile sizes).  Values are kept
//! small so f32 rounding differences between summation orders stay well
//! under the tolerance.

use lncl_tensor::ops::{self, MatmulPlan};
use lncl_tensor::{par, Matrix, TensorRng};

const TOL: f32 = 1e-6;

fn random(rows: usize, cols: usize, rng: &mut TensorRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| (rng.uniform() - 0.5) * 0.2)
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for kk in 0..a.cols() {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn naive_transpose(a: &Matrix) -> Matrix {
    Matrix::from_fn(a.cols(), a.rows(), |r, c| a[(c, r)])
}

fn assert_close(actual: &Matrix, expect: &Matrix, label: &str) {
    assert_eq!(actual.shape(), expect.shape(), "{label}: shape mismatch");
    for r in 0..actual.rows() {
        for c in 0..actual.cols() {
            let (x, y) = (actual[(r, c)], expect[(r, c)]);
            assert!((x - y).abs() <= TOL, "{label}: ({r},{c}) {x} vs {y} (diff {})", (x - y).abs());
        }
    }
}

/// Odd shapes: row/column vectors, primes, exact tile multiples and
/// off-by-one around the `MatmulPlan` tile sizes, plus shapes big enough to
/// engage the blocked (multi-tile) path.
fn shape_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 17, 1),
        (1, 64, 33),
        (33, 64, 1),
        (7, 13, 5),
        (19, 1, 23),
        (31, 37, 29),
        (64, 128, 256), // exact tile sizes
        (65, 129, 257), // one past each tile size
        (63, 127, 255), // one short of each tile size
        (70, 200, 40),  // k spans two kc blocks
        (130, 50, 300), // n spans two nc blocks
    ]
}

#[test]
fn blocked_matmul_matches_naive_reference() {
    let mut rng = TensorRng::seed_from_u64(11);
    for (m, k, n) in shape_grid() {
        let a = random(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        assert_close(&ops::matmul(&a, &b), &naive_matmul(&a, &b), &format!("matmul {m}x{k}x{n}"));
    }
}

#[test]
fn transpose_variants_match_naive_reference() {
    let mut rng = TensorRng::seed_from_u64(13);
    for (m, k, n) in shape_grid() {
        let a = random(m, k, &mut rng);
        let b = random(n, k, &mut rng);
        let expect = naive_matmul(&a, &naive_transpose(&b));
        assert_close(&ops::matmul_transpose_b(&a, &b), &expect, &format!("matmul_transpose_b {m}x{k}x{n}"));

        let at = random(k, m, &mut rng);
        let bb = random(k, n, &mut rng);
        let expect = naive_matmul(&naive_transpose(&at), &bb);
        assert_close(&ops::matmul_transpose_a(&at, &bb), &expect, &format!("matmul_transpose_a {m}x{k}x{n}"));
    }
}

#[test]
fn sharded_kernels_match_serial_for_every_shard_count() {
    // Drives the row-sharded path directly (independently of the flop
    // threshold and the machine's core count): each worker computes a
    // disjoint row block through the public accumulate entry point.
    let mut rng = TensorRng::seed_from_u64(17);
    for (m, k, n) in [(5usize, 40, 9), (33, 64, 21), (70, 200, 40)] {
        let a = random(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        let serial = ops::matmul(&a, &b);
        for shards in [2usize, 3, 8] {
            let mut out = Matrix::zeros(m, n);
            par::shard_rows(&mut out, shards, |row0, rows, block| {
                let a_rows = a.slice_rows(row0, row0 + rows);
                let mut chunk = Matrix::zeros(rows, n);
                ops::matmul_acc(&a_rows, &b, &mut chunk);
                block.copy_from_slice(chunk.as_slice());
            });
            assert_close(&out, &serial, &format!("shards={shards} {m}x{k}x{n}"));
        }
    }
}

#[test]
fn large_products_cross_the_parallel_threshold_and_stay_correct() {
    // 160*180*100 = 2.88M flops > PAR_FLOPS: on multi-core machines this
    // takes the sharded path through the public API.
    let mut rng = TensorRng::seed_from_u64(19);
    let (m, k, n) = (160, 180, 100);
    assert!(m * k * n >= MatmulPlan::PAR_FLOPS);
    let a = random(m, k, &mut rng);
    let b = random(k, n, &mut rng);
    assert_close(&ops::matmul(&a, &b), &naive_matmul(&a, &b), "parallel matmul");
}

#[test]
fn fused_ops_match_their_compositions_on_odd_shapes() {
    let mut rng = TensorRng::seed_from_u64(23);
    for (m, k, n) in [(1usize, 5, 3), (4, 1, 7), (9, 130, 11), (70, 200, 40)] {
        let x = random(m, k, &mut rng);
        let w = random(k, n, &mut rng);
        let bias = random(1, n, &mut rng);
        let xw = ops::matmul(&x, &w);
        assert_close(&ops::affine(&x, &w, &bias), &ops::add_row_broadcast(&xw, &bias), "affine");
        let expect_relu = ops::add_row_broadcast(&xw, &bias).map(|v| v.max(0.0));
        assert_close(&ops::affine_relu(&x, &w, &bias), &expect_relu, "affine_relu");
        assert_close(&ops::add_bias_relu(&xw, &bias), &expect_relu, "add_bias_relu");

        let h = random(m, k, &mut rng);
        let u = random(k, n, &mut rng);
        let expect = ops::add_row_broadcast(&ops::add(&xw, &ops::matmul(&h, &u)), &bias);
        assert_close(&ops::dual_affine(&x, &w, &h, &u, &bias), &expect, "dual_affine");
    }
}

#[test]
fn axpy_equivalence_on_odd_lengths() {
    let mut rng = TensorRng::seed_from_u64(29);
    for len in [0usize, 1, 3, 4, 5, 127, 1024, 1025] {
        let x: Vec<f32> = (0..len).map(|_| rng.uniform() - 0.5).collect();
        let mut y: Vec<f32> = (0..len).map(|_| rng.uniform() - 0.5).collect();
        let mut expect = y.clone();
        for (e, xv) in expect.iter_mut().zip(&x) {
            *e += -0.75 * xv;
        }
        ops::axpy(-0.75, &x, &mut y);
        assert_eq!(y, expect, "axpy len {len}");
    }
}

#[test]
fn fused_softmax_xent_matches_composition_across_shapes() {
    let mut rng = TensorRng::seed_from_u64(31);
    for (rows, k) in [(1usize, 2), (7, 9), (40, 3)] {
        let logits = Matrix::from_fn(rows, k, |_, _| (rng.uniform() - 0.5) * 6.0);
        let mut targets = Matrix::from_fn(rows, k, |_, _| rng.uniform());
        for r in 0..rows {
            let sum: f32 = targets.row(r).iter().sum();
            targets.row_mut(r).iter_mut().for_each(|v| *v /= sum);
        }
        let (loss, probs) = ops::softmax_xent_rows(&logits, &targets);
        let expect_probs = lncl_tensor::stats::softmax_rows(&logits);
        assert_close(&probs, &expect_probs, "softmax probs");
        let mut expect_loss = 0.0;
        for r in 0..rows {
            expect_loss += lncl_tensor::stats::cross_entropy(targets.row(r), expect_probs.row(r));
        }
        expect_loss /= rows as f32;
        assert!((loss - expect_loss).abs() <= 1e-5, "loss {loss} vs {expect_loss}");
    }
}
