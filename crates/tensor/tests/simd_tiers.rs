//! Cross-tier kernel equivalence: every SIMD tier the machine offers must
//! produce **bitwise identical** results to the scalar fallback — not
//! approximately equal, `f32::to_bits`-equal.  This is the contract that
//! lets the tiered dispatch stay invisible to every seeded end-to-end test
//! and all checked-in benchmark baselines: the tiers share the per-element
//! reduction order (ascending inner index, one `mul` + one `add` per
//! summand, no FMA contraction), so which tier runs is unobservable.
//!
//! Shapes deliberately include odd sizes, tile off-by-ones and remainder
//! widths so the vector main loops *and* their scalar tails are exercised
//! on every tier.

use lncl_tensor::ops::{self, MatmulPlan};
use lncl_tensor::simd::{self, KernelTier};
use lncl_tensor::{Matrix, TensorRng};

fn random(rows: usize, cols: usize, rng: &mut TensorRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| (rng.uniform() - 0.5) * 2.0)
}

/// Random matrix with ~25% exact zeros, exercising the zero-skip branch of
/// the depth loop on every tier.
fn random_sparse(rows: usize, cols: usize, rng: &mut TensorRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let v = rng.uniform();
        if v < 0.25 {
            0.0
        } else {
            (v - 0.5) * 2.0
        }
    })
}

fn assert_bitwise(actual: &Matrix, expect: &Matrix, label: &str) {
    assert_eq!(actual.shape(), expect.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in actual.as_slice().iter().zip(expect.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label}: flat index {i}: {x:?} ({:#x}) vs {y:?} ({:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Odd/remainder shapes: widths below one vector lane group, between SSE
/// and AVX widths, off-by-ones around the 16-wide register tile and the
/// plan's kc/nc blocks, plus sizes that cross the blocked multi-tile path.
fn shape_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (3, 5, 2),
        (2, 9, 5),
        (5, 7, 7),
        (4, 11, 9),
        (7, 13, 15),
        (9, 17, 16),
        (8, 19, 17),
        (11, 23, 31),
        (13, 29, 33),
        (31, 37, 29),
        (63, 127, 47),
        (65, 129, 257),
        (70, 200, 40),
        (130, 50, 300),
    ]
}

#[test]
fn matmul_tiers_agree_bitwise_over_the_shape_grid() {
    let mut rng = TensorRng::seed_from_u64(71);
    for (m, k, n) in shape_grid() {
        let a = random(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        let base_plan = MatmulPlan::for_shape(m, k, n);
        let mut scalar = Matrix::zeros(m, n);
        ops::matmul_acc_planned(&a, &b, &mut scalar, &base_plan.with_tier(KernelTier::Scalar));
        for tier in simd::available_tiers() {
            let mut out = Matrix::zeros(m, n);
            ops::matmul_acc_planned(&a, &b, &mut out, &base_plan.with_tier(tier));
            assert_bitwise(&out, &scalar, &format!("matmul {m}x{k}x{n} tier {tier:?}"));
        }
    }
}

#[test]
fn zero_skip_branch_agrees_bitwise_across_tiers() {
    // sparse A drives the `a_ik == 0.0` skip, which must fire identically
    // on every tier (skipping a multiply is observable: it never turns a
    // -0.0 accumulator into +0.0)
    let mut rng = TensorRng::seed_from_u64(73);
    for (m, k, n) in [(7usize, 33, 17), (19, 64, 48), (33, 127, 65)] {
        let a = random_sparse(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        let base_plan = MatmulPlan::for_shape(m, k, n);
        let mut scalar = Matrix::zeros(m, n);
        ops::matmul_acc_planned(&a, &b, &mut scalar, &base_plan.with_tier(KernelTier::Scalar));
        for tier in simd::available_tiers() {
            let mut out = Matrix::zeros(m, n);
            ops::matmul_acc_planned(&a, &b, &mut out, &base_plan.with_tier(tier));
            assert_bitwise(&out, &scalar, &format!("sparse matmul {m}x{k}x{n} tier {tier:?}"));
        }
    }
}

#[test]
fn accumulating_into_nonzero_output_agrees_bitwise_across_tiers() {
    let mut rng = TensorRng::seed_from_u64(79);
    let (m, k, n) = (17, 41, 35);
    let a = random(m, k, &mut rng);
    let b = random(k, n, &mut rng);
    let init = random(m, n, &mut rng);
    let base_plan = MatmulPlan::for_shape(m, k, n);
    let mut scalar = init.clone();
    ops::matmul_acc_planned(&a, &b, &mut scalar, &base_plan.with_tier(KernelTier::Scalar));
    for tier in simd::available_tiers() {
        let mut out = init.clone();
        ops::matmul_acc_planned(&a, &b, &mut out, &base_plan.with_tier(tier));
        assert_bitwise(&out, &scalar, &format!("acc-into-nonzero tier {tier:?}"));
    }
}

#[test]
fn sharded_tiers_agree_bitwise_with_serial_scalar() {
    // sharding and tiering compose: every (shards, tier) combination must
    // still reproduce the serial scalar product bit for bit
    let mut rng = TensorRng::seed_from_u64(83);
    let (m, k, n) = (48, 64, 33);
    let a = random(m, k, &mut rng);
    let b = random(k, n, &mut rng);
    let serial = MatmulPlan::for_shape(m, k, n).with_tier(KernelTier::Scalar);
    let mut expect = Matrix::zeros(m, n);
    ops::matmul_acc_planned(&a, &b, &mut expect, &serial);
    for shards in [2usize, 3, 5] {
        for tier in simd::available_tiers() {
            let plan = MatmulPlan { shards, tier, ..MatmulPlan::for_shape(m, k, n) };
            let mut out = Matrix::zeros(m, n);
            ops::matmul_acc_planned(&a, &b, &mut out, &plan);
            assert_bitwise(&out, &expect, &format!("shards {shards} tier {tier:?}"));
        }
    }
}

#[test]
fn planned_tiers_match_the_public_entry_points() {
    // whatever tier for_shape picked, the public matmul/transpose wrappers
    // must equal the forced-scalar plan bitwise — the dispatch decision
    // itself is unobservable in the results
    let mut rng = TensorRng::seed_from_u64(89);
    for (m, k, n) in [(5usize, 9, 3), (33, 64, 21), (70, 200, 40), (160, 180, 100)] {
        let a = random(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        let mut scalar = Matrix::zeros(m, n);
        ops::matmul_acc_planned(&a, &b, &mut scalar, &MatmulPlan::for_shape(m, k, n).with_tier(KernelTier::Scalar));
        assert_bitwise(&ops::matmul(&a, &b), &scalar, &format!("public matmul {m}x{k}x{n}"));
    }
    // matmul_transpose_a shares tile_kloop through its strided access path
    let at = random(41, 27, &mut rng);
    let bb = random(41, 19, &mut rng);
    let naive = {
        let mut out = Matrix::zeros(27, 19);
        for i in 0..27 {
            for j in 0..19 {
                let mut acc = 0.0f32;
                for kk in 0..41 {
                    let v = at[(kk, i)];
                    if v == 0.0 {
                        continue;
                    }
                    acc += v * bb[(kk, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    };
    assert_bitwise(&ops::matmul_transpose_a(&at, &bb), &naive, "matmul_transpose_a vs naive scalar");
}

#[test]
fn plan_tier_selection_respects_width() {
    // plan-time tiering: sub-lane widths stay scalar no matter what the
    // hardware offers; wide shapes take the detected tier
    let narrow = MatmulPlan::for_shape(64, 64, 2);
    assert_eq!(narrow.tier, KernelTier::Scalar, "width 2 must stay scalar");
    let wide = MatmulPlan::for_shape(64, 64, 64);
    assert_eq!(wide.tier, simd::detected_tier(), "wide shapes take the detected tier");
    let mid = MatmulPlan::for_shape(64, 64, 5);
    assert!(mid.tier <= KernelTier::Sse2, "widths in [4, 8) cap at SSE2, got {:?}", mid.tier);
}
