//! Numerically stable statistical helpers: softmax, log-sum-exp, entropy,
//! argmax and simple normalisation utilities shared by the probabilistic
//! models in the workspace.

use crate::Matrix;

/// Numerically stable softmax of a slice, in place (no allocation).  An
/// empty slice is left untouched.
pub fn softmax_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / values.len() as f32;
        values.iter_mut().for_each(|v| *v = uniform);
    }
}

/// Numerically stable softmax of a slice.
///
/// Returns a vector of the same length summing to 1.  An empty input returns
/// an empty vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Row-wise softmax of a matrix, in place.
pub fn softmax_rows_in_place(m: &mut Matrix) {
    for r in 0..m.rows() {
        softmax_in_place(m.row_mut(r));
    }
}

/// Row-wise softmax of a matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// Numerically stable `log(sum(exp(x)))`.
pub fn log_sum_exp(values: &[f32]) -> f32 {
    if values.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Index of the maximum element (first one on ties).  Panics on empty input.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax: empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Row-wise argmax.
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows()).map(|r| argmax(m.row(r))).collect()
}

/// Shannon entropy (nats) of a probability vector.  Zero-probability entries
/// contribute zero.
pub fn entropy(probs: &[f32]) -> f32 {
    probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
}

/// KL divergence `KL(p || q)` in nats.  Entries where `p == 0` contribute 0;
/// entries where `q == 0` but `p > 0` contribute infinity.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "kl_divergence: length mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f32::INFINITY;
            }
            acc += pi * (pi / qi).ln();
        }
    }
    acc
}

/// Cross-entropy `H(p, q) = -sum p log q` in nats, clamping `q` away from 0.
pub fn cross_entropy(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "cross_entropy: length mismatch");
    let eps = 1e-12f32;
    p.iter().zip(q.iter()).map(|(&pi, &qi)| -pi * qi.max(eps).ln()).sum()
}

/// Normalises a non-negative slice in place so it sums to 1.  If the sum is
/// zero the result is the uniform distribution.
pub fn normalize_in_place(values: &mut [f32]) {
    let sum: f32 = values.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        values.iter_mut().for_each(|v| *v /= sum);
    } else if !values.is_empty() {
        let uniform = 1.0 / values.len() as f32;
        values.iter_mut().for_each(|v| *v = uniform);
    }
}

/// Returns a normalised copy of `values` (see [`normalize_in_place`]).
pub fn normalized(values: &[f32]) -> Vec<f32> {
    let mut out = values.to_vec();
    normalize_in_place(&mut out);
    out
}

/// Pearson correlation coefficient between two equally-long samples.
/// Returns 0.0 when either sample has zero variance or fewer than 2 points.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f32;
    let mx = xs.iter().sum::<f32>() / nf;
    let my = ys.iter().sum::<f32>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

/// Five-number summary (min, q1, median, q3, max) used for the Figure-4
/// style boxplots.  Quartiles use linear interpolation.
pub fn five_number_summary(values: &[f32]) -> [f32; 5] {
    assert!(!values.is_empty(), "five_number_summary: empty input");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in five_number_summary input"));
    let q = |p: f32| -> f32 {
        let pos = p * (sorted.len() - 1) as f32;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    [sorted[0], q(0.25), q(0.5), q(0.75), sorted[sorted.len() - 1]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!(p[0] > 0.999 && p[1] < 1e-3);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let v = [0.1f32, 0.2, 0.3];
        let naive = v.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&v) - naive).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_ge_max() {
        let v = [3.0f32, -2.0, 7.5];
        assert!(log_sum_exp(&v) >= 7.5);
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let h = entropy(&[0.25; 4]);
        assert!((h - (4.0f32).ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-7);
        assert!(kl_divergence(&p, &[0.5, 0.3, 0.2]) > 0.0);
    }

    #[test]
    fn cross_entropy_ge_entropy() {
        let p = [0.7, 0.3];
        let q = [0.5, 0.5];
        assert!(cross_entropy(&p, &q) >= entropy(&p) - 1e-6);
    }

    #[test]
    fn normalize_handles_zero_sum() {
        let mut v = [0.0f32, 0.0];
        normalize_in_place(&mut v);
        assert_eq!(v, [0.5, 0.5]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-6);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn five_number_summary_sorted_input() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s, [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn softmax_rows_normalises_each_row() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]);
        let p = softmax_rows(&m);
        assert!((p.row(0)[0] - 0.5).abs() < 1e-6);
        assert!(p.row(1)[0] > 0.99);
    }
}
