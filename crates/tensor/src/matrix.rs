//! The dense row-major [`Matrix`] type and its constructors/accessors.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32` values.
///
/// The type is deliberately simple: a shape plus a flat `Vec<f32>`.  All
/// higher-level behaviour (matrix products, reductions, softmax, …) lives in
/// the free functions of [`crate::ops`] and [`crate::stats`] so the data type
/// itself stays small and easy to reason about.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "Matrix::from_rows: row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an n x 1 column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates the n x n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col index {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns entry `(r, c)`, checked.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self[(r, c)]
    }

    /// Sets entry `(r, c)`, checked.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self[(r, c)] = value;
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        let mut out = self.clone();
        out.map_inplace(&mut f);
        out
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Stacks a slice of equally-wide row vectors / matrices vertically.
    ///
    /// # Panics
    /// Panics if the inputs disagree on the number of columns.
    pub fn vstack(parts: &[&Matrix]) -> Self {
        if parts.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack: inconsistent column counts");
            data.extend_from_slice(&p.data);
        }
        Self { rows, cols, data }
    }

    /// Concatenates a slice of equally-tall matrices horizontally.
    pub fn hstack(parts: &[&Matrix]) -> Self {
        if parts.is_empty() {
            return Self::zeros(0, 0);
        }
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack: inconsistent row counts");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts the sub-matrix made of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "slice_rows: invalid range {start}..{end}");
        Self::from_vec(end - start, self.cols, self.data[start * self.cols..end * self.cols].to_vec())
    }

    /// Frobenius norm (sqrt of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum entry (negative infinity for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum entry (positive infinity for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns true if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.data.iter().zip(other.data.iter()).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().enumerate().take(max_rows) {
            writeln!(f, "  {i:>3}: {row:?}")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_shape_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(id[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn map_and_fill() {
        let mut m = Matrix::full(2, 2, 2.0);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled, Matrix::full(2, 2, 4.0));
        m.fill(7.0);
        assert_eq!(m, Matrix::full(2, 2, 7.0));
    }

    #[test]
    fn vstack_and_hstack() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let c = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let d = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = Matrix::hstack(&[&c, &d]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_rows_extracts_block() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.row(0), &[2.0]);
        assert_eq!(s.row(1), &[3.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.mean(), 1.5);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), -2.0);
        assert!((m.frobenius_norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }
}
