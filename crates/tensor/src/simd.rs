//! Tiered SIMD kernels (`std::arch` AVX2 / SSE2) behind runtime feature
//! detection, with a scalar fallback that is always available.
//!
//! Every vector kernel in this module is **lane-parallel**: each output
//! element is produced by exactly the same sequence of `mul`/`add`
//! operations, in the same order, as the scalar loop it replaces — SIMD
//! only changes *how many independent elements* advance per instruction,
//! never the reduction shape of any single element.  No FMA contraction is
//! used (explicit `mul` + `add` intrinsics), so every tier is **bitwise
//! identical** to the scalar path; the cross-tier suite in
//! `tests/simd_tiers.rs` asserts this on odd shapes via `f32::to_bits`.
//!
//! Tier selection happens once per process ([`detected_tier`], cached) from
//! hardware capabilities, capped by the `LNCL_SIMD` environment variable:
//!
//! * unset or `auto` — best tier the CPU supports;
//! * `off` / `scalar` — force the scalar fallback (the CI scalar leg);
//! * `sse` / `sse2` — cap at SSE2;
//! * `avx2` — cap at AVX2 (still requires hardware support);
//! * anything else — warning on stderr, treated as `auto` (the repo-wide
//!   `LNCL_*` convention from [`crate::env`]).
//!
//! [`MatmulPlan`](crate::ops::MatmulPlan) picks the tier **per shape at
//! plan time** (tiny widths stay scalar — a vector setup would cost more
//! than it saves), mirroring how its flop thresholds pick tiling and
//! sharding.

use std::sync::OnceLock;

/// One execution tier of the kernel dispatch, ordered from the
/// always-available fallback to the widest vector path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// Plain scalar loops — available everywhere, the reference semantics.
    Scalar,
    /// 128-bit SSE2 lanes (4 × f32).
    Sse2,
    /// 256-bit AVX2 lanes (8 × f32).
    Avx2,
}

impl KernelTier {
    /// Short lowercase label (used in warnings and bench environment rows).
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
        }
    }
}

/// Parses an `LNCL_SIMD` value into a tier *cap*.  `None` means "no cap"
/// (auto).  Unknown values warn and fall back to auto, per the repo's
/// env-var convention.
fn parse_simd_cap(raw: &str) -> Option<KernelTier> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => None,
        "off" | "scalar" | "0" => Some(KernelTier::Scalar),
        "sse" | "sse2" => Some(KernelTier::Sse2),
        "avx" | "avx2" => Some(KernelTier::Avx2),
        other => {
            eprintln!("warning: ignoring invalid LNCL_SIMD={other:?} (expected off|scalar|sse2|avx2|auto)");
            None
        }
    }
}

/// Best tier the *hardware* supports, ignoring `LNCL_SIMD`.  This is what
/// the cross-tier equivalence tests iterate over, so forcing the scalar
/// path via the environment cannot silently skip the SIMD legs.
pub fn hardware_tier() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelTier::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return KernelTier::Sse2;
        }
    }
    KernelTier::Scalar
}

/// Every tier runnable on this machine, from scalar up to
/// [`hardware_tier`] — the iteration set of the equivalence suite.
pub fn available_tiers() -> Vec<KernelTier> {
    [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2].into_iter().filter(|&t| t <= hardware_tier()).collect()
}

/// The process-wide active tier: [`hardware_tier`] capped by `LNCL_SIMD`.
/// Detected once and cached — plans read this at construction time.
pub fn detected_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let hardware = hardware_tier();
        match std::env::var("LNCL_SIMD").ok().as_deref().and_then(parse_simd_cap) {
            Some(cap) => cap.min(hardware),
            None => hardware,
        }
    })
}

// ---------------------------------------------------------------------------
// axpy: y[j] += alpha * x[j]
// ---------------------------------------------------------------------------

#[inline]
fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn axpy_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = y.len();
    let va = _mm_set1_ps(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut j = 0;
    while j + 4 <= n {
        let prod = _mm_mul_ps(va, _mm_loadu_ps(xp.add(j)));
        _mm_storeu_ps(yp.add(j), _mm_add_ps(_mm_loadu_ps(yp.add(j)), prod));
        j += 4;
    }
    axpy_scalar(alpha, &x[j..], &mut y[j..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = y.len();
    let va = _mm256_set1_ps(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut j = 0;
    while j + 8 <= n {
        let prod = _mm256_mul_ps(va, _mm256_loadu_ps(xp.add(j)));
        _mm256_storeu_ps(yp.add(j), _mm256_add_ps(_mm256_loadu_ps(yp.add(j)), prod));
        j += 8;
    }
    axpy_scalar(alpha, &x[j..], &mut y[j..]);
}

/// `y += alpha * x` on the given tier.  Lane-parallel (one `mul` + one
/// `add` per element), so all tiers agree bitwise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(tier: KernelTier, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch ({} vs {})", x.len(), y.len());
    match tier {
        KernelTier::Scalar => axpy_scalar(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only handed out by detection, so the
        // feature is present on this CPU.
        KernelTier::Sse2 => unsafe { axpy_sse2(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { axpy_avx2(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_scalar(alpha, x, y),
    }
}

// ---------------------------------------------------------------------------
// add_assign: dst[j] += src[j]
// ---------------------------------------------------------------------------

#[inline]
fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn add_assign_sse2(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    let mut j = 0;
    while j + 4 <= n {
        _mm_storeu_ps(dp.add(j), _mm_add_ps(_mm_loadu_ps(dp.add(j)), _mm_loadu_ps(sp.add(j))));
        j += 4;
    }
    add_assign_scalar(&mut dst[j..], &src[j..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    let mut j = 0;
    while j + 8 <= n {
        _mm256_storeu_ps(dp.add(j), _mm256_add_ps(_mm256_loadu_ps(dp.add(j)), _mm256_loadu_ps(sp.add(j))));
        j += 8;
    }
    add_assign_scalar(&mut dst[j..], &src[j..]);
}

/// `dst += src` on the given tier — the flat accumulation at the bottom of
/// the Eq. 12 count update and the Eq. 13 log-likelihood sweep.
/// Lane-parallel, so all tiers agree bitwise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(tier: KernelTier, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign: length mismatch ({} vs {})", dst.len(), src.len());
    match tier {
        KernelTier::Scalar => add_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies the feature is present (see `axpy`).
        KernelTier::Sse2 => unsafe { add_assign_sse2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { add_assign_avx2(dst, src) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => add_assign_scalar(dst, src),
    }
}

// ---------------------------------------------------------------------------
// 16-wide register-tile depth loop: acc[j] += a[kk] * b[kk*stride + j]
// ---------------------------------------------------------------------------

/// Width of the register tile shared with the matmul micro-kernel.
pub const TILE: usize = 16;

#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the public dispatch signature
fn tile_kloop_scalar(
    acc: &mut [f32; TILE],
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    kks: (usize, usize),
    b: &[f32],
    b_stride: usize,
    jt: usize,
) {
    for kk in kks.0..kks.1 {
        let a_ik = a[a_off + kk * a_stride];
        if a_ik == 0.0 {
            continue;
        }
        let b_span: &[f32; TILE] =
            b[kk * b_stride + jt..kk * b_stride + jt + TILE].try_into().expect("span is TILE wide");
        for (av, bv) in acc.iter_mut().zip(b_span) {
            *av += a_ik * bv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)] // mirrors the public dispatch signature
unsafe fn tile_kloop_sse2(
    acc: &mut [f32; TILE],
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    kks: (usize, usize),
    b: &[f32],
    b_stride: usize,
    jt: usize,
) {
    use std::arch::x86_64::*;
    let ap = acc.as_mut_ptr();
    let mut v0 = _mm_loadu_ps(ap);
    let mut v1 = _mm_loadu_ps(ap.add(4));
    let mut v2 = _mm_loadu_ps(ap.add(8));
    let mut v3 = _mm_loadu_ps(ap.add(12));
    for kk in kks.0..kks.1 {
        let a_ik = *a.get_unchecked(a_off + kk * a_stride);
        if a_ik == 0.0 {
            continue;
        }
        let va = _mm_set1_ps(a_ik);
        let bp = b.as_ptr().add(kk * b_stride + jt);
        v0 = _mm_add_ps(v0, _mm_mul_ps(va, _mm_loadu_ps(bp)));
        v1 = _mm_add_ps(v1, _mm_mul_ps(va, _mm_loadu_ps(bp.add(4))));
        v2 = _mm_add_ps(v2, _mm_mul_ps(va, _mm_loadu_ps(bp.add(8))));
        v3 = _mm_add_ps(v3, _mm_mul_ps(va, _mm_loadu_ps(bp.add(12))));
    }
    _mm_storeu_ps(ap, v0);
    _mm_storeu_ps(ap.add(4), v1);
    _mm_storeu_ps(ap.add(8), v2);
    _mm_storeu_ps(ap.add(12), v3);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors the public dispatch signature
unsafe fn tile_kloop_avx2(
    acc: &mut [f32; TILE],
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    kks: (usize, usize),
    b: &[f32],
    b_stride: usize,
    jt: usize,
) {
    use std::arch::x86_64::*;
    let ap = acc.as_mut_ptr();
    let mut v0 = _mm256_loadu_ps(ap);
    let mut v1 = _mm256_loadu_ps(ap.add(8));
    for kk in kks.0..kks.1 {
        let a_ik = *a.get_unchecked(a_off + kk * a_stride);
        if a_ik == 0.0 {
            continue;
        }
        let va = _mm256_set1_ps(a_ik);
        let bp = b.as_ptr().add(kk * b_stride + jt);
        v0 = _mm256_add_ps(v0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
        v1 = _mm256_add_ps(v1, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(8))));
    }
    _mm256_storeu_ps(ap, v0);
    _mm256_storeu_ps(ap.add(8), v1);
}

/// Runs the full depth loop of one 16-wide output tile on the given tier:
/// for every `kk` in `kks.0..kks.1`,
/// `acc[j] += a[a_off + kk*a_stride] * b[kk*b_stride + jt + j]`, skipping
/// zero `a` entries like the scalar micro-kernel does.  The accumulators
/// stay in vector registers across the whole loop; per element the
/// summands still combine in ascending-`kk` order with one `mul` + one
/// `add` each, so all tiers agree bitwise.
///
/// `a_stride == 1` walks a row of `a` (the [`crate::ops::matmul`] kernel);
/// `a_stride == a_cols` walks a column (the `matmul_transpose_a` kernel).
///
/// # Panics
/// Panics (in debug builds via slice indexing) when the addressed spans
/// fall outside `a` or `b`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn tile_kloop(
    tier: KernelTier,
    acc: &mut [f32; TILE],
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    kks: (usize, usize),
    b: &[f32],
    b_stride: usize,
    jt: usize,
) {
    if kks.1 > kks.0 {
        // bounds of the strided accesses, checked once up front so the
        // vector paths can use unchecked loads inside the hot loop
        assert!(a_off + (kks.1 - 1) * a_stride < a.len(), "tile_kloop: a access out of bounds");
        assert!((kks.1 - 1) * b_stride + jt + TILE <= b.len(), "tile_kloop: b access out of bounds");
    }
    match tier {
        KernelTier::Scalar => tile_kloop_scalar(acc, a, a_off, a_stride, kks, b, b_stride, jt),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies the feature is present; bounds checked above.
        KernelTier::Sse2 => unsafe { tile_kloop_sse2(acc, a, a_off, a_stride, kks, b, b_stride, jt) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { tile_kloop_avx2(acc, a, a_off, a_stride, kks, b, b_stride, jt) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => tile_kloop_scalar(acc, a, a_off, a_stride, kks, b, b_stride, jt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_parsing_follows_the_env_convention() {
        assert_eq!(parse_simd_cap("off"), Some(KernelTier::Scalar));
        assert_eq!(parse_simd_cap("scalar"), Some(KernelTier::Scalar));
        assert_eq!(parse_simd_cap(" SSE2 "), Some(KernelTier::Sse2));
        assert_eq!(parse_simd_cap("avx2"), Some(KernelTier::Avx2));
        assert_eq!(parse_simd_cap("auto"), None);
        assert_eq!(parse_simd_cap(""), None);
        // unknown values warn and fall back to auto instead of panicking
        assert_eq!(parse_simd_cap("quantum"), None);
    }

    #[test]
    fn tiers_are_ordered_and_available_set_starts_scalar() {
        assert!(KernelTier::Scalar < KernelTier::Sse2 && KernelTier::Sse2 < KernelTier::Avx2);
        let tiers = available_tiers();
        assert_eq!(tiers.first(), Some(&KernelTier::Scalar));
        assert!(tiers.iter().all(|&t| t <= hardware_tier()));
        assert!(available_tiers().contains(&detected_tier()) || detected_tier() == KernelTier::Scalar);
    }

    #[test]
    fn axpy_tiers_match_bitwise_on_odd_lengths() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 100] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37 - 1.0) * 1.7).collect();
            let base: Vec<f32> = (0..len).map(|i| i as f32 * -0.21 + 0.5).collect();
            let mut expect = base.clone();
            axpy(KernelTier::Scalar, -0.61, &x, &mut expect);
            for tier in available_tiers() {
                let mut y = base.clone();
                axpy(tier, -0.61, &x, &mut y);
                let same = y.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "axpy len {len} tier {tier:?} diverges from scalar");
            }
        }
    }

    #[test]
    fn add_assign_tiers_match_bitwise_on_odd_lengths() {
        for len in [0usize, 1, 2, 4, 7, 9, 16, 33] {
            let src: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let base: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
            let mut expect = base.clone();
            add_assign(KernelTier::Scalar, &mut expect, &src);
            for tier in available_tiers() {
                let mut dst = base.clone();
                add_assign(tier, &mut dst, &src);
                let same = dst.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "add_assign len {len} tier {tier:?} diverges from scalar");
            }
        }
    }
}
