//! A thin, seedable RNG facade used across the workspace.
//!
//! Every experiment in the reproduction is seeded so that tables and figures
//! are regenerable bit-for-bit.  [`TensorRng`] is a self-contained
//! xoshiro256** generator (seeded through SplitMix64, so any 64-bit seed
//! gives a well-mixed state) with the sampling helpers the rest of the
//! workspace needs (normal variates via Box–Muller, categorical sampling,
//! Dirichlet-ish simplex noise and matrix initialisers).

use crate::Matrix;

/// Seedable random number generator with matrix-initialisation helpers.
#[derive(Clone, Debug)]
pub struct TensorRng {
    state: [u64; 4],
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro256** state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { state: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Derives an independent child generator; handy for giving each
    /// repetition / component its own stream while staying reproducible.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high-quality bits -> [0, 1) with full f32 mantissa coverage.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.  Panics if `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below: n must be positive");
        // Lemire-style rejection sampling to avoid modulo bias.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = (1.0 - self.uniform()).max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Samples an index from an (unnormalised, non-negative) weight vector.
    /// Falls back to a uniform draw when the weights sum to zero.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "categorical: empty weights");
        let total: f32 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return self.usize_below(weights.len());
        }
        let mut threshold = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            threshold -= w;
            if threshold <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Random point on the probability simplex obtained by normalising
    /// independent Gamma(alpha, 1) draws — i.e. a symmetric Dirichlet sample.
    /// Gamma variates are generated with the Marsaglia–Tsang method (with
    /// the standard boost for alpha < 1).
    pub fn dirichlet(&mut self, k: usize, alpha: f32) -> Vec<f32> {
        assert!(k > 0, "dirichlet: k must be positive");
        let mut draws: Vec<f32> = (0..k).map(|_| self.gamma(alpha)).collect();
        let sum: f32 = draws.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / k as f32; k];
        }
        draws.iter_mut().for_each(|v| *v /= sum);
        draws
    }

    /// Gamma(alpha, 1) sample (Marsaglia & Tsang).
    pub fn gamma(&mut self, alpha: f32) -> f32 {
        if alpha < 1.0 {
            // boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let u = self.uniform().max(f32::MIN_POSITIVE);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform().max(f32::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        if values.len() < 2 {
            return;
        }
        for i in (1..values.len()).rev() {
            let j = self.usize_below(i + 1);
            values.swap(i, j);
        }
    }

    /// Samples `count` distinct indices from `[0, n)` (count must be <= n).
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "sample_indices: count {count} exceeds population {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(count);
        all
    }

    /// Matrix with entries drawn uniformly from `[-bound, bound]`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, bound: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.uniform_range(-bound, bound))
    }

    /// Matrix with normal(0, std) entries.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal_with(0.0, std))
    }

    /// Glorot/Xavier-uniform initialisation for a `fan_in x fan_out` weight.
    pub fn xavier_uniform(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform_matrix(fan_in, fan_out, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = TensorRng::seed_from_u64(42);
        let mut b = TensorRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from_u64(1);
        let mut b = TensorRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = TensorRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = TensorRng::seed_from_u64(3);
        let samples: Vec<f32> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = TensorRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.categorical(&[0.1, 0.6, 0.3])] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[0]);
        let p1 = counts[1] as f32 / 30_000.0;
        assert!((p1 - 0.6).abs() < 0.03);
    }

    #[test]
    fn categorical_zero_weights_falls_back_to_uniform() {
        let mut rng = TensorRng::seed_from_u64(5);
        let idx = rng.categorical(&[0.0, 0.0, 0.0]);
        assert!(idx < 3);
    }

    #[test]
    fn dirichlet_is_on_the_simplex() {
        let mut rng = TensorRng::seed_from_u64(9);
        for alpha in [0.3f32, 1.0, 5.0] {
            let p = rng.dirichlet(4, alpha);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gamma_is_positive_with_right_mean() {
        let mut rng = TensorRng::seed_from_u64(13);
        let samples: Vec<f32> = (0..20_000).map(|_| rng.gamma(3.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!((mean - 3.0).abs() < 0.1, "gamma(3) mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::seed_from_u64(21);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = TensorRng::seed_from_u64(17);
        let idx = rng.sample_indices(20, 10);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(idx.iter().all(|&i| i < 20));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = TensorRng::seed_from_u64(23);
        let w = rng.xavier_uniform(10, 20);
        let bound = (6.0 / 30.0f32).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn fork_produces_independent_reproducible_streams() {
        let mut parent_a = TensorRng::seed_from_u64(100);
        let mut parent_b = TensorRng::seed_from_u64(100);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        assert_eq!(child_a.uniform().to_bits(), child_b.uniform().to_bits());
    }
}
