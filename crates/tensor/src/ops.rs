//! Matrix operations: products, transposition, element-wise arithmetic and
//! axis reductions.  All functions are shape-checked and panic with a
//! descriptive message on mismatch (shape errors are programming errors in
//! this workspace, not recoverable conditions).
//!
//! The matrix products are plan-driven: [`MatmulPlan::for_shape`] picks loop
//! tiling (and, for very large products, a row-shard count for
//! [`crate::par`]) from the operand shapes.  Products below
//! [`MatmulPlan::SMALL_FLOPS`] run a single-tile i-k-j kernel whose
//! per-element arithmetic is chosen so results are bitwise independent of
//! the plan — the seeded end-to-end experiments stay reproducible no matter
//! which path a shape takes.
//!
//! On top of the tiling the plan also picks a **kernel tier**
//! ([`crate::simd::KernelTier`]): the register-tile depth loop and the tail
//! `axpy` dispatch to AVX2 / SSE2 vector kernels when the CPU supports them
//! (scalar fallback otherwise, `LNCL_SIMD=off` forces it).  Every tier is
//! lane-parallel with the same per-element reduction order, so the tier is
//! — like the tiling — bitwise invisible in the results.

use crate::simd::{self, KernelTier};
use crate::{par, Matrix};

/// Loop-blocking and sharding parameters for one matrix product, chosen per
/// shape by [`MatmulPlan::for_shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulPlan {
    /// Rows of the output processed per L1-resident block.
    pub mc: usize,
    /// Depth (inner dimension) per block; bounds the live panel of `b`.
    pub kc: usize,
    /// Output columns per block.
    pub nc: usize,
    /// Number of row shards to spread across threads (1 = serial).
    pub shards: usize,
    /// Kernel tier the micro-kernel dispatches to (scalar / SSE2 / AVX2).
    pub tier: KernelTier,
}

impl MatmulPlan {
    /// Below this many multiply-adds the kernel runs as one tile: at that
    /// size everything fits in L1/L2 and tiling only costs loop overhead.
    pub const SMALL_FLOPS: usize = 1 << 18;
    /// Above this many multiply-adds the output rows are sharded across
    /// [`par::max_threads`] scoped threads.
    pub const PAR_FLOPS: usize = 1 << 21;
    /// Minimum output rows given to one thread; caps the shard count for
    /// wide-but-short products.
    pub const MIN_ROWS_PER_SHARD: usize = 16;

    /// Chooses tile sizes, a shard count and a kernel tier for an
    /// `m x k * k x n` product.
    pub fn for_shape(m: usize, k: usize, n: usize) -> Self {
        let tier = Self::tier_for_width(n);
        let flops = m.saturating_mul(k).saturating_mul(n);
        if flops <= Self::SMALL_FLOPS {
            return Self { mc: m.max(1), kc: k.max(1), nc: n.max(1), shards: 1, tier };
        }
        let shards =
            if flops >= Self::PAR_FLOPS { par::max_threads().min(m / Self::MIN_ROWS_PER_SHARD).max(1) } else { 1 };
        Self { mc: m.clamp(1, 64), kc: k.clamp(1, 128), nc: n.clamp(1, 256), shards, tier }
    }

    /// Best kernel tier for an output width: narrow outputs stay scalar
    /// (the vector setup costs more than it saves below one 128-bit lane
    /// group), everything else runs the widest tier the machine offers.
    fn tier_for_width(n: usize) -> KernelTier {
        let detected = simd::detected_tier();
        if n < 4 {
            KernelTier::Scalar
        } else if n < 8 {
            detected.min(KernelTier::Sse2)
        } else {
            detected
        }
    }

    /// The same plan with the kernel tier overridden — the hook the
    /// cross-tier equivalence suite uses to force every path over one
    /// shape.
    pub fn with_tier(self, tier: KernelTier) -> Self {
        Self { tier, ..self }
    }

    /// True when this plan runs the single-tile kernel.
    pub fn is_single_tile(&self, m: usize, k: usize, n: usize) -> bool {
        self.shards == 1 && self.mc >= m && self.kc >= k && self.nc >= n
    }
}

/// `y += alpha * x`, the fused scaled-accumulate at the bottom of every
/// matmul kernel and optimiser update.  Every lane is independent (one
/// `mul` + one `add` per element), so the vector tiers of
/// [`crate::simd::axpy`] this dispatches to match the scalar loop bitwise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    simd::axpy(simd::detected_tier(), alpha, x, y);
}

/// Width of the register tile in the i-k-j micro-kernel.  A fixed-size
/// `[f32; J_TILE]` accumulator (reached through `try_into`, so the length
/// is a compile-time fact) keeps the running output span in vector
/// registers across the whole depth loop instead of re-loading it from
/// memory at every step; the depth loop itself runs on the plan's kernel
/// tier through [`crate::simd::tile_kloop`].
const J_TILE: usize = simd::TILE;

/// Blocked i-k-j accumulation `out_block += a[rows] * b` for the output rows
/// `[row0, row0 + rows)`, where `block` is the flat slice backing exactly
/// those rows.  Shared by the serial and sharded paths.
///
/// Per output element the summands combine in ascending-`kk` order starting
/// from the existing output value — the register tiling changes where the
/// running sums live, not their rounding — so results are bitwise identical
/// to the plain nested loop.
fn matmul_acc_rows(a: &Matrix, b: &Matrix, block: &mut [f32], row0: usize, rows: usize, plan: &MatmulPlan) {
    let k = a.cols();
    let n = b.cols();
    for pc in (0..k).step_by(plan.kc) {
        let k_end = (pc + plan.kc).min(k);
        for jc in (0..n).step_by(plan.nc) {
            let j_end = (jc + plan.nc).min(n);
            for ic in (0..rows).step_by(plan.mc) {
                let i_end = (ic + plan.mc).min(rows);
                for i in ic..i_end {
                    let a_row = a.row(row0 + i);
                    let out_row = &mut block[i * n..(i + 1) * n];
                    let mut jt = jc;
                    while jt < j_end {
                        let width = J_TILE.min(j_end - jt);
                        if width == J_TILE {
                            let out_span: &mut [f32; J_TILE] =
                                (&mut out_row[jt..jt + J_TILE]).try_into().expect("span is J_TILE wide");
                            simd::tile_kloop(
                                plan.tier,
                                out_span,
                                a.as_slice(),
                                (row0 + i) * k,
                                1,
                                (pc, k_end),
                                b.as_slice(),
                                n,
                                jt,
                            );
                        } else {
                            // tail narrower than the register tile
                            for (kk, &a_ik) in a_row.iter().enumerate().take(k_end).skip(pc) {
                                if a_ik == 0.0 {
                                    continue;
                                }
                                simd::axpy(plan.tier, a_ik, &b.row(kk)[jt..jt + width], &mut out_row[jt..jt + width]);
                            }
                        }
                        jt += width;
                    }
                }
            }
        }
    }
}

/// In-place accumulation `out += a * b` (the building block behind
/// [`matmul`] and the fused affine ops).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not match ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "matmul_acc: output shape {:?} does not match {m}x{n}", out.shape());
    let plan = MatmulPlan::for_shape(m, k, n);
    matmul_acc_planned(a, b, out, &plan);
}

/// [`matmul_acc`] under an explicit, caller-supplied plan.  Normal code
/// lets [`MatmulPlan::for_shape`] choose; the cross-tier equivalence suite
/// uses this entry point to drive one shape through every kernel tier and
/// assert the results are bitwise identical.
pub fn matmul_acc_planned(a: &Matrix, b: &Matrix, out: &mut Matrix, plan: &MatmulPlan) {
    assert_eq!(a.cols(), b.rows(), "matmul_acc_planned: inner dimensions do not match");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul_acc_planned: output shape mismatch");
    par::shard_rows(out, plan.shards, |row0, rows, block| matmul_acc_rows(a, b, block, row0, rows, plan));
}

/// Matrix product `a * b`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_acc(a, b, &mut out);
    out
}

/// Sequential dot product; kept scalar (single accumulator, ascending
/// index) so the small path of [`matmul_transpose_b`] reproduces the naive
/// kernel bitwise.
fn dot_seq(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// `a * b^T`.  Above a small size the transpose is materialised once and
/// the product runs through the vectorised i-k-j kernel — per output
/// element the summands still combine in ascending inner-index order, so
/// the result matches the direct row-row dot products bitwise (modulo the
/// sign of exact zeros).  Tiny products skip the transpose and use the
/// dots directly.
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose_b: inner dimensions do not match ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    if m.saturating_mul(k).saturating_mul(n) >= 2048 {
        return matmul(a, &transpose(b));
    }
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, out_val) in out_row.iter_mut().enumerate() {
            *out_val = dot_seq(a_row, b.row(j));
        }
    }
    out
}

/// `a^T * b` without materialising the transpose.  Output rows (columns of
/// `a`) run through the same register-tiled accumulator as [`matmul`] —
/// per element the summands combine in ascending inner-index order, so the
/// result is bitwise identical to the plain k-outer loop.  Large products
/// block over `k` and shard output rows across threads.
pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transpose_a: inner dimensions do not match (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let plan = MatmulPlan::for_shape(m, k, n);
    let mut out = Matrix::zeros(m, n);
    par::shard_rows(&mut out, plan.shards, |row0, rows, block| {
        for pc in (0..k).step_by(plan.kc) {
            let k_end = (pc + plan.kc).min(k);
            for i in 0..rows {
                let out_row = &mut block[i * n..(i + 1) * n];
                let mut jt = 0;
                while jt < n {
                    let width = J_TILE.min(n - jt);
                    if width == J_TILE {
                        let out_span: &mut [f32; J_TILE] =
                            (&mut out_row[jt..jt + J_TILE]).try_into().expect("span is J_TILE wide");
                        // the column walk of `a` is just a strided access:
                        // element `kk` lives at `(row0 + i) + kk * m`
                        simd::tile_kloop(
                            plan.tier,
                            out_span,
                            a.as_slice(),
                            row0 + i,
                            m,
                            (pc, k_end),
                            b.as_slice(),
                            n,
                            jt,
                        );
                    } else {
                        for kk in pc..k_end {
                            let a_ki = a[(kk, row0 + i)];
                            if a_ki == 0.0 {
                                continue;
                            }
                            simd::axpy(plan.tier, a_ki, &b.row(kk)[jt..jt + width], &mut out_row[jt..jt + width]);
                        }
                    }
                    jt += width;
                }
            }
        }
    });
    out
}

/// Sliding-window flattening used to express a text convolution as a single
/// matrix product: with input `T x d` and window `w`, row `p` of the output
/// is the concatenation of input rows `p .. p + w`.
///
/// # Panics
/// Panics if the window is zero or the input has fewer rows than the window.
pub fn im2col(input: &Matrix, window: usize) -> Matrix {
    assert!(window >= 1, "im2col: window must be >= 1");
    assert!(
        input.rows() >= window,
        "im2col: input has {} rows but window is {window}; pad the sequence first",
        input.rows()
    );
    let positions = input.rows() - window + 1;
    let d = input.cols();
    let mut out = Matrix::zeros(positions, window * d);
    for p in 0..positions {
        for w in 0..window {
            out.row_mut(p)[w * d..(w + 1) * d].copy_from_slice(input.row(p + w));
        }
    }
    out
}

/// Transposes the matrix.
pub fn transpose(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            out[(c, r)] = a[(r, c)];
        }
    }
    out
}

fn assert_same_shape(a: &Matrix, b: &Matrix, op: &str) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
}

/// Element-wise sum `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "add");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += x;
    }
    out
}

/// Element-wise difference `a - b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "sub");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= x;
    }
    out
}

/// Element-wise (Hadamard) product `a ⊙ b`.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "mul");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    out
}

/// Element-wise division `a / b`.
pub fn div(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "div");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o /= x;
    }
    out
}

/// Scalar multiple `s * a`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|v| v * s)
}

/// In-place accumulation `acc += x` (same shape required).
pub fn add_assign(acc: &mut Matrix, x: &Matrix) {
    assert_same_shape(acc, x, "add_assign");
    for (o, v) in acc.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o += v;
    }
}

/// In-place scaled accumulation `acc += s * x`.
pub fn add_scaled_assign(acc: &mut Matrix, x: &Matrix, s: f32) {
    assert_same_shape(acc, x, "add_scaled_assign");
    axpy(s, x.as_slice(), acc.as_mut_slice());
}

/// Adds a `1 x cols` row vector to every row of `a` in place.
pub fn add_row_broadcast_assign(a: &mut Matrix, row: &Matrix) {
    assert_eq!(row.rows(), 1, "add_row_broadcast_assign: bias must be a row vector");
    assert_eq!(a.cols(), row.cols(), "add_row_broadcast_assign: width mismatch ({} vs {})", a.cols(), row.cols());
    for r in 0..a.rows() {
        for (o, b) in a.row_mut(r).iter_mut().zip(row.row(0)) {
            *o += b;
        }
    }
}

/// Adds a `1 x cols` row vector to every row of `a` (broadcast add, used for
/// bias terms).
pub fn add_row_broadcast(a: &Matrix, row: &Matrix) -> Matrix {
    let mut out = a.clone();
    add_row_broadcast_assign(&mut out, row);
    out
}

/// Fused bias + ReLU: `relu(a + bias)` in a single pass, the activation the
/// convolution layers previously composed from a broadcast add and a
/// separate `max(0)` map (two full intermediates).
pub fn add_bias_relu(a: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "add_bias_relu: bias must be a row vector");
    assert_eq!(a.cols(), bias.cols(), "add_bias_relu: width mismatch ({} vs {})", a.cols(), bias.cols());
    let mut out = Matrix::zeros(a.rows(), a.cols());
    for r in 0..a.rows() {
        for ((o, v), b) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(bias.row(0)) {
            *o = (v + b).max(0.0);
        }
    }
    out
}

/// Fused affine map `x * w + bias` (bias broadcast over rows) without the
/// intermediate `x * w` matrix.
pub fn affine(x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.cols());
    matmul_acc(x, w, &mut out);
    add_row_broadcast_assign(&mut out, bias);
    out
}

/// Fused `relu(x * w + bias)`: the matmul accumulates in place and the bias
/// add + ReLU run as one final pass over the output.
pub fn affine_relu(x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "affine_relu: bias must be a row vector");
    assert_eq!(w.cols(), bias.cols(), "affine_relu: width mismatch ({} vs {})", w.cols(), bias.cols());
    let mut out = Matrix::zeros(x.rows(), w.cols());
    matmul_acc(x, w, &mut out);
    for r in 0..out.rows() {
        for (o, b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o = (*o + b).max(0.0);
        }
    }
    out
}

/// Fused dual affine map `x * w + h * u + bias`, the pre-activation of every
/// GRU gate.  One intermediate (`h * u`) instead of the four matrices the
/// compositional form allocates.
pub fn dual_affine(x: &Matrix, w: &Matrix, h: &Matrix, u: &Matrix, bias: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.cols());
    matmul_acc(x, w, &mut out);
    let mut hu = Matrix::zeros(h.rows(), u.cols());
    matmul_acc(h, u, &mut hu);
    add_assign(&mut out, &hu);
    add_row_broadcast_assign(&mut out, bias);
    out
}

/// Fused row-softmax + cross-entropy against fixed soft targets, averaged
/// over rows.  Returns `(mean loss, softmax probabilities)`; the
/// probabilities are what the backward rule needs (`probs - targets`), so
/// nothing is recomputed.  The log-probabilities inside the loss are clamped
/// at `ln(1e-12)`, matching the probability floor the compositional
/// `cross_entropy` applied.
pub fn softmax_xent_rows(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "softmax_xent_rows: logits {:?} vs targets {:?}",
        logits.shape(),
        targets.shape()
    );
    let ln_floor = (1e-12f32).ln();
    let mut probs = logits.clone();
    let mut loss = 0.0f32;
    for r in 0..probs.rows() {
        let row = probs.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
            let ln_sum = sum.ln();
            for (&t, &x) in targets.row(r).iter().zip(logits.row(r)) {
                loss -= t * (x - max - ln_sum).max(ln_floor);
            }
        } else if !row.is_empty() {
            let uniform = 1.0 / row.len() as f32;
            row.iter_mut().for_each(|v| *v = uniform);
            let lnp = uniform.max(1e-12).ln();
            loss -= targets.row(r).iter().sum::<f32>() * lnp;
        }
    }
    (loss / probs.rows().max(1) as f32, probs)
}

/// Sums each column, producing a `1 x cols` row vector.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
    out
}

/// Sums each row, producing a `rows x 1` column vector.
pub fn sum_cols(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        out[(r, 0)] = a.row(r).iter().sum();
    }
    out
}

/// Per-column mean, producing a `1 x cols` row vector.
pub fn mean_rows(a: &Matrix) -> Matrix {
    let n = a.rows().max(1) as f32;
    scale(&sum_rows(a), 1.0 / n)
}

/// Column-wise maximum together with the row index achieving it for each
/// column.  Returns `(max_values: 1 x cols, argmax_rows)`.
///
/// This is the "max-over-time" pooling used by the Kim-2014 text CNN.
pub fn max_over_rows(a: &Matrix) -> (Matrix, Vec<usize>) {
    assert!(a.rows() > 0, "max_over_rows: empty matrix");
    let mut vals = Matrix::full(1, a.cols(), f32::NEG_INFINITY);
    let mut idx = vec![0usize; a.cols()];
    for r in 0..a.rows() {
        for (c, &v) in a.row(r).iter().enumerate() {
            if v > vals[(0, c)] {
                vals[(0, c)] = v;
                idx[c] = r;
            }
        }
    }
    (vals, idx)
}

/// Dot product between two equally-shaped matrices viewed as flat vectors.
pub fn dot(a: &Matrix, b: &Matrix) -> f32 {
    assert_same_shape(a, b, "dot");
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x * y).sum()
}

/// Outer product of two vectors given as a column (n x 1) and a row (1 x m).
pub fn outer(col: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(col.cols(), 1, "outer: first argument must be a column vector");
    assert_eq!(row.rows(), 1, "outer: second argument must be a row vector");
    let mut out = Matrix::zeros(col.rows(), row.cols());
    for r in 0..col.rows() {
        let cr = col[(r, 0)];
        for c in 0..row.cols() {
            out[(r, c)] = cr * row[(0, c)];
        }
    }
    out
}

/// Clamps every entry into `[lo, hi]`.
pub fn clamp(a: &Matrix, lo: f32, hi: f32) -> Matrix {
    a.map(|v| v.clamp(lo, hi))
}

/// Extracts the rows listed in `indices` (gather), preserving order and
/// allowing repeats.  Used for embedding lookups and window gathers.
pub fn gather_rows(a: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(indices.len(), a.cols());
    for (r, &idx) in indices.iter().enumerate() {
        assert!(idx < a.rows(), "gather_rows: index {idx} out of bounds ({} rows)", a.rows());
        out.row_mut(r).copy_from_slice(a.row(idx));
    }
    out
}

/// Scatter-add of `src` rows into `dst` at the listed row indices (the
/// adjoint of [`gather_rows`]).
pub fn scatter_add_rows(dst: &mut Matrix, indices: &[usize], src: &Matrix) {
    assert_eq!(indices.len(), src.rows(), "scatter_add_rows: index/src length mismatch");
    assert_eq!(dst.cols(), src.cols(), "scatter_add_rows: column mismatch");
    for (r, &idx) in indices.iter().enumerate() {
        assert!(idx < dst.rows(), "scatter_add_rows: index {idx} out of bounds");
        for (d, s) in dst.row_mut(idx).iter_mut().zip(src.row(r)) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = matmul(&a, &b);
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(matmul(&a, &Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 0.0, 3.0]]);
        // a * b^T
        assert!(matmul_transpose_b(&a, &b).approx_eq(&matmul(&a, &transpose(&b)), 1e-6));
        // a^T * b
        assert!(matmul_transpose_a(&a, &b).approx_eq(&matmul(&transpose(&a), &b), 1e-6));
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(add(&a, &b), Matrix::full(2, 2, 5.0));
        assert_eq!(sub(&a, &b), m22(-3.0, -1.0, 1.0, 3.0));
        assert_eq!(mul(&a, &b), m22(4.0, 6.0, 6.0, 4.0));
        assert_eq!(div(&a, &b), m22(0.25, 2.0 / 3.0, 1.5, 4.0));
        assert_eq!(scale(&a, 2.0), m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn broadcast_bias() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(add_row_broadcast(&a, &bias), m22(11.0, 22.0, 13.0, 24.0));
    }

    #[test]
    fn reductions_by_axis() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(sum_rows(&a), Matrix::row_vector(&[9.0, 12.0]));
        assert_eq!(sum_cols(&a), Matrix::col_vector(&[3.0, 7.0, 11.0]));
        assert_eq!(mean_rows(&a), Matrix::row_vector(&[3.0, 4.0]));
    }

    #[test]
    fn max_over_rows_tracks_argmax() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[7.0, 2.0], &[3.0, 4.0]]);
        let (vals, idx) = max_over_rows(&a);
        assert_eq!(vals, Matrix::row_vector(&[7.0, 9.0]));
        assert_eq!(idx, vec![1, 0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = Matrix::row_vector(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b), 32.0);
        let o = outer(&Matrix::col_vector(&[1.0, 2.0]), &Matrix::row_vector(&[3.0, 4.0]));
        assert_eq!(o, m22(3.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let table = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = gather_rows(&table, &[2, 0, 2]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);

        let mut grad = Matrix::zeros(3, 2);
        scatter_add_rows(&mut grad, &[2, 0, 2], &Matrix::full(3, 2, 1.0));
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn clamp_limits_range() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 3.0]);
        assert_eq!(clamp(&a, 0.0, 1.0), Matrix::row_vector(&[0.0, 0.5, 1.0]));
    }

    #[test]
    fn plan_is_single_tile_for_small_shapes() {
        let plan = MatmulPlan::for_shape(16, 32, 8);
        assert!(plan.is_single_tile(16, 32, 8));
        assert_eq!(plan.shards, 1);
    }

    #[test]
    fn plan_blocks_large_shapes() {
        let plan = MatmulPlan::for_shape(512, 512, 512);
        assert!(!plan.is_single_tile(512, 512, 512));
        assert!(plan.kc <= 128 && plan.nc <= 256 && plan.mc <= 64);
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        let x: Vec<f32> = (0..11).map(|i| i as f32 * 0.5 - 2.0).collect();
        let mut y: Vec<f32> = (0..11).map(|i| i as f32 * -0.25).collect();
        let mut expect = y.clone();
        for (e, xv) in expect.iter_mut().zip(&x) {
            *e += 1.5 * xv;
        }
        axpy(1.5, &x, &mut y);
        assert_eq!(y, expect);
    }

    #[test]
    fn matmul_acc_accumulates_into_existing_output() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = Matrix::identity(2);
        let mut out = Matrix::full(2, 2, 1.0);
        matmul_acc(&a, &b, &mut out);
        assert_eq!(out, m22(2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    fn fused_affine_matches_composition() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5]]);
        let w = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.0, 0.0, -0.5]]);
        let bias = Matrix::row_vector(&[0.1, -0.2, 0.3]);
        let expect = add_row_broadcast(&matmul(&x, &w), &bias);
        assert_eq!(affine(&x, &w, &bias), expect);
        let expect_relu = expect.map(|v| v.max(0.0));
        assert_eq!(affine_relu(&x, &w, &bias), expect_relu);
        assert_eq!(add_bias_relu(&matmul(&x, &w), &bias), expect_relu);
    }

    #[test]
    fn fused_dual_affine_matches_composition() {
        let x = Matrix::from_rows(&[&[1.0, -2.0]]);
        let w = Matrix::from_rows(&[&[0.5, 1.0], &[-1.0, 0.25]]);
        let h = Matrix::from_rows(&[&[2.0, 0.5, -1.0]]);
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, -0.5], &[0.0, 2.0]]);
        let bias = Matrix::row_vector(&[0.1, 0.2]);
        let expect = add_row_broadcast(&add(&matmul(&x, &w), &matmul(&h, &u)), &bias);
        assert_eq!(dual_affine(&x, &w, &h, &u, &bias), expect);
    }

    #[test]
    fn fused_softmax_xent_matches_composition() {
        let logits = Matrix::from_rows(&[&[0.2, -1.0, 0.7], &[3.0, 3.0, 3.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.2, 0.3, 0.5]]);
        let (loss, probs) = softmax_xent_rows(&logits, &targets);
        let expect_probs = crate::stats::softmax_rows(&logits);
        assert!(probs.approx_eq(&expect_probs, 1e-7));
        let mut expect_loss = 0.0;
        for r in 0..logits.rows() {
            expect_loss += crate::stats::cross_entropy(targets.row(r), expect_probs.row(r));
        }
        expect_loss /= logits.rows() as f32;
        assert!((loss - expect_loss).abs() < 1e-5, "{loss} vs {expect_loss}");
    }

    #[test]
    fn add_row_broadcast_assign_matches_pure_version() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let mut b = a.clone();
        add_row_broadcast_assign(&mut b, &bias);
        assert_eq!(b, add_row_broadcast(&a, &bias));
    }
}
