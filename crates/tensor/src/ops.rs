//! Matrix operations: products, transposition, element-wise arithmetic and
//! axis reductions.  All functions are shape-checked and panic with a
//! descriptive message on mismatch (shape errors are programming errors in
//! this workspace, not recoverable conditions).

use crate::Matrix;

/// Matrix product `a * b`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not match ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    // i-k-j loop order keeps the innermost traversal contiguous in both
    // `b` and `out`, which is the cache-friendly order for row-major data.
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            for j in 0..n {
                out_row[j] += a_ik * b_row[j];
            }
        }
    }
    out
}

/// `a * b^T` without materialising the transpose.
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose_b: inner dimensions do not match ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, out_val) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *out_val = acc;
        }
    }
    out
}

/// `a^T * b` without materialising the transpose.
pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_transpose_a: inner dimensions do not match (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, n) = (a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for kk in 0..a.rows() {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for j in 0..n {
                out_row[j] += a_ki * b_row[j];
            }
        }
    }
    out
}

/// Transposes the matrix.
pub fn transpose(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            out[(c, r)] = a[(r, c)];
        }
    }
    out
}

fn assert_same_shape(a: &Matrix, b: &Matrix, op: &str) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
}

/// Element-wise sum `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "add");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += x;
    }
    out
}

/// Element-wise difference `a - b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "sub");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= x;
    }
    out
}

/// Element-wise (Hadamard) product `a ⊙ b`.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "mul");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    out
}

/// Element-wise division `a / b`.
pub fn div(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "div");
    let mut out = a.clone();
    for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o /= x;
    }
    out
}

/// Scalar multiple `s * a`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|v| v * s)
}

/// In-place accumulation `acc += x` (same shape required).
pub fn add_assign(acc: &mut Matrix, x: &Matrix) {
    assert_same_shape(acc, x, "add_assign");
    for (o, v) in acc.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o += v;
    }
}

/// In-place scaled accumulation `acc += s * x`.
pub fn add_scaled_assign(acc: &mut Matrix, x: &Matrix, s: f32) {
    assert_same_shape(acc, x, "add_scaled_assign");
    for (o, v) in acc.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o += s * v;
    }
}

/// Adds a `1 x cols` row vector to every row of `a` (broadcast add, used for
/// bias terms).
pub fn add_row_broadcast(a: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(row.rows(), 1, "add_row_broadcast: bias must be a row vector");
    assert_eq!(a.cols(), row.cols(), "add_row_broadcast: width mismatch ({} vs {})", a.cols(), row.cols());
    let mut out = a.clone();
    for r in 0..out.rows() {
        for (o, b) in out.row_mut(r).iter_mut().zip(row.row(0)) {
            *o += b;
        }
    }
    out
}

/// Sums each column, producing a `1 x cols` row vector.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
    out
}

/// Sums each row, producing a `rows x 1` column vector.
pub fn sum_cols(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        out[(r, 0)] = a.row(r).iter().sum();
    }
    out
}

/// Per-column mean, producing a `1 x cols` row vector.
pub fn mean_rows(a: &Matrix) -> Matrix {
    let n = a.rows().max(1) as f32;
    scale(&sum_rows(a), 1.0 / n)
}

/// Column-wise maximum together with the row index achieving it for each
/// column.  Returns `(max_values: 1 x cols, argmax_rows)`.
///
/// This is the "max-over-time" pooling used by the Kim-2014 text CNN.
pub fn max_over_rows(a: &Matrix) -> (Matrix, Vec<usize>) {
    assert!(a.rows() > 0, "max_over_rows: empty matrix");
    let mut vals = Matrix::full(1, a.cols(), f32::NEG_INFINITY);
    let mut idx = vec![0usize; a.cols()];
    for r in 0..a.rows() {
        for (c, &v) in a.row(r).iter().enumerate() {
            if v > vals[(0, c)] {
                vals[(0, c)] = v;
                idx[c] = r;
            }
        }
    }
    (vals, idx)
}

/// Dot product between two equally-shaped matrices viewed as flat vectors.
pub fn dot(a: &Matrix, b: &Matrix) -> f32 {
    assert_same_shape(a, b, "dot");
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x * y).sum()
}

/// Outer product of two vectors given as a column (n x 1) and a row (1 x m).
pub fn outer(col: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(col.cols(), 1, "outer: first argument must be a column vector");
    assert_eq!(row.rows(), 1, "outer: second argument must be a row vector");
    let mut out = Matrix::zeros(col.rows(), row.cols());
    for r in 0..col.rows() {
        let cr = col[(r, 0)];
        for c in 0..row.cols() {
            out[(r, c)] = cr * row[(0, c)];
        }
    }
    out
}

/// Clamps every entry into `[lo, hi]`.
pub fn clamp(a: &Matrix, lo: f32, hi: f32) -> Matrix {
    a.map(|v| v.clamp(lo, hi))
}

/// Extracts the rows listed in `indices` (gather), preserving order and
/// allowing repeats.  Used for embedding lookups and window gathers.
pub fn gather_rows(a: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(indices.len(), a.cols());
    for (r, &idx) in indices.iter().enumerate() {
        assert!(idx < a.rows(), "gather_rows: index {idx} out of bounds ({} rows)", a.rows());
        out.row_mut(r).copy_from_slice(a.row(idx));
    }
    out
}

/// Scatter-add of `src` rows into `dst` at the listed row indices (the
/// adjoint of [`gather_rows`]).
pub fn scatter_add_rows(dst: &mut Matrix, indices: &[usize], src: &Matrix) {
    assert_eq!(indices.len(), src.rows(), "scatter_add_rows: index/src length mismatch");
    assert_eq!(dst.cols(), src.cols(), "scatter_add_rows: column mismatch");
    for (r, &idx) in indices.iter().enumerate() {
        assert!(idx < dst.rows(), "scatter_add_rows: index {idx} out of bounds");
        for (d, s) in dst.row_mut(idx).iter_mut().zip(src.row(r)) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = matmul(&a, &b);
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(matmul(&a, &Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 0.0, 3.0]]);
        // a * b^T
        assert!(matmul_transpose_b(&a, &b).approx_eq(&matmul(&a, &transpose(&b)), 1e-6));
        // a^T * b
        assert!(matmul_transpose_a(&a, &b).approx_eq(&matmul(&transpose(&a), &b), 1e-6));
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(add(&a, &b), Matrix::full(2, 2, 5.0));
        assert_eq!(sub(&a, &b), m22(-3.0, -1.0, 1.0, 3.0));
        assert_eq!(mul(&a, &b), m22(4.0, 6.0, 6.0, 4.0));
        assert_eq!(div(&a, &b), m22(0.25, 2.0 / 3.0, 1.5, 4.0));
        assert_eq!(scale(&a, 2.0), m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn broadcast_bias() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(add_row_broadcast(&a, &bias), m22(11.0, 22.0, 13.0, 24.0));
    }

    #[test]
    fn reductions_by_axis() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(sum_rows(&a), Matrix::row_vector(&[9.0, 12.0]));
        assert_eq!(sum_cols(&a), Matrix::col_vector(&[3.0, 7.0, 11.0]));
        assert_eq!(mean_rows(&a), Matrix::row_vector(&[3.0, 4.0]));
    }

    #[test]
    fn max_over_rows_tracks_argmax() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[7.0, 2.0], &[3.0, 4.0]]);
        let (vals, idx) = max_over_rows(&a);
        assert_eq!(vals, Matrix::row_vector(&[7.0, 9.0]));
        assert_eq!(idx, vec![1, 0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = Matrix::row_vector(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b), 32.0);
        let o = outer(&Matrix::col_vector(&[1.0, 2.0]), &Matrix::row_vector(&[3.0, 4.0]));
        assert_eq!(o, m22(3.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let table = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = gather_rows(&table, &[2, 0, 2]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);

        let mut grad = Matrix::zeros(3, 2);
        scatter_add_rows(&mut grad, &[2, 0, 2], &Matrix::full(3, 2, 1.0));
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn clamp_limits_range() {
        let a = Matrix::row_vector(&[-2.0, 0.5, 3.0]);
        assert_eq!(clamp(&a, 0.0, 1.0), Matrix::row_vector(&[0.0, 0.5, 1.0]));
    }
}
