//! # lncl-tensor
//!
//! A small, dependency-light dense linear-algebra substrate used by the
//! Logic-LNCL reproduction.  It provides a row-major `f32` [`Matrix`] type,
//! the matrix/vector operations needed by the neural-network stack
//! ([`ops`]), numerically stable statistical helpers ([`stats`]) and a tiny
//! seeded random-number facade ([`rng`]) built on top of `rand`.
//!
//! The crate is intentionally BLAS-free: every experiment in the paper is
//! re-run at simulator scale (thousands of short sentences, embedding widths
//! of a few dozen), where a straightforward cache-friendly matmul is more
//! than fast enough and keeps the build fully self-contained.
//!
//! ## Quick example
//!
//! ```
//! use lncl_tensor::{Matrix, ops, stats};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! let probs = stats::softmax_rows(&a);
//! assert!((probs.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::TensorRng;
