//! # lncl-tensor
//!
//! A small, dependency-light dense linear-algebra substrate used by the
//! Logic-LNCL reproduction.  It provides a row-major `f32` [`Matrix`] type,
//! the matrix/vector operations needed by the neural-network stack
//! ([`ops`]), numerically stable statistical helpers ([`stats`]) and a tiny
//! seeded random-number facade ([`rng`]) built on top of `rand`.
//!
//! This is the bottom layer of the workspace — every other crate builds on
//! it; the full crate map lives in `ARCHITECTURE.md` at the repository
//! root.
//!
//! The crate is intentionally BLAS-free but not naive: the matrix products
//! are plan-driven ([`ops::MatmulPlan`]) cache-blocked i-k-j kernels that
//! shard output rows across scoped threads ([`par`]) once a product is
//! large enough to pay for the spawn, dispatch their micro-kernels to
//! tiered AVX2 / SSE2 / scalar paths ([`simd`], runtime-detected, bitwise
//! identical across tiers), and the hot compositions the trainers
//! need (`affine`, `affine_relu`, `dual_affine`, `softmax_xent_rows`,
//! `axpy`) exist as fused single-allocation ops.  Everything stays
//! dependency-free and, on the shapes the paper's experiments use,
//! bit-for-bit reproducible across plans.
//!
//! ## Quick example
//!
//! ```
//! use lncl_tensor::{Matrix, ops, stats};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! let probs = stats::softmax_rows(&a);
//! assert!((probs.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

pub mod env;
pub mod matrix;
pub mod ops;
pub mod par;
pub mod rng;
pub mod simd;
pub mod stats;

pub use matrix::Matrix;
pub use rng::TensorRng;
