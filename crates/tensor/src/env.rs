//! Shared `LNCL_*` environment-variable parsing.
//!
//! Every tunable in the workspace follows the same convention (established
//! when a silently ignored `LNCL_REPS=ten` cost real debugging time):
//! an **unset** variable falls back to its default silently, while a set
//! but **invalid** value falls back with a warning on stderr — never a
//! panic, never a silent misparse.  This module is the single
//! implementation of that convention; `LNCL_THREADS` (tensor kernels),
//! `LNCL_REPS` / `LNCL_EPOCHS` / `LNCL_BENCH_ITERS` / `LNCL_SHARD` (bench
//! harness) and the `LNCL_SERVE_*` family (streaming service) all route
//! through it.

use std::str::FromStr;

/// Reads environment variable `name` and runs `parse` on its value.
///
/// * unset → `None`, silently;
/// * set and `parse` accepts → `Some(value)`;
/// * set and `parse` rejects → `None`, with
///   `warning: ignoring invalid <name>=<raw> (<reason>)` on stderr.
pub fn parse_env<T>(name: &str, parse: impl FnOnce(&str) -> Result<T, String>) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Ok(value) => Some(value),
        Err(reason) => {
            eprintln!("warning: ignoring invalid {name}={raw:?} ({reason})");
            None
        }
    }
}

/// [`parse_env`] for any `FromStr` type, with a caller-supplied validity
/// predicate and a description of what was expected (used in the warning).
pub fn env_parsed<T: FromStr>(name: &str, expected: &str, valid: impl FnOnce(&T) -> bool) -> Option<T> {
    parse_env(name, |raw| match raw.trim().parse::<T>() {
        Ok(value) if valid(&value) => Ok(value),
        _ => Err(format!("expected {expected}")),
    })
}

/// A non-negative integer (`usize`) environment variable.
pub fn env_usize(name: &str) -> Option<usize> {
    env_parsed(name, "a non-negative integer", |_| true)
}

/// A positive integer (`>= 1`) environment variable.
pub fn env_usize_at_least_one(name: &str) -> Option<usize> {
    env_parsed(name, "an integer >= 1", |&n: &usize| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name: the process environment is
    // global and tests run concurrently.

    #[test]
    fn unset_is_none() {
        assert_eq!(env_usize("LNCL_TEST_ENV_UNSET"), None);
    }

    #[test]
    fn valid_values_parse() {
        std::env::set_var("LNCL_TEST_ENV_VALID", "42");
        assert_eq!(env_usize("LNCL_TEST_ENV_VALID"), Some(42));
        assert_eq!(env_usize_at_least_one("LNCL_TEST_ENV_VALID"), Some(42));
    }

    #[test]
    fn invalid_values_fall_back_to_none() {
        std::env::set_var("LNCL_TEST_ENV_INVALID", "ten");
        assert_eq!(env_usize("LNCL_TEST_ENV_INVALID"), None);
        std::env::set_var("LNCL_TEST_ENV_ZERO", "0");
        assert_eq!(env_usize_at_least_one("LNCL_TEST_ENV_ZERO"), None);
        assert_eq!(env_usize("LNCL_TEST_ENV_ZERO"), Some(0));
    }

    #[test]
    fn custom_parsers_report_their_reason() {
        std::env::set_var("LNCL_TEST_ENV_CUSTOM", "1/oops");
        let parsed = parse_env("LNCL_TEST_ENV_CUSTOM", |raw| {
            raw.split_once('/')
                .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
                .ok_or_else(|| "expected i/N".to_string())
        });
        assert_eq!(parsed, None);
    }

    #[test]
    fn whitespace_is_trimmed() {
        std::env::set_var("LNCL_TEST_ENV_WS", " 3 ");
        assert_eq!(env_usize("LNCL_TEST_ENV_WS"), Some(3));
    }
}
