//! Row-block sharding across scoped threads.
//!
//! The matmul kernels in [`crate::ops`] dispatch here when a product is
//! large enough that splitting the output rows across cores pays for the
//! thread spawn (see [`crate::ops::MatmulPlan`]).  The worker count is the
//! same cap the experiment harness uses: `available_parallelism()`,
//! overridable with the `LNCL_THREADS` environment variable.
//!
//! Sharding is always by *output rows*, so every worker writes a disjoint
//! `&mut [f32]` region and no synchronisation beyond the scope join is
//! needed.  Results are bitwise identical to the serial kernels because each
//! output element is still computed by exactly one worker in the same
//! per-element order.

use crate::Matrix;
use std::sync::OnceLock;

/// Maximum number of worker threads used by the parallel kernels.
///
/// Defaults to `available_parallelism()`; the `LNCL_THREADS` environment
/// variable overrides it (values below 1 and unparsable values are ignored
/// with a warning on stderr).  The value is read once and cached for the
/// lifetime of the process.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        crate::env::env_usize_at_least_one("LNCL_THREADS").unwrap_or(hardware)
    })
}

/// Splits the rows of `out` into up to `shards` contiguous blocks and runs
/// `f(first_row, num_rows, block)` for each block, in parallel on scoped
/// threads when `shards > 1`.
///
/// `f` receives the absolute index of the block's first row, the number of
/// rows in the block, and the mutable flat `rows * cols` slice backing those
/// rows.  With `shards <= 1` (or a single-row matrix) `f` is called once on
/// the calling thread — no spawn overhead on the small-matrix path.
pub fn shard_rows<F>(out: &mut Matrix, shards: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let rows = out.rows();
    let cols = out.cols();
    let shards = shards.clamp(1, rows.max(1));
    if shards <= 1 {
        f(0, rows, out.as_mut_slice());
        return;
    }
    let per_shard = rows.div_ceil(shards);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut first_row = 0;
        while first_row < rows {
            let take = per_shard.min(rows - first_row);
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(take * cols);
            rest = tail;
            let f = &f;
            let row0 = first_row;
            scope.spawn(move || f(row0, take, block));
            first_row += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn shard_rows_covers_every_row_exactly_once() {
        for shards in [1usize, 2, 3, 7, 16] {
            let mut m = Matrix::zeros(10, 3);
            shard_rows(&mut m, shards, |first_row, num_rows, block| {
                for r in 0..num_rows {
                    for v in &mut block[r * 3..(r + 1) * 3] {
                        *v += (first_row + r) as f32 + 1.0;
                    }
                }
            });
            for r in 0..10 {
                assert!(m.row(r).iter().all(|&v| v == r as f32 + 1.0), "shards={shards} row={r}: {:?}", m.row(r));
            }
        }
    }

    #[test]
    fn shard_rows_single_row_never_splits() {
        let mut m = Matrix::zeros(1, 4);
        shard_rows(&mut m, 8, |first_row, num_rows, block| {
            assert_eq!((first_row, num_rows), (0, 1));
            block.fill(2.0);
        });
        assert_eq!(m, Matrix::full(1, 4, 2.0));
    }

    #[test]
    fn shard_rows_empty_matrix_is_a_noop() {
        let mut m = Matrix::zeros(0, 5);
        shard_rows(&mut m, 4, |_, num_rows, block| {
            assert_eq!(num_rows, 0);
            assert!(block.is_empty());
        });
    }
}
