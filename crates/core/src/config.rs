//! Training configuration mirroring Table I of the paper.

/// The imitation-strength schedule `k(t)` balancing the two learning targets
/// in the pseudo-M-step (Eq. 7/9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImitationSchedule {
    /// A fixed `k`.
    Constant(f32),
    /// `k(t) = min{cap, 1 − decay^t}` with `t` the (1-based) epoch — the
    /// schedule of Table I (`min{1, 1 − 0.94^t}` for sentiment,
    /// `min{0.8, 1 − 0.90^t}` for NER).
    Exponential {
        /// Upper bound on `k`.
        cap: f32,
        /// Base of the decay.
        decay: f32,
    },
}

impl ImitationSchedule {
    /// Imitation strength for a 0-based epoch index.
    pub fn strength(&self, epoch: usize) -> f32 {
        match *self {
            ImitationSchedule::Constant(k) => k.clamp(0.0, 1.0),
            ImitationSchedule::Exponential { cap, decay } => {
                let t = (epoch + 1) as i32;
                (1.0 - decay.powi(t)).min(cap).clamp(0.0, 1.0)
            }
        }
    }

    /// The paper's sentiment schedule `min{1, 1 − 0.94^t}`.
    pub fn sentiment_paper() -> Self {
        ImitationSchedule::Exponential { cap: 1.0, decay: 0.94 }
    }

    /// The paper's NER schedule `min{0.8, 1 − 0.90^t}`.
    pub fn ner_paper() -> Self {
        ImitationSchedule::Exponential { cap: 0.8, decay: 0.90 }
    }
}

/// Which M-step objective to use: Eq. 6 (plain expectation) or Eq. 5
/// (weighted by the number of annotations of each instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MStepObjective {
    /// Eq. 6 — every instance contributes equally.
    Unweighted,
    /// Eq. 5 — instances with more annotations weigh more.
    AnnotationWeighted,
}

/// Optimiser selection (the paper uses Adadelta for sentiment and Adam for
/// NER).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with momentum.
    Sgd { lr: f32, momentum: f32 },
    /// Adam.
    Adam { lr: f32 },
    /// Adadelta.
    Adadelta { lr: f32 },
}

/// Full training configuration of the Logic-LNCL trainer and of the EM /
/// crowd-layer baselines that share its loop.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum number of epochs (Table I: 30).
    pub epochs: usize,
    /// Mini-batch size (Table I: 50 / 64).
    pub batch_size: usize,
    /// Posterior-regularisation strength `C` (Table I: 5.0).
    pub regularization_c: f32,
    /// Imitation-strength schedule `k(t)`.
    pub imitation: ImitationSchedule,
    /// M-step objective (Eq. 5 vs Eq. 6).
    pub objective: MStepObjective,
    /// Early-stopping patience on the development metric (Table I: 5).
    pub early_stopping_patience: usize,
    /// Optimiser.
    pub optimizer: OptimizerKind,
    /// Optional learning-rate step decay `(factor, every_epochs)` — the
    /// paper halves the sentiment learning rate every 5 epochs.
    pub lr_decay: Option<(f32, usize)>,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// RNG seed for shuffling / dropout.
    pub seed: u64,
}

impl TrainConfig {
    /// Sentiment configuration following Table I (at reproduction scale the
    /// epoch count is configurable by the caller).
    pub fn sentiment_paper() -> Self {
        Self {
            epochs: 30,
            batch_size: 50,
            regularization_c: 5.0,
            imitation: ImitationSchedule::sentiment_paper(),
            objective: MStepObjective::Unweighted,
            early_stopping_patience: 5,
            optimizer: OptimizerKind::Adadelta { lr: 1.0 },
            lr_decay: Some((0.5, 5)),
            grad_clip: Some(5.0),
            seed: 1,
        }
    }

    /// NER configuration following Table I.
    pub fn ner_paper() -> Self {
        Self {
            epochs: 30,
            batch_size: 64,
            regularization_c: 5.0,
            imitation: ImitationSchedule::ner_paper(),
            objective: MStepObjective::AnnotationWeighted,
            early_stopping_patience: 5,
            optimizer: OptimizerKind::Adam { lr: 0.001 },
            lr_decay: None,
            grad_clip: Some(5.0),
            seed: 1,
        }
    }

    /// A fast configuration used by tests, the examples and the default
    /// bench harness: Adam with a larger learning rate and small batches so
    /// the (reduced-width) models converge in a handful of epochs on the
    /// simulator-scale corpora.  The `*_paper()` configurations remain the
    /// faithful Table-I settings.
    pub fn fast(epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 25,
            optimizer: OptimizerKind::Adam { lr: 0.01 },
            lr_decay: None,
            ..Self::sentiment_paper()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Starts a builder from the [`TrainConfig::fast`] defaults.
    ///
    /// ```
    /// use logic_lncl::config::{OptimizerKind, TrainConfig};
    ///
    /// let config = TrainConfig::builder()
    ///     .epochs(8)
    ///     .batch_size(32)
    ///     .optimizer(OptimizerKind::Adam { lr: 0.005 })
    ///     .seed(7)
    ///     .build();
    /// assert_eq!(config.epochs, 8);
    /// ```
    pub fn builder() -> TrainConfigBuilder {
        TrainConfigBuilder { config: TrainConfig::fast(12) }
    }

    /// Starts a builder from an existing configuration (e.g. the Table-I
    /// `sentiment_paper()` / `ner_paper()` presets).
    pub fn builder_from(config: TrainConfig) -> TrainConfigBuilder {
        TrainConfigBuilder { config }
    }
}

/// Builder for [`TrainConfig`]; see [`TrainConfig::builder`].
#[derive(Debug, Clone)]
pub struct TrainConfigBuilder {
    config: TrainConfig,
}

impl TrainConfigBuilder {
    /// Maximum number of epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Mini-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Posterior-regularisation strength `C`.
    pub fn regularization_c(mut self, c: f32) -> Self {
        self.config.regularization_c = c;
        self
    }

    /// Imitation-strength schedule `k(t)`.
    pub fn imitation(mut self, schedule: ImitationSchedule) -> Self {
        self.config.imitation = schedule;
        self
    }

    /// M-step objective (Eq. 5 vs Eq. 6).
    pub fn objective(mut self, objective: MStepObjective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Early-stopping patience on the development metric.
    pub fn early_stopping_patience(mut self, patience: usize) -> Self {
        self.config.early_stopping_patience = patience;
        self
    }

    /// Optimiser.
    pub fn optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.config.optimizer = optimizer;
        self
    }

    /// Learning-rate step decay `(factor, every_epochs)`; `None` disables.
    pub fn lr_decay(mut self, decay: Option<(f32, usize)>) -> Self {
        self.config.lr_decay = decay;
        self
    }

    /// Global gradient-norm clip; `None` disables.
    pub fn grad_clip(mut self, clip: Option<f32>) -> Self {
        self.config.grad_clip = clip;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TrainConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_schedule_matches_paper_formula() {
        let s = ImitationSchedule::sentiment_paper();
        assert!((s.strength(0) - (1.0 - 0.94f32)).abs() < 1e-6);
        assert!((s.strength(9) - (1.0 - 0.94f32.powi(10))).abs() < 1e-6);
        // monotone non-decreasing and bounded by 1
        let mut prev = 0.0;
        for t in 0..60 {
            let k = s.strength(t);
            assert!(k >= prev && k <= 1.0);
            prev = k;
        }
    }

    #[test]
    fn ner_schedule_caps_at_point_eight() {
        let s = ImitationSchedule::ner_paper();
        assert!(s.strength(100) <= 0.8 + 1e-6);
        assert!((s.strength(100) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn constant_schedule_is_clamped() {
        assert_eq!(ImitationSchedule::Constant(2.0).strength(3), 1.0);
        assert_eq!(ImitationSchedule::Constant(0.4).strength(0), 0.4);
    }

    #[test]
    fn paper_configs_match_table_one() {
        let sent = TrainConfig::sentiment_paper();
        assert_eq!(sent.batch_size, 50);
        assert_eq!(sent.regularization_c, 5.0);
        assert_eq!(sent.early_stopping_patience, 5);
        assert!(matches!(sent.optimizer, OptimizerKind::Adadelta { lr } if (lr - 1.0).abs() < 1e-6));
        let ner = TrainConfig::ner_paper();
        assert_eq!(ner.batch_size, 64);
        assert!(matches!(ner.optimizer, OptimizerKind::Adam { lr } if (lr - 0.001).abs() < 1e-6));
        assert_eq!(ner.objective, MStepObjective::AnnotationWeighted);
    }

    #[test]
    fn builder_overrides() {
        let c = TrainConfig::fast(3).with_seed(99).with_epochs(7);
        assert_eq!(c.epochs, 7);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn full_builder_sets_every_field() {
        let c = TrainConfig::builder()
            .epochs(9)
            .batch_size(17)
            .regularization_c(3.0)
            .imitation(ImitationSchedule::Constant(0.5))
            .objective(MStepObjective::AnnotationWeighted)
            .early_stopping_patience(2)
            .optimizer(OptimizerKind::Sgd { lr: 0.1, momentum: 0.9 })
            .lr_decay(Some((0.5, 3)))
            .grad_clip(None)
            .seed(41)
            .build();
        assert_eq!(c.epochs, 9);
        assert_eq!(c.batch_size, 17);
        assert_eq!(c.regularization_c, 3.0);
        assert_eq!(c.imitation, ImitationSchedule::Constant(0.5));
        assert_eq!(c.objective, MStepObjective::AnnotationWeighted);
        assert_eq!(c.early_stopping_patience, 2);
        assert!(matches!(c.optimizer, OptimizerKind::Sgd { .. }));
        assert_eq!(c.lr_decay, Some((0.5, 3)));
        assert_eq!(c.grad_clip, None);
        assert_eq!(c.seed, 41);
    }

    #[test]
    fn builder_from_preserves_preset() {
        let c = TrainConfig::builder_from(TrainConfig::ner_paper()).seed(5).build();
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.seed, 5);
    }
}
