//! The annotator-reliability model: per-annotator confusion matrices Π and
//! their closed-form M-step update (Eq. 12 of the paper).

use crate::posterior::FlatPosteriors;
// the decay^distance blend is shared with windowed Dawid-Skene, so both
// stream-windowed estimators always apply the same smoothing scheme
use lncl_crowd::truth::ds_windowed::decay_blend_flat;
use lncl_crowd::CrowdDataset;
use lncl_tensor::{simd, Matrix};

/// Eq. 12 count accumulation with a compile-time class count, which lets
/// the compiler unroll the per-label `row += q_f` update completely (the
/// paper's tasks have K = 2 and K = 9).
fn accumulate_counts<const K: usize>(counts: &mut [f32], dataset: &CrowdDataset, qf: &FlatPosteriors) {
    let tier = simd::detected_tier();
    for (i, inst) in dataset.train.iter().enumerate() {
        let q_inst = qf.instance_slice(i);
        assert_eq!(q_inst.len(), inst.num_units() * K, "qf unit count mismatch");
        for cl in &inst.crowd_labels {
            let annotator_base = cl.annotator * K * K;
            for (&observed, src) in cl.labels.iter().zip(q_inst.chunks_exact(K)) {
                debug_assert!(observed < K, "observed label {observed} out of range for {K} classes");
                let dst = &mut counts[annotator_base + observed * K..][..K];
                simd::add_assign(tier, dst, src);
            }
        }
    }
}

/// Runtime-`k` fallback of [`accumulate_counts`] for class counts outside
/// the specialised set.
fn accumulate_counts_dyn(counts: &mut [f32], dataset: &CrowdDataset, qf: &FlatPosteriors, k: usize) {
    let tier = simd::detected_tier();
    for (i, inst) in dataset.train.iter().enumerate() {
        let q_inst = qf.instance_slice(i);
        assert_eq!(q_inst.len(), inst.num_units() * k, "qf unit count mismatch");
        for cl in &inst.crowd_labels {
            let annotator_base = cl.annotator * k * k;
            for (&observed, src) in cl.labels.iter().zip(q_inst.chunks_exact(k)) {
                debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
                let dst = &mut counts[annotator_base + observed * k..][..k];
                simd::add_assign(tier, dst, src);
            }
        }
    }
}

/// Per-annotator confusion matrices `Π^{(j)}`, where row `m`, column `n` is
/// the probability that annotator `j` reports class `n` when the truth is
/// class `m`.
///
/// The matrices of all annotators live in one flat `(J * K) x K` matrix
/// (row `j * K + m` is annotator `j`'s truth-`m` row), so constructing and
/// updating the model costs O(1) allocations regardless of the crowd size.
/// Alongside the probabilities the model lazily caches the
/// *log*-likelihoods in observed-major layout (row `j * K + observed`,
/// column = truth class), which is what the per-unit posterior of Eq. 13
/// consumes: one contiguous row lookup per crowd label instead of a strided
/// column walk with a `ln` per entry.  The cache is built on first use and
/// invalidated by [`AnnotatorModel::update_from_qf`], so workloads that
/// never read likelihoods (e.g. the pure Eq. 12 update) do not pay for it.
#[derive(Debug)]
pub struct AnnotatorModel {
    /// Flat truth-major blocks: row `j * K + m`, column `n` is `π^{(j)}_{m n}`.
    confusions: Matrix,
    /// Flat observed-major blocks: row `j * K + n`, column `m` is
    /// `ln(max(π^{(j)}_{m n}, 1e-12))`.
    log_by_observed: std::sync::OnceLock<Matrix>,
    num_annotators: usize,
    num_classes: usize,
}

impl Clone for AnnotatorModel {
    fn clone(&self) -> Self {
        let log_by_observed = std::sync::OnceLock::new();
        if let Some(cache) = self.log_by_observed.get() {
            let _ = log_by_observed.set(cache.clone());
        }
        Self {
            confusions: self.confusions.clone(),
            log_by_observed,
            num_annotators: self.num_annotators,
            num_classes: self.num_classes,
        }
    }
}

impl AnnotatorModel {
    /// Initialises every annotator with a diagonally-dominant confusion
    /// matrix (`diag` on the diagonal, the rest uniform), the usual neutral
    /// starting point for EM.
    pub fn new(num_annotators: usize, num_classes: usize, diag: f32) -> Self {
        assert!(num_classes >= 2);
        assert!((0.0..=1.0).contains(&diag));
        let off = (1.0 - diag) / (num_classes - 1) as f32;
        let confusions =
            Matrix::from_fn(
                num_annotators * num_classes,
                num_classes,
                |r, c| {
                    if r % num_classes == c {
                        diag
                    } else {
                        off
                    }
                },
            );
        Self { confusions, log_by_observed: std::sync::OnceLock::new(), num_annotators, num_classes }
    }

    /// The cached log-likelihoods `ln π^{(j)}_{m, observed}` over all truth
    /// classes `m`, as one contiguous slice (clamped at `ln 1e-12`).
    #[inline]
    pub fn log_likelihoods_for(&self, j: usize, observed: usize) -> &[f32] {
        let k = self.num_classes;
        debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
        let cache = self.log_by_observed.get_or_init(|| {
            Matrix::from_fn(self.num_annotators * k, k, |r, m| {
                let (j, n) = (r / k, r % k);
                self.confusions[(j * k + m, n)].max(1e-12).ln()
            })
        });
        cache.row(j * k + observed)
    }

    /// Number of annotators.
    pub fn num_annotators(&self) -> usize {
        self.num_annotators
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Confusion matrix of annotator `j`, copied out of the flat storage.
    pub fn confusion(&self, j: usize) -> Matrix {
        let k = self.num_classes;
        Matrix::from_fn(k, k, |m, n| self.confusions[(j * k + m, n)])
    }

    /// All confusion matrices, copied out of the flat storage.
    pub fn confusions(&self) -> Vec<Matrix> {
        (0..self.num_annotators).map(|j| self.confusion(j)).collect()
    }

    /// The likelihood `π^{(j)}_{m, n}` of annotator `j` reporting `observed`
    /// when the truth is `truth`.
    pub fn likelihood(&self, j: usize, truth: usize, observed: usize) -> f32 {
        self.confusions[(j * self.num_classes + truth, observed)]
    }

    /// Overall reliability (mean diagonal) per annotator — the scalar
    /// compared against the empirical one in Figures 6b/7b.
    pub fn reliabilities(&self) -> Vec<f32> {
        let k = self.num_classes;
        (0..self.num_annotators)
            .map(|j| (0..k).map(|m| self.confusions[(j * k + m, m)]).sum::<f32>() / k as f32)
            .collect()
    }

    /// Closed-form update of Eq. 12:
    ///
    /// ```text
    /// π^{(j)}_{mn} = Σ_i q_f(t_i = m)·1[y_ij = n]  /  Σ_i q_f(t_i = m)·1[y_ij ≠ 0]
    /// ```
    ///
    /// `qf` holds one distribution per *unit* in the order produced by
    /// [`lncl_crowd::AnnotationView`]; here we work directly on the dataset
    /// so the caller supplies `qf` per instance (outer index) and per unit
    /// (inner index).  `smoothing` is added to every count to keep rows
    /// well-defined for rarely observed truth classes.
    pub fn update_from_qf(&mut self, dataset: &CrowdDataset, qf: &FlatPosteriors, smoothing: f32) {
        assert_eq!(qf.num_instances(), dataset.train.len(), "qf must cover every training instance");
        assert_eq!(qf.num_classes(), self.num_classes, "qf class count mismatch");
        let k = self.num_classes;
        // accumulate into one flat observed-major buffer
        // (annotator-major, then observed label, then truth class) so the
        // inner update is a single contiguous row += q_f row; the inner
        // kernel is monomorphised for the paper's two class counts.
        let mut counts = vec![smoothing; self.num_annotators * k * k];
        match k {
            2 => accumulate_counts::<2>(&mut counts, dataset, qf),
            9 => accumulate_counts::<9>(&mut counts, dataset, qf),
            _ => accumulate_counts_dyn(&mut counts, dataset, qf, k),
        }
        // flip each observed-major block to the truth-major confusion
        // layout in place, then normalise every truth row — no per-annotator
        // allocations anywhere in the update
        for block in counts.chunks_exact_mut(k * k) {
            for m in 0..k {
                for n in 0..m {
                    block.swap(m * k + n, n * k + m);
                }
            }
        }
        let mut confusions = Matrix::from_vec(self.num_annotators * k, k, counts);
        lncl_crowd::metrics::normalize_confusion_rows(&mut confusions);
        self.confusions = confusions;
        self.log_by_observed = std::sync::OnceLock::new();
    }
}

/// Per-annotator, per-**stream-window** confusion matrices: the
/// drift-tracking variant of [`AnnotatorModel`]'s Eq. 12 / Eq. 13 surface.
///
/// Each annotator's label stream (their crowd labels in training-instance
/// order, a proxy for time) is cut into windows of at most `window`
/// instances; one confusion matrix is estimated per window, with raw counts
/// smoothed across neighbouring windows by `decay^distance` (two linear
/// geometric-prefix passes).  The E-step then judges every crowd label by the
/// confusion matrix of the window it was produced in, which is what lets
/// `logic-lncl-windowed` discount an annotator's late-stream garbage while
/// still trusting their early-stream labels under the drifting-annotator
/// scenarios of [`lncl_crowd::scenario::DriftSchedule`].
///
/// Degenerate parameters (`window == 0`, `decay` outside `(0, 1]`) are
/// rejected with a descriptive panic instead of silently misbehaving;
/// `decay == 1.0` pools all windows and recovers the static model's
/// estimates.
#[derive(Debug, Clone)]
pub struct WindowedAnnotatorModel {
    /// Flat truth-major blocks: row `(block_offset[j] + w) * K + m`,
    /// column `n` is annotator `j`'s window-`w` `π_{m n}`.
    confusions: Matrix,
    /// Flat observed-major log-likelihood blocks, same block layout:
    /// row `(block_offset[j] + w) * K + n`, column `m` is
    /// `ln(max(π_{m n}, 1e-12))`.
    log_by_observed: Matrix,
    /// Per-annotator first block index; annotator `j` owns blocks
    /// `block_offset[j]..block_offset[j + 1]`.
    block_offset: Vec<usize>,
    /// Per (instance, crowd-label slot): the window index *within* the
    /// labelling annotator's stream.
    window_of: Vec<Vec<usize>>,
    num_classes: usize,
    window: usize,
    decay: f32,
}

impl WindowedAnnotatorModel {
    /// Builds the model for a dataset: indexes every annotator's stream
    /// (instance order, matching the scenario generator's notion of time),
    /// sizes the per-window storage and initialises every window
    /// diagonally dominant, like [`AnnotatorModel::new`].
    ///
    /// Panics with a descriptive message on degenerate parameters.
    pub fn new(dataset: &CrowdDataset, window: usize, decay: f32, diag: f32) -> Self {
        assert!(window >= 1, "windowed annotator model: window must hold at least one label, got {window}");
        assert!(
            decay > 0.0 && decay <= 1.0 && decay.is_finite(),
            "windowed annotator model: decay must be in (0, 1], got {decay}"
        );
        let k = dataset.num_classes;
        assert!(k >= 2);
        assert!((0.0..=1.0).contains(&diag));

        // stream positions advance once per crowd label per instance — the
        // same granularity the scenario generator drifts on
        let mut counters = vec![0usize; dataset.num_annotators];
        let window_of: Vec<Vec<usize>> = dataset
            .train
            .iter()
            .map(|inst| {
                inst.crowd_labels
                    .iter()
                    .map(|cl| {
                        let p = counters[cl.annotator];
                        counters[cl.annotator] += 1;
                        p / window
                    })
                    .collect()
            })
            .collect();
        let mut block_offset = Vec::with_capacity(dataset.num_annotators + 1);
        block_offset.push(0);
        for &len in &counters {
            let windows = len.div_ceil(window).max(1);
            block_offset.push(block_offset.last().unwrap() + windows);
        }

        let total_blocks = *block_offset.last().unwrap();
        let off = (1.0 - diag) / (k - 1) as f32;
        let confusions = Matrix::from_fn(total_blocks * k, k, |r, c| if r % k == c { diag } else { off });
        let mut model = Self {
            confusions,
            log_by_observed: Matrix::zeros(total_blocks * k, k),
            block_offset,
            window_of,
            num_classes: k,
            window,
            decay,
        };
        model.rebuild_log_cache();
        model
    }

    /// Maximum instances per estimation window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Cross-window count decay in `(0, 1]`.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Block index of annotator `j`'s window for the crowd-label `slot` of
    /// training instance `i` (clamped into the annotator's window range, so
    /// positions beyond the indexed stream reuse the last window).
    #[inline]
    fn block_of(&self, i: usize, slot: usize, j: usize) -> usize {
        let windows = self.block_offset[j + 1] - self.block_offset[j];
        self.block_offset[j] + self.window_of[i][slot].min(windows - 1)
    }

    /// The cached log-likelihoods `ln π_{m, observed}` of the window in
    /// which annotator `j` produced the crowd-label `slot` of instance `i`,
    /// over all truth classes `m`, as one contiguous slice.
    #[inline]
    pub fn log_likelihoods_for(&self, i: usize, slot: usize, j: usize, observed: usize) -> &[f32] {
        let k = self.num_classes;
        debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
        self.log_by_observed.row(self.block_of(i, slot, j) * k + observed)
    }

    fn rebuild_log_cache(&mut self) {
        let k = self.num_classes;
        self.log_by_observed = Matrix::from_fn(self.confusions.rows(), k, |r, m| {
            let (block, n) = (r / k, r % k);
            self.confusions[(block * k + m, n)].max(1e-12).ln()
        });
    }

    /// The windowed Eq. 12: accumulates soft counts per (annotator,
    /// window), blends neighbouring windows with `decay^distance`, smooths
    /// and row-normalises.  The counterpart of
    /// [`AnnotatorModel::update_from_qf`].
    pub fn update_from_qf(&mut self, dataset: &CrowdDataset, qf: &FlatPosteriors, smoothing: f32) {
        assert_eq!(qf.num_instances(), dataset.train.len(), "qf must cover every training instance");
        assert_eq!(qf.num_classes(), self.num_classes, "qf class count mismatch");
        let k = self.num_classes;
        let total_blocks = *self.block_offset.last().unwrap();
        // observed-major accumulation per block, like the static model
        let mut counts = vec![0.0f32; total_blocks * k * k];
        let tier = simd::detected_tier();
        for (i, inst) in dataset.train.iter().enumerate() {
            let q_inst = qf.instance_slice(i);
            for (slot, cl) in inst.crowd_labels.iter().enumerate() {
                let base = self.block_of(i, slot, cl.annotator) * k * k;
                for (&observed, src) in cl.labels.iter().zip(q_inst.chunks_exact(k)) {
                    debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
                    let dst = &mut counts[base + observed * k..][..k];
                    simd::add_assign(tier, dst, src);
                }
            }
        }
        // blend each annotator's windows, then flip observed-major ->
        // truth-major and normalise
        let block = k * k;
        let mut blended = Vec::with_capacity(counts.len());
        for j in 0..self.block_offset.len() - 1 {
            let range = self.block_offset[j] * block..self.block_offset[j + 1] * block;
            blended.extend(decay_blend_flat(&counts[range], block, self.decay));
        }
        for chunk in blended.chunks_exact_mut(block) {
            for m in 0..k {
                for n in 0..m {
                    chunk.swap(m * k + n, n * k + m);
                }
            }
            for v in chunk.iter_mut() {
                *v += smoothing;
            }
        }
        let mut confusions = Matrix::from_vec(total_blocks * k, k, blended);
        lncl_crowd::metrics::normalize_confusion_rows(&mut confusions);
        self.confusions = confusions;
        self.rebuild_log_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::{CrowdLabel, Instance, TaskKind};

    fn dataset_with_known_annotator() -> CrowdDataset {
        // annotator 0 always reports the gold label; annotator 1 always
        // reports class 0.
        let mut train = Vec::new();
        for i in 0..20 {
            let gold = i % 2;
            train.push(Instance {
                tokens: vec![1],
                gold: vec![gold],
                crowd_labels: vec![
                    CrowdLabel { annotator: 0, labels: vec![gold] },
                    CrowdLabel { annotator: 1, labels: vec![0] },
                ],
            });
        }
        CrowdDataset {
            task: TaskKind::Classification,
            num_classes: 2,
            num_annotators: 2,
            vocab: vec!["<pad>".into(), "w".into()],
            class_names: vec!["0".into(), "1".into()],
            train,
            dev: vec![],
            test: vec![],
            but_token: None,
            however_token: None,
        }
    }

    #[test]
    fn initialisation_is_diagonally_dominant() {
        let model = AnnotatorModel::new(3, 4, 0.7);
        assert_eq!(model.num_annotators(), 3);
        for j in 0..3 {
            let c = model.confusion(j);
            for r in 0..4 {
                assert!((c.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
                assert!(c[(r, r)] > c[(r, (r + 1) % 4)]);
            }
        }
        assert!((model.likelihood(0, 1, 1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn eq12_update_recovers_annotator_behaviour() {
        let dataset = dataset_with_known_annotator();
        // q_f equal to the gold posterior
        let qf: Vec<Matrix> = dataset
            .train
            .iter()
            .map(|inst| Matrix::from_fn(inst.gold.len(), 2, |u, c| if inst.gold[u] == c { 1.0 } else { 0.0 }))
            .collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&qf, 2), 0.01);
        // annotator 0: near-identity
        assert!(model.likelihood(0, 0, 0) > 0.95);
        assert!(model.likelihood(0, 1, 1) > 0.95);
        // annotator 1: always answers 0 regardless of truth
        assert!(model.likelihood(1, 0, 0) > 0.95);
        assert!(model.likelihood(1, 1, 0) > 0.95);
        let rel = model.reliabilities();
        assert!(rel[0] > rel[1]);
    }

    #[test]
    fn soft_qf_interpolates_counts() {
        let dataset = dataset_with_known_annotator();
        // completely uninformative q_f: confusion rows should be close to the
        // annotator's marginal label distribution for both truth classes.
        let qf: Vec<Matrix> = dataset.train.iter().map(|inst| Matrix::full(inst.num_units(), 2, 0.5)).collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&qf, 2), 0.01);
        // annotator 0 labels half 0 and half 1 overall
        assert!((model.likelihood(0, 0, 0) - 0.5).abs() < 0.05);
        assert!((model.likelihood(0, 1, 0) - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic]
    fn update_rejects_wrong_instance_count() {
        let dataset = dataset_with_known_annotator();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&[], 2), 0.01);
    }

    // -- windowed model ----------------------------------------------------

    fn gold_qf(dataset: &CrowdDataset) -> FlatPosteriors {
        let matrices: Vec<Matrix> = dataset
            .train
            .iter()
            .map(|inst| Matrix::from_fn(inst.gold.len(), 2, |u, c| if inst.gold[u] == c { 1.0 } else { 0.0 }))
            .collect();
        FlatPosteriors::from_matrices(&matrices, 2)
    }

    /// Annotator 0 reports gold for the first 10 instances, then always 0;
    /// annotator 1 reports gold throughout.
    fn dataset_with_step_change() -> CrowdDataset {
        let mut train = Vec::new();
        for i in 0..20 {
            let gold = i % 2;
            let drifted = if i < 10 { gold } else { 0 };
            train.push(Instance {
                tokens: vec![1],
                gold: vec![gold],
                crowd_labels: vec![
                    CrowdLabel { annotator: 0, labels: vec![drifted] },
                    CrowdLabel { annotator: 1, labels: vec![gold] },
                ],
            });
        }
        CrowdDataset {
            task: TaskKind::Classification,
            num_classes: 2,
            num_annotators: 2,
            vocab: vec!["<pad>".into(), "w".into()],
            class_names: vec!["0".into(), "1".into()],
            train,
            dev: vec![],
            test: vec![],
            but_token: None,
            however_token: None,
        }
    }

    #[test]
    fn windowed_update_separates_the_streams_of_a_step_change() {
        let dataset = dataset_with_step_change();
        let mut model = WindowedAnnotatorModel::new(&dataset, 10, 0.2, 0.5);
        model.update_from_qf(&dataset, &gold_qf(&dataset), 0.01);
        // window 0 (instances 0..10): annotator 0 is near-perfect —
        // ln π_{1,1} from a truth-1 unit labelled 1 should dominate
        let early = model.log_likelihoods_for(1, 0, 0, 1); // instance 1 (gold 1, labelled 1)
        assert!(early[1] > early[0] + 1.0, "early window should trust annotator 0: {early:?}");
        // window 1 (instances 10..20): annotator 0 answers 0 on truth 1, so
        // observing a 0 no longer implicates truth 0 strongly
        let late = model.log_likelihoods_for(11, 0, 0, 0); // instance 11 (gold 1, labelled 0)
        assert!(
            (late[0] - late[1]).abs() < 1.0,
            "late window should treat annotator 0's zeros as weak evidence: {late:?}"
        );
    }

    #[test]
    fn decay_one_windowed_update_matches_the_pooled_model() {
        let dataset = dataset_with_step_change();
        let qf = gold_qf(&dataset);
        let mut pooled = AnnotatorModel::new(2, 2, 0.5);
        pooled.update_from_qf(&dataset, &qf, 0.01);
        let mut windowed = WindowedAnnotatorModel::new(&dataset, 5, 1.0, 0.5);
        windowed.update_from_qf(&dataset, &qf, 0.01);
        // decay 1.0 blends every window to the global counts, so each
        // window's normalised matrix equals the pooled Eq. 12 estimate
        for (i, slot, j, observed) in [(0, 0, 0, 0), (3, 1, 1, 1), (17, 0, 0, 0)] {
            let w = windowed.log_likelihoods_for(i, slot, j, observed);
            let p = pooled.log_likelihoods_for(j, observed);
            for (a, b) in w.iter().zip(p) {
                assert!((a - b).abs() < 1e-4, "decay 1.0 must pool to the static counts: {w:?} vs {p:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must hold at least one label")]
    fn windowed_model_rejects_zero_window() {
        let _ = WindowedAnnotatorModel::new(&dataset_with_known_annotator(), 0, 0.5, 0.7);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1]")]
    fn windowed_model_rejects_out_of_range_decay() {
        let _ = WindowedAnnotatorModel::new(&dataset_with_known_annotator(), 5, 0.0, 0.7);
    }
}
