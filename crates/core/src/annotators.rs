//! The annotator-reliability model: per-annotator confusion matrices Π and
//! their closed-form M-step update (Eq. 12 of the paper).

use crate::posterior::FlatPosteriors;
use lncl_crowd::CrowdDataset;
use lncl_tensor::Matrix;

/// Eq. 12 count accumulation with a compile-time class count, which lets
/// the compiler unroll the per-label `row += q_f` update completely (the
/// paper's tasks have K = 2 and K = 9).
fn accumulate_counts<const K: usize>(counts: &mut [f32], dataset: &CrowdDataset, qf: &FlatPosteriors) {
    for (i, inst) in dataset.train.iter().enumerate() {
        let q_inst = qf.instance_slice(i);
        assert_eq!(q_inst.len(), inst.num_units() * K, "qf unit count mismatch");
        for cl in &inst.crowd_labels {
            let annotator_base = cl.annotator * K * K;
            for (&observed, src) in cl.labels.iter().zip(q_inst.chunks_exact(K)) {
                debug_assert!(observed < K, "observed label {observed} out of range for {K} classes");
                let dst = &mut counts[annotator_base + observed * K..][..K];
                for (c, &q) in dst.iter_mut().zip(src) {
                    *c += q;
                }
            }
        }
    }
}

/// Runtime-`k` fallback of [`accumulate_counts`] for class counts outside
/// the specialised set.
fn accumulate_counts_dyn(counts: &mut [f32], dataset: &CrowdDataset, qf: &FlatPosteriors, k: usize) {
    for (i, inst) in dataset.train.iter().enumerate() {
        let q_inst = qf.instance_slice(i);
        assert_eq!(q_inst.len(), inst.num_units() * k, "qf unit count mismatch");
        for cl in &inst.crowd_labels {
            let annotator_base = cl.annotator * k * k;
            for (&observed, src) in cl.labels.iter().zip(q_inst.chunks_exact(k)) {
                debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
                let dst = &mut counts[annotator_base + observed * k..][..k];
                for (c, &q) in dst.iter_mut().zip(src) {
                    *c += q;
                }
            }
        }
    }
}

/// Per-annotator confusion matrices `Π^{(j)}`, where row `m`, column `n` is
/// the probability that annotator `j` reports class `n` when the truth is
/// class `m`.
///
/// The matrices of all annotators live in one flat `(J * K) x K` matrix
/// (row `j * K + m` is annotator `j`'s truth-`m` row), so constructing and
/// updating the model costs O(1) allocations regardless of the crowd size.
/// Alongside the probabilities the model lazily caches the
/// *log*-likelihoods in observed-major layout (row `j * K + observed`,
/// column = truth class), which is what the per-unit posterior of Eq. 13
/// consumes: one contiguous row lookup per crowd label instead of a strided
/// column walk with a `ln` per entry.  The cache is built on first use and
/// invalidated by [`AnnotatorModel::update_from_qf`], so workloads that
/// never read likelihoods (e.g. the pure Eq. 12 update) do not pay for it.
#[derive(Debug)]
pub struct AnnotatorModel {
    /// Flat truth-major blocks: row `j * K + m`, column `n` is `π^{(j)}_{m n}`.
    confusions: Matrix,
    /// Flat observed-major blocks: row `j * K + n`, column `m` is
    /// `ln(max(π^{(j)}_{m n}, 1e-12))`.
    log_by_observed: std::sync::OnceLock<Matrix>,
    num_annotators: usize,
    num_classes: usize,
}

impl Clone for AnnotatorModel {
    fn clone(&self) -> Self {
        let log_by_observed = std::sync::OnceLock::new();
        if let Some(cache) = self.log_by_observed.get() {
            let _ = log_by_observed.set(cache.clone());
        }
        Self {
            confusions: self.confusions.clone(),
            log_by_observed,
            num_annotators: self.num_annotators,
            num_classes: self.num_classes,
        }
    }
}

impl AnnotatorModel {
    /// Initialises every annotator with a diagonally-dominant confusion
    /// matrix (`diag` on the diagonal, the rest uniform), the usual neutral
    /// starting point for EM.
    pub fn new(num_annotators: usize, num_classes: usize, diag: f32) -> Self {
        assert!(num_classes >= 2);
        assert!((0.0..=1.0).contains(&diag));
        let off = (1.0 - diag) / (num_classes - 1) as f32;
        let confusions =
            Matrix::from_fn(
                num_annotators * num_classes,
                num_classes,
                |r, c| {
                    if r % num_classes == c {
                        diag
                    } else {
                        off
                    }
                },
            );
        Self { confusions, log_by_observed: std::sync::OnceLock::new(), num_annotators, num_classes }
    }

    /// The cached log-likelihoods `ln π^{(j)}_{m, observed}` over all truth
    /// classes `m`, as one contiguous slice (clamped at `ln 1e-12`).
    #[inline]
    pub fn log_likelihoods_for(&self, j: usize, observed: usize) -> &[f32] {
        let k = self.num_classes;
        debug_assert!(observed < k, "observed label {observed} out of range for {k} classes");
        let cache = self.log_by_observed.get_or_init(|| {
            Matrix::from_fn(self.num_annotators * k, k, |r, m| {
                let (j, n) = (r / k, r % k);
                self.confusions[(j * k + m, n)].max(1e-12).ln()
            })
        });
        cache.row(j * k + observed)
    }

    /// Number of annotators.
    pub fn num_annotators(&self) -> usize {
        self.num_annotators
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Confusion matrix of annotator `j`, copied out of the flat storage.
    pub fn confusion(&self, j: usize) -> Matrix {
        let k = self.num_classes;
        Matrix::from_fn(k, k, |m, n| self.confusions[(j * k + m, n)])
    }

    /// All confusion matrices, copied out of the flat storage.
    pub fn confusions(&self) -> Vec<Matrix> {
        (0..self.num_annotators).map(|j| self.confusion(j)).collect()
    }

    /// The likelihood `π^{(j)}_{m, n}` of annotator `j` reporting `observed`
    /// when the truth is `truth`.
    pub fn likelihood(&self, j: usize, truth: usize, observed: usize) -> f32 {
        self.confusions[(j * self.num_classes + truth, observed)]
    }

    /// Overall reliability (mean diagonal) per annotator — the scalar
    /// compared against the empirical one in Figures 6b/7b.
    pub fn reliabilities(&self) -> Vec<f32> {
        let k = self.num_classes;
        (0..self.num_annotators)
            .map(|j| (0..k).map(|m| self.confusions[(j * k + m, m)]).sum::<f32>() / k as f32)
            .collect()
    }

    /// Closed-form update of Eq. 12:
    ///
    /// ```text
    /// π^{(j)}_{mn} = Σ_i q_f(t_i = m)·1[y_ij = n]  /  Σ_i q_f(t_i = m)·1[y_ij ≠ 0]
    /// ```
    ///
    /// `qf` holds one distribution per *unit* in the order produced by
    /// [`lncl_crowd::AnnotationView`]; here we work directly on the dataset
    /// so the caller supplies `qf` per instance (outer index) and per unit
    /// (inner index).  `smoothing` is added to every count to keep rows
    /// well-defined for rarely observed truth classes.
    pub fn update_from_qf(&mut self, dataset: &CrowdDataset, qf: &FlatPosteriors, smoothing: f32) {
        assert_eq!(qf.num_instances(), dataset.train.len(), "qf must cover every training instance");
        assert_eq!(qf.num_classes(), self.num_classes, "qf class count mismatch");
        let k = self.num_classes;
        // accumulate into one flat observed-major buffer
        // (annotator-major, then observed label, then truth class) so the
        // inner update is a single contiguous row += q_f row; the inner
        // kernel is monomorphised for the paper's two class counts.
        let mut counts = vec![smoothing; self.num_annotators * k * k];
        match k {
            2 => accumulate_counts::<2>(&mut counts, dataset, qf),
            9 => accumulate_counts::<9>(&mut counts, dataset, qf),
            _ => accumulate_counts_dyn(&mut counts, dataset, qf, k),
        }
        // flip each observed-major block to the truth-major confusion
        // layout in place, then normalise every truth row — no per-annotator
        // allocations anywhere in the update
        for block in counts.chunks_exact_mut(k * k) {
            for m in 0..k {
                for n in 0..m {
                    block.swap(m * k + n, n * k + m);
                }
            }
        }
        let mut confusions = Matrix::from_vec(self.num_annotators * k, k, counts);
        lncl_crowd::metrics::normalize_confusion_rows(&mut confusions);
        self.confusions = confusions;
        self.log_by_observed = std::sync::OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::{CrowdLabel, Instance, TaskKind};

    fn dataset_with_known_annotator() -> CrowdDataset {
        // annotator 0 always reports the gold label; annotator 1 always
        // reports class 0.
        let mut train = Vec::new();
        for i in 0..20 {
            let gold = i % 2;
            train.push(Instance {
                tokens: vec![1],
                gold: vec![gold],
                crowd_labels: vec![
                    CrowdLabel { annotator: 0, labels: vec![gold] },
                    CrowdLabel { annotator: 1, labels: vec![0] },
                ],
            });
        }
        CrowdDataset {
            task: TaskKind::Classification,
            num_classes: 2,
            num_annotators: 2,
            vocab: vec!["<pad>".into(), "w".into()],
            class_names: vec!["0".into(), "1".into()],
            train,
            dev: vec![],
            test: vec![],
            but_token: None,
            however_token: None,
        }
    }

    #[test]
    fn initialisation_is_diagonally_dominant() {
        let model = AnnotatorModel::new(3, 4, 0.7);
        assert_eq!(model.num_annotators(), 3);
        for j in 0..3 {
            let c = model.confusion(j);
            for r in 0..4 {
                assert!((c.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
                assert!(c[(r, r)] > c[(r, (r + 1) % 4)]);
            }
        }
        assert!((model.likelihood(0, 1, 1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn eq12_update_recovers_annotator_behaviour() {
        let dataset = dataset_with_known_annotator();
        // q_f equal to the gold posterior
        let qf: Vec<Matrix> = dataset
            .train
            .iter()
            .map(|inst| Matrix::from_fn(inst.gold.len(), 2, |u, c| if inst.gold[u] == c { 1.0 } else { 0.0 }))
            .collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&qf, 2), 0.01);
        // annotator 0: near-identity
        assert!(model.likelihood(0, 0, 0) > 0.95);
        assert!(model.likelihood(0, 1, 1) > 0.95);
        // annotator 1: always answers 0 regardless of truth
        assert!(model.likelihood(1, 0, 0) > 0.95);
        assert!(model.likelihood(1, 1, 0) > 0.95);
        let rel = model.reliabilities();
        assert!(rel[0] > rel[1]);
    }

    #[test]
    fn soft_qf_interpolates_counts() {
        let dataset = dataset_with_known_annotator();
        // completely uninformative q_f: confusion rows should be close to the
        // annotator's marginal label distribution for both truth classes.
        let qf: Vec<Matrix> = dataset.train.iter().map(|inst| Matrix::full(inst.num_units(), 2, 0.5)).collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&qf, 2), 0.01);
        // annotator 0 labels half 0 and half 1 overall
        assert!((model.likelihood(0, 0, 0) - 0.5).abs() < 0.05);
        assert!((model.likelihood(0, 1, 0) - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic]
    fn update_rejects_wrong_instance_count() {
        let dataset = dataset_with_known_annotator();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &FlatPosteriors::from_matrices(&[], 2), 0.01);
    }
}
