//! The annotator-reliability model: per-annotator confusion matrices Π and
//! their closed-form M-step update (Eq. 12 of the paper).

use lncl_crowd::CrowdDataset;
use lncl_tensor::Matrix;

/// Per-annotator confusion matrices `Π^{(j)}`, where row `m`, column `n` is
/// the probability that annotator `j` reports class `n` when the truth is
/// class `m`.
#[derive(Debug, Clone)]
pub struct AnnotatorModel {
    confusions: Vec<Matrix>,
    num_classes: usize,
}

impl AnnotatorModel {
    /// Initialises every annotator with a diagonally-dominant confusion
    /// matrix (`diag` on the diagonal, the rest uniform), the usual neutral
    /// starting point for EM.
    pub fn new(num_annotators: usize, num_classes: usize, diag: f32) -> Self {
        assert!(num_classes >= 2);
        assert!((0.0..=1.0).contains(&diag));
        let off = (1.0 - diag) / (num_classes - 1) as f32;
        let proto = Matrix::from_fn(num_classes, num_classes, |r, c| if r == c { diag } else { off });
        Self { confusions: vec![proto; num_annotators], num_classes }
    }

    /// Number of annotators.
    pub fn num_annotators(&self) -> usize {
        self.confusions.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Confusion matrix of annotator `j`.
    pub fn confusion(&self, j: usize) -> &Matrix {
        &self.confusions[j]
    }

    /// All confusion matrices.
    pub fn confusions(&self) -> &[Matrix] {
        &self.confusions
    }

    /// The likelihood `π^{(j)}_{m, n}` of annotator `j` reporting `observed`
    /// when the truth is `truth`.
    pub fn likelihood(&self, j: usize, truth: usize, observed: usize) -> f32 {
        self.confusions[j][(truth, observed)]
    }

    /// Overall reliability (mean diagonal) per annotator — the scalar
    /// compared against the empirical one in Figures 6b/7b.
    pub fn reliabilities(&self) -> Vec<f32> {
        self.confusions.iter().map(lncl_crowd::metrics::overall_reliability).collect()
    }

    /// Closed-form update of Eq. 12:
    ///
    /// ```text
    /// π^{(j)}_{mn} = Σ_i q_f(t_i = m)·1[y_ij = n]  /  Σ_i q_f(t_i = m)·1[y_ij ≠ 0]
    /// ```
    ///
    /// `qf` holds one distribution per *unit* in the order produced by
    /// [`lncl_crowd::AnnotationView`]; here we work directly on the dataset
    /// so the caller supplies `qf` per instance (outer index) and per unit
    /// (inner index).  `smoothing` is added to every count to keep rows
    /// well-defined for rarely observed truth classes.
    pub fn update_from_qf(&mut self, dataset: &CrowdDataset, qf: &[Vec<Vec<f32>>], smoothing: f32) {
        assert_eq!(qf.len(), dataset.train.len(), "qf must cover every training instance");
        let k = self.num_classes;
        let mut counts = vec![Matrix::full(k, k, smoothing); self.confusions.len()];
        for (inst, q_inst) in dataset.train.iter().zip(qf) {
            assert_eq!(q_inst.len(), inst.num_units(), "qf unit count mismatch");
            for cl in &inst.crowd_labels {
                for (u, &observed) in cl.labels.iter().enumerate() {
                    for m in 0..k {
                        counts[cl.annotator][(m, observed)] += q_inst[u][m];
                    }
                }
            }
        }
        for c in &mut counts {
            lncl_crowd::metrics::normalize_confusion_rows(c);
        }
        self.confusions = counts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::{CrowdLabel, Instance, TaskKind};

    fn dataset_with_known_annotator() -> CrowdDataset {
        // annotator 0 always reports the gold label; annotator 1 always
        // reports class 0.
        let mut train = Vec::new();
        for i in 0..20 {
            let gold = i % 2;
            train.push(Instance {
                tokens: vec![1],
                gold: vec![gold],
                crowd_labels: vec![
                    CrowdLabel { annotator: 0, labels: vec![gold] },
                    CrowdLabel { annotator: 1, labels: vec![0] },
                ],
            });
        }
        CrowdDataset {
            task: TaskKind::Classification,
            num_classes: 2,
            num_annotators: 2,
            vocab: vec!["<pad>".into(), "w".into()],
            class_names: vec!["0".into(), "1".into()],
            train,
            dev: vec![],
            test: vec![],
            but_token: None,
            however_token: None,
        }
    }

    #[test]
    fn initialisation_is_diagonally_dominant() {
        let model = AnnotatorModel::new(3, 4, 0.7);
        assert_eq!(model.num_annotators(), 3);
        for j in 0..3 {
            let c = model.confusion(j);
            for r in 0..4 {
                assert!((c.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
                assert!(c[(r, r)] > c[(r, (r + 1) % 4)]);
            }
        }
        assert!((model.likelihood(0, 1, 1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn eq12_update_recovers_annotator_behaviour() {
        let dataset = dataset_with_known_annotator();
        // q_f equal to the gold posterior
        let qf: Vec<Vec<Vec<f32>>> = dataset
            .train
            .iter()
            .map(|inst| {
                inst.gold
                    .iter()
                    .map(|&g| {
                        let mut p = vec![0.0; 2];
                        p[g] = 1.0;
                        p
                    })
                    .collect()
            })
            .collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &qf, 0.01);
        // annotator 0: near-identity
        assert!(model.likelihood(0, 0, 0) > 0.95);
        assert!(model.likelihood(0, 1, 1) > 0.95);
        // annotator 1: always answers 0 regardless of truth
        assert!(model.likelihood(1, 0, 0) > 0.95);
        assert!(model.likelihood(1, 1, 0) > 0.95);
        let rel = model.reliabilities();
        assert!(rel[0] > rel[1]);
    }

    #[test]
    fn soft_qf_interpolates_counts() {
        let dataset = dataset_with_known_annotator();
        // completely uninformative q_f: confusion rows should be close to the
        // annotator's marginal label distribution for both truth classes.
        let qf: Vec<Vec<Vec<f32>>> = dataset.train.iter().map(|inst| vec![vec![0.5, 0.5]; inst.num_units()]).collect();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &qf, 0.01);
        // annotator 0 labels half 0 and half 1 overall
        assert!((model.likelihood(0, 0, 0) - 0.5).abs() < 0.05);
        assert!((model.likelihood(0, 1, 0) - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic]
    fn update_rejects_wrong_instance_count() {
        let dataset = dataset_with_known_annotator();
        let mut model = AnnotatorModel::new(2, 2, 0.5);
        model.update_from_qf(&dataset, &[], 0.01);
    }
}
